//! The written secret-hygiene policy (`lint-policy.toml`).
//!
//! The workspace is offline, so instead of a TOML crate this module parses
//! the small TOML subset the policy file actually uses: `[section]` and
//! `[section.sub]` headers, `key = "string"`, `key = 123`, `key = true`,
//! and `key = ["a", "b"]` arrays (single- or multi-line). That subset is
//! stable; anything outside it is a hard error so policy typos cannot
//! silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// The lint rules, in severity-then-name order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `#[derive(Debug)]`/`Display` on a registered secret type.
    SecretDebug,
    /// `==`/`!=` touching a registered secret identifier.
    SecretCmp,
    /// A secret identifier flowing into a format/print/log sink macro.
    SecretFmt,
    /// `unwrap()`/`expect()`/panicking macro on a protocol path.
    PanicPath,
    /// Slice/array indexing (can panic) on a decoder path.
    IndexPath,
    /// A `match`/`matches!` dispatch on a factory-owned configuration
    /// enum outside the factory module.
    FactoryDispatch,
    /// A variable-time exponentiation kernel called outside the
    /// allowlisted public-data verification sites.
    VartimeUsage,
    /// A malformed or unused `lint:allow` directive.
    AllowHygiene,
}

impl Rule {
    /// All rules.
    pub const ALL: [Rule; 8] = [
        Rule::SecretDebug,
        Rule::SecretCmp,
        Rule::SecretFmt,
        Rule::PanicPath,
        Rule::IndexPath,
        Rule::FactoryDispatch,
        Rule::VartimeUsage,
        Rule::AllowHygiene,
    ];

    /// The kebab-case name used in the policy file and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SecretDebug => "secret-debug",
            Rule::SecretCmp => "secret-cmp",
            Rule::SecretFmt => "secret-fmt",
            Rule::PanicPath => "panic-path",
            Rule::IndexPath => "index-path",
            Rule::FactoryDispatch => "factory-dispatch",
            Rule::VartimeUsage => "vartime-usage",
            Rule::AllowHygiene => "allow-hygiene",
        }
    }

    /// Parses a rule name.
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parsed, validated policy.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Type names whose contents are secret (Debug/Display must redact).
    pub secret_types: Vec<String>,
    /// Identifiers bound to secret values (exact match).
    pub secret_idents: Vec<String>,
    /// Macro names that are observable sinks (`format`, `println`, …).
    pub sink_macros: Vec<String>,
    /// Files (suffix match) the panic-path rule applies to.
    pub panic_paths: Vec<String>,
    /// Files (suffix match) the index-path rule applies to.
    pub index_paths: Vec<String>,
    /// Enum names only the factory module may `match` on.
    pub factory_enums: Vec<String>,
    /// Files (suffix match) exempt from the factory-dispatch rule —
    /// the factory module(s) themselves.
    pub factory_paths: Vec<String>,
    /// Function names that are variable-time kernels (their trace leaks
    /// the exponent); callable only from `vartime_paths`.
    pub vartime_fns: Vec<String>,
    /// Files (suffix match) exempt from the vartime-usage rule — the
    /// kernel definitions and the vetted public-data verification sites.
    pub vartime_paths: Vec<String>,
    /// Directories under the policy root to scan.
    pub scan_roots: Vec<String>,
    /// Path substrings to exclude from scanning.
    pub scan_exclude: Vec<String>,
}

impl Policy {
    /// Parses a policy file's contents.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the supported TOML subset or for missing required keys.
    pub fn parse(src: &str) -> Result<Policy, String> {
        let map = parse_toml_subset(src)?;
        let list = |key: &str| -> Vec<String> {
            match map.get(key) {
                Some(Value::List(v)) => v.clone(),
                _ => Vec::new(),
            }
        };
        let required = |key: &str| -> Result<Vec<String>, String> {
            match map.get(key) {
                Some(Value::List(v)) if !v.is_empty() => Ok(v.clone()),
                _ => Err(format!("lint-policy: missing required list `{key}`")),
            }
        };
        Ok(Policy {
            secret_types: required("secret.types")?,
            secret_idents: required("secret.idents")?,
            sink_macros: required("sinks.macros")?,
            panic_paths: list("rules.panic-path.paths"),
            index_paths: list("rules.index-path.paths"),
            factory_enums: list("rules.factory-dispatch.enums"),
            factory_paths: list("rules.factory-dispatch.paths"),
            vartime_fns: list("rules.vartime-usage.fns"),
            vartime_paths: list("rules.vartime-usage.paths"),
            scan_roots: {
                let r = list("scan.roots");
                if r.is_empty() {
                    vec!["crates".into(), "src".into()]
                } else {
                    r
                }
            },
            scan_exclude: list("scan.exclude"),
        })
    }

    /// Does the panic-path rule apply to this (policy-root-relative) file?
    pub fn panic_rule_applies(&self, rel: &str) -> bool {
        path_listed(&self.panic_paths, rel)
    }

    /// Does the index-path rule apply to this file?
    pub fn index_rule_applies(&self, rel: &str) -> bool {
        path_listed(&self.index_paths, rel)
    }

    /// Does the factory-dispatch rule apply to this file? It applies
    /// everywhere *except* the registered factory module(s), and only
    /// when the policy names at least one factory-owned enum.
    pub fn factory_rule_applies(&self, rel: &str) -> bool {
        !self.factory_enums.is_empty() && !path_listed(&self.factory_paths, rel)
    }

    /// Does the vartime-usage rule apply to this file? It applies
    /// everywhere *except* the allowlisted kernel/verification files,
    /// and only when the policy names at least one vartime function.
    pub fn vartime_rule_applies(&self, rel: &str) -> bool {
        !self.vartime_fns.is_empty() && !path_listed(&self.vartime_paths, rel)
    }

    /// Is this file excluded from scanning entirely?
    pub fn excluded(&self, rel: &str) -> bool {
        self.scan_exclude.iter().any(|e| rel.contains(e.as_str()))
    }
}

/// A path matches a policy list by exact or suffix match, so workspace
/// policies can use full relative paths while fixture policies can name
/// bare file names.
fn path_listed(list: &[String], rel: &str) -> bool {
    list.iter().any(|p| rel == p || rel.ends_with(p.as_str()))
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<String>),
}

/// Parses the supported TOML subset into a `section.key -> value` map.
fn parse_toml_subset(src: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut map = BTreeMap::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let end = line
                .find(']')
                .ok_or_else(|| format!("lint-policy line {}: unterminated section", idx + 1))?;
            section = line[1..end].trim().to_string();
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| format!("lint-policy line {}: expected `key = value`", idx + 1))?;
        let key = line[..eq].trim();
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming until brackets balance.
        while value.starts_with('[') && !value.ends_with(']') {
            let (_, next) = lines
                .next()
                .ok_or_else(|| format!("lint-policy line {}: unterminated array", idx + 1))?;
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let full_key = if section.is_empty() {
            key.to_string()
        } else {
            format!("{section}.{key}")
        };
        map.insert(full_key, parse_value(&value, idx + 1)?);
    }
    Ok(map)
}

/// Removes a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str, line: usize) -> Result<Value, String> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = v.strip_prefix('"') {
        let end = stripped
            .find('"')
            .ok_or_else(|| format!("lint-policy line {line}: unterminated string"))?;
        return Ok(Value::Str(stripped[..end].to_string()));
    }
    if v.starts_with('[') {
        if !v.ends_with(']') {
            return Err(format!("lint-policy line {line}: unterminated array"));
        }
        let inner = &v[1..v.len() - 1];
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(format!(
                        "lint-policy line {line}: arrays may contain only strings"
                    ))
                }
            }
        }
        return Ok(Value::List(items));
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("lint-policy line {line}: unsupported value `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
version = 1

[secret]
types = ["Key", "JoinSecret"]  # trailing comment
idents = [
    "k_prime",
    "k_star",
]

[sinks]
macros = ["format", "println"]

[rules.panic-path]
paths = ["crates/core/src/wire.rs"]

[scan]
roots = ["crates"]
exclude = ["shims/", "tests/"]
"#;

    #[test]
    fn parses_sample() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.secret_types, vec!["Key", "JoinSecret"]);
        assert_eq!(p.secret_idents, vec!["k_prime", "k_star"]);
        assert!(p.panic_rule_applies("crates/core/src/wire.rs"));
        assert!(!p.panic_rule_applies("crates/core/src/codec.rs"));
        assert!(p.excluded("shims/rand/src/lib.rs"));
        assert!(p.excluded("crates/core/tests/x.rs"));
        assert!(!p.excluded("crates/core/src/handshake.rs"));
    }

    #[test]
    fn missing_required_key_is_error() {
        let err = Policy::parse("[secret]\ntypes = [\"Key\"]").unwrap_err();
        assert!(err.contains("secret.idents"), "{err}");
    }

    #[test]
    fn bad_syntax_is_error() {
        assert!(Policy::parse("key value").is_err());
        assert!(Policy::parse("[sec\nk = 1").is_err());
        assert!(Policy::parse("k = [1, 2]").is_err());
    }

    #[test]
    fn rule_names_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
