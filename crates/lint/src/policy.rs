//! The written secret-hygiene policy (`lint-policy.toml`).
//!
//! The workspace is offline, so instead of a TOML crate this module parses
//! the small TOML subset the policy file actually uses: `[section]` and
//! `[section.sub]` headers, `key = "string"`, `key = 123`, `key = true`,
//! and `key = ["a", "b"]` arrays (single- or multi-line). That subset is
//! stable; anything outside it is a hard error so policy typos cannot
//! silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// The lint rules, in severity-then-name order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `#[derive(Debug)]`/`Display` on a registered secret type.
    SecretDebug,
    /// `==`/`!=` touching a registered secret identifier.
    SecretCmp,
    /// A secret identifier flowing into a format/print/log sink macro.
    SecretFmt,
    /// `unwrap()`/`expect()`/panicking macro on a protocol path.
    PanicPath,
    /// Slice/array indexing (can panic) on a decoder path.
    IndexPath,
    /// A `match`/`matches!` dispatch on a factory-owned configuration
    /// enum outside the factory module.
    FactoryDispatch,
    /// A variable-time exponentiation kernel called outside the
    /// allowlisted public-data verification sites.
    VartimeUsage,
    /// Interprocedural: a policy-seeded secret value reaching a vartime
    /// kernel, a format/panic sink, or a raw wire-encode path.
    SecretTaint,
    /// Interprocedural: a cycle (or recursive acquisition) in the global
    /// mutex acquisition graph.
    LockOrder,
    /// Interprocedural: a blocking channel `send`/`recv` (directly or via
    /// a callee) while holding a mutex guard.
    SendUnderLock,
    /// A malformed or unused `lint:allow` directive.
    AllowHygiene,
}

impl Rule {
    /// All rules.
    pub const ALL: [Rule; 11] = [
        Rule::SecretDebug,
        Rule::SecretCmp,
        Rule::SecretFmt,
        Rule::PanicPath,
        Rule::IndexPath,
        Rule::FactoryDispatch,
        Rule::VartimeUsage,
        Rule::SecretTaint,
        Rule::LockOrder,
        Rule::SendUnderLock,
        Rule::AllowHygiene,
    ];

    /// The kebab-case name used in the policy file and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SecretDebug => "secret-debug",
            Rule::SecretCmp => "secret-cmp",
            Rule::SecretFmt => "secret-fmt",
            Rule::PanicPath => "panic-path",
            Rule::IndexPath => "index-path",
            Rule::FactoryDispatch => "factory-dispatch",
            Rule::VartimeUsage => "vartime-usage",
            Rule::SecretTaint => "secret-taint",
            Rule::LockOrder => "lock-order",
            Rule::SendUnderLock => "send-under-lock",
            Rule::AllowHygiene => "allow-hygiene",
        }
    }

    /// Parses a rule name.
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }

    /// Is this rule produced by the interprocedural analysis pass (as
    /// opposed to the fast token pass)? Allow-hygiene accounting uses
    /// this to avoid calling a directive stale in a run where the rule
    /// it suppresses never executed.
    pub fn is_analysis(self) -> bool {
        matches!(
            self,
            Rule::SecretTaint | Rule::LockOrder | Rule::SendUnderLock
        )
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parsed, validated policy.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Type names whose contents are secret (Debug/Display must redact).
    pub secret_types: Vec<String>,
    /// Identifiers bound to secret values (exact match).
    pub secret_idents: Vec<String>,
    /// Macro names that are observable sinks (`format`, `println`, …).
    pub sink_macros: Vec<String>,
    /// Files (suffix match) the panic-path rule applies to.
    pub panic_paths: Vec<String>,
    /// Files (suffix match) the index-path rule applies to.
    pub index_paths: Vec<String>,
    /// Enum names only the factory module may `match` on.
    pub factory_enums: Vec<String>,
    /// Files (suffix match) exempt from the factory-dispatch rule —
    /// the factory module(s) themselves.
    pub factory_paths: Vec<String>,
    /// Function names that are variable-time kernels (their trace leaks
    /// the exponent); callable only from `vartime_paths`.
    pub vartime_fns: Vec<String>,
    /// Files (suffix match) exempt from the vartime-usage rule — the
    /// kernel definitions and the vetted public-data verification sites.
    pub vartime_paths: Vec<String>,
    /// Function names whose outputs are declassified for the taint
    /// analysis: keyed one-way primitives (`seal`, `encrypt`, `finalize`)
    /// whose outputs are published by protocol design, plus structural
    /// sanitizers (`len`, `is_empty`).
    pub taint_declassify: Vec<String>,
    /// Types the taint analysis seeds as secret *material* (strong
    /// taint). Defaults to `secret_types`; a workspace policy narrows
    /// this when the secret list includes container types (a group
    /// manager holds factors, but its public key is public).
    pub taint_seed_types: Vec<String>,
    /// Macro names the taint analysis treats as format sinks. Defaults
    /// to `sink_macros`; a workspace policy narrows this to the macros
    /// that actually print values (bare `assert!` stringifies the
    /// condition *expression*, not its value).
    pub taint_fmt_sinks: Vec<String>,
    /// Function names that write raw bytes onto the wire (`put_*`,
    /// frame encoders) — a taint sink class.
    pub wire_sink_fns: Vec<String>,
    /// Files (glob/suffix match) exempt from the wire-encode sink: the
    /// registered decoy and AEAD-bound construction sites.
    pub wire_allow_paths: Vec<String>,
    /// Files (glob/suffix match) the lock-order and send-under-lock
    /// analyses apply to.
    pub lock_paths: Vec<String>,
    /// Directories under the policy root to scan.
    pub scan_roots: Vec<String>,
    /// Path substrings to exclude from scanning.
    pub scan_exclude: Vec<String>,
}

impl Policy {
    /// Parses a policy file's contents.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the supported TOML subset or for missing required keys.
    pub fn parse(src: &str) -> Result<Policy, String> {
        let map = parse_toml_subset(src)?;
        let list = |key: &str| -> Vec<String> {
            match map.get(key) {
                Some(Value::List(v)) => v.clone(),
                _ => Vec::new(),
            }
        };
        let required = |key: &str| -> Result<Vec<String>, String> {
            match map.get(key) {
                Some(Value::List(v)) if !v.is_empty() => Ok(v.clone()),
                _ => Err(format!("lint-policy: missing required list `{key}`")),
            }
        };
        Ok(Policy {
            secret_types: required("secret.types")?,
            secret_idents: required("secret.idents")?,
            sink_macros: required("sinks.macros")?,
            panic_paths: list("rules.panic-path.paths"),
            index_paths: list("rules.index-path.paths"),
            factory_enums: list("rules.factory-dispatch.enums"),
            factory_paths: list("rules.factory-dispatch.paths"),
            vartime_fns: list("rules.vartime-usage.fns"),
            vartime_paths: list("rules.vartime-usage.paths"),
            taint_declassify: list("taint.declassify"),
            taint_seed_types: list("taint.seed-types"),
            taint_fmt_sinks: list("taint.fmt-sinks"),
            wire_sink_fns: list("taint.wire-sinks"),
            wire_allow_paths: list("taint.wire-allow-paths"),
            lock_paths: list("rules.lock-order.paths"),
            scan_roots: {
                let r = list("scan.roots");
                if r.is_empty() {
                    vec!["crates".into(), "src".into()]
                } else {
                    r
                }
            },
            scan_exclude: list("scan.exclude"),
        })
    }

    /// Does the panic-path rule apply to this (policy-root-relative) file?
    pub fn panic_rule_applies(&self, rel: &str) -> bool {
        path_listed(&self.panic_paths, rel)
    }

    /// Does the index-path rule apply to this file?
    pub fn index_rule_applies(&self, rel: &str) -> bool {
        path_listed(&self.index_paths, rel)
    }

    /// Does the factory-dispatch rule apply to this file? It applies
    /// everywhere *except* the registered factory module(s), and only
    /// when the policy names at least one factory-owned enum.
    pub fn factory_rule_applies(&self, rel: &str) -> bool {
        !self.factory_enums.is_empty() && !path_listed(&self.factory_paths, rel)
    }

    /// Does the vartime-usage rule apply to this file? It applies
    /// everywhere *except* the allowlisted kernel/verification files,
    /// and only when the policy names at least one vartime function.
    pub fn vartime_rule_applies(&self, rel: &str) -> bool {
        !self.vartime_fns.is_empty() && !path_listed(&self.vartime_paths, rel)
    }

    /// The taint seed-type list: `taint.seed-types` when written,
    /// otherwise all of `secret.types`.
    pub fn taint_seed_types(&self) -> &[String] {
        if self.taint_seed_types.is_empty() {
            &self.secret_types
        } else {
            &self.taint_seed_types
        }
    }

    /// The taint format-sink macro list: `taint.fmt-sinks` when written,
    /// otherwise all of `sinks.macros`.
    pub fn taint_fmt_sinks(&self) -> &[String] {
        if self.taint_fmt_sinks.is_empty() {
            &self.sink_macros
        } else {
            &self.taint_fmt_sinks
        }
    }

    /// Is this file exempt from the wire-encode taint sink — a registered
    /// decoy/AEAD construction site?
    pub fn wire_sink_exempt(&self, rel: &str) -> bool {
        path_listed(&self.wire_allow_paths, rel)
    }

    /// Do the lock-order/send-under-lock analyses apply to this file?
    pub fn lock_rule_applies(&self, rel: &str) -> bool {
        path_listed(&self.lock_paths, rel)
    }

    /// Is this file excluded from scanning entirely?
    pub fn excluded(&self, rel: &str) -> bool {
        self.scan_exclude.iter().any(|e| rel.contains(e.as_str()))
    }
}

/// A path matches a policy list by exact match, suffix match, or glob
/// (`*` matches within one path segment, `**` across segments), so
/// workspace policies can cover whole modules (`crates/core/src/handshake/*`)
/// while fixture policies can still name bare file names.
fn path_listed(list: &[String], rel: &str) -> bool {
    list.iter().any(|p| {
        if p.contains('*') {
            glob_match(p, rel)
        } else {
            rel == p.as_str() || rel.ends_with(p.as_str())
        }
    })
}

/// Minimal glob matcher: `*` matches any run of non-`/` characters, `**`
/// matches any run including `/`. No character classes or `?`.
fn glob_match(pattern: &str, path: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let s: Vec<char> = path.chars().collect();
    glob_rec(&p, 0, &s, 0)
}

fn glob_rec(p: &[char], mut pi: usize, s: &[char], mut si: usize) -> bool {
    while pi < p.len() {
        if p[pi] == '*' {
            let deep = pi + 1 < p.len() && p[pi + 1] == '*';
            let rest = if deep { pi + 2 } else { pi + 1 };
            // Try every split point, longest-suffix last.
            let mut k = si;
            loop {
                if glob_rec(p, rest, s, k) {
                    return true;
                }
                if k >= s.len() || (!deep && s[k] == '/') {
                    return false;
                }
                k += 1;
            }
        }
        if si >= s.len() || p[pi] != s[si] {
            return false;
        }
        pi += 1;
        si += 1;
    }
    si == s.len()
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<String>),
}

/// Parses the supported TOML subset into a `section.key -> value` map.
fn parse_toml_subset(src: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut map = BTreeMap::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let end = line
                .find(']')
                .ok_or_else(|| format!("lint-policy line {}: unterminated section", idx + 1))?;
            section = line[1..end].trim().to_string();
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| format!("lint-policy line {}: expected `key = value`", idx + 1))?;
        let key = line[..eq].trim();
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming until brackets balance.
        while value.starts_with('[') && !value.ends_with(']') {
            let (_, next) = lines
                .next()
                .ok_or_else(|| format!("lint-policy line {}: unterminated array", idx + 1))?;
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let full_key = if section.is_empty() {
            key.to_string()
        } else {
            format!("{section}.{key}")
        };
        map.insert(full_key, parse_value(&value, idx + 1)?);
    }
    Ok(map)
}

/// Removes a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str, line: usize) -> Result<Value, String> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = v.strip_prefix('"') {
        let end = stripped
            .find('"')
            .ok_or_else(|| format!("lint-policy line {line}: unterminated string"))?;
        return Ok(Value::Str(stripped[..end].to_string()));
    }
    if v.starts_with('[') {
        if !v.ends_with(']') {
            return Err(format!("lint-policy line {line}: unterminated array"));
        }
        let inner = &v[1..v.len() - 1];
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(format!(
                        "lint-policy line {line}: arrays may contain only strings"
                    ))
                }
            }
        }
        return Ok(Value::List(items));
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("lint-policy line {line}: unsupported value `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
version = 1

[secret]
types = ["Key", "JoinSecret"]  # trailing comment
idents = [
    "k_prime",
    "k_star",
]

[sinks]
macros = ["format", "println"]

[rules.panic-path]
paths = ["crates/core/src/wire.rs"]

[scan]
roots = ["crates"]
exclude = ["shims/", "tests/"]
"#;

    #[test]
    fn parses_sample() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.secret_types, vec!["Key", "JoinSecret"]);
        assert_eq!(p.secret_idents, vec!["k_prime", "k_star"]);
        assert!(p.panic_rule_applies("crates/core/src/wire.rs"));
        assert!(!p.panic_rule_applies("crates/core/src/codec.rs"));
        assert!(p.excluded("shims/rand/src/lib.rs"));
        assert!(p.excluded("crates/core/tests/x.rs"));
        assert!(!p.excluded("crates/core/src/handshake.rs"));
    }

    #[test]
    fn missing_required_key_is_error() {
        let err = Policy::parse("[secret]\ntypes = [\"Key\"]").unwrap_err();
        assert!(err.contains("secret.idents"), "{err}");
    }

    #[test]
    fn bad_syntax_is_error() {
        assert!(Policy::parse("key value").is_err());
        assert!(Policy::parse("[sec\nk = 1").is_err());
        assert!(Policy::parse("k = [1, 2]").is_err());
    }

    #[test]
    fn glob_paths_match_whole_modules() {
        let p = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["format"]
[rules.panic-path]
paths = ["crates/core/src/handshake/*", "crates/net/src/**"]
"#,
        )
        .unwrap();
        assert!(p.panic_rule_applies("crates/core/src/handshake/phase2.rs"));
        assert!(
            !p.panic_rule_applies("crates/core/src/handshake/deep/x.rs"),
            "single `*` must not cross a path segment"
        );
        assert!(p.panic_rule_applies("crates/net/src/tcp/frame.rs"));
        assert!(!p.panic_rule_applies("crates/core/src/codec.rs"));
    }

    #[test]
    fn glob_star_mid_pattern() {
        assert!(glob_match(
            "crates/*/src/pool.rs",
            "crates/core/src/pool.rs"
        ));
        assert!(!glob_match(
            "crates/*/src/pool.rs",
            "crates/a/b/src/pool.rs"
        ));
        assert!(glob_match("**/bin/*.rs", "crates/bench/src/bin/b.rs"));
        assert!(glob_match("a*c", "abc"));
        assert!(!glob_match("a*c", "ab"));
    }

    #[test]
    fn lock_and_wire_sections_parse() {
        let p = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["format"]
[taint]
declassify = ["seal"]
wire-sinks = ["put_bytes"]
wire-allow-paths = ["decoy.rs"]
[rules.lock-order]
paths = ["crates/net/src/serve/*"]
"#,
        )
        .unwrap();
        assert_eq!(p.taint_declassify, vec!["seal"]);
        assert!(p.wire_sink_exempt("crates/core/src/decoy.rs"));
        // Defaults: seed types fall back to secret.types, fmt sinks to
        // sinks.macros.
        assert_eq!(p.taint_seed_types(), ["Key".to_string()]);
        assert_eq!(p.taint_fmt_sinks(), ["format".to_string()]);
        assert!(p.lock_rule_applies("crates/net/src/serve/mod.rs"));
        assert!(!p.lock_rule_applies("crates/core/src/pool.rs"));
    }

    #[test]
    fn rule_names_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
