//! Findings and the machine-readable report.

use crate::policy::Rule;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Policy-root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Convenience constructor.
    pub fn new(file: &str, line: u32, col: u32, rule: Rule, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col,
            rule,
            message,
        }
    }

    /// `file:line:col rule message` — the CI-greppable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Analyzer self-stats — parser/resolver coverage counters surfaced in
/// the JSON report so a syntax-layer regression (fns silently dropped,
/// calls going unresolved) is visible in CI diffs, not just in weaker
/// findings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Files run through the syntax layer.
    pub files_parsed: usize,
    /// Function items recovered.
    pub fns_parsed: usize,
    /// Call sites considered by the call graph.
    pub calls_total: usize,
    /// Calls with a unique workspace target.
    pub calls_resolved: usize,
    /// Calls with several same-name candidates (not followed).
    pub calls_ambiguous: usize,
    /// Calls with no workspace definition.
    pub calls_unresolved: usize,
    /// Policy-seeded secret values.
    pub taint_seeds: usize,
    /// Functions carrying taint at fixpoint.
    pub tainted_fns: usize,
    /// Files inside the lock-analysis scope.
    pub lock_files: usize,
    /// Mutex/channel events replayed.
    pub lock_events: usize,
    /// Acquisition edges in the global lock graph.
    pub lock_edges: usize,
    /// Wall-clock time of the analysis pass, milliseconds.
    pub elapsed_ms: u64,
}

/// A whole lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by file then position.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Self-stats of the analysis pass, when it ran.
    pub analysis: Option<AnalysisStats>,
}

impl Report {
    /// Did the run find nothing?
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the report as JSON (hand-rolled; the workspace is
    /// dependency-free by policy).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"tool\": \"shs-lint\",\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        if let Some(a) = &self.analysis {
            s.push_str("  \"analysis\": {\n");
            s.push_str(&format!("    \"files_parsed\": {},\n", a.files_parsed));
            s.push_str(&format!("    \"fns_parsed\": {},\n", a.fns_parsed));
            s.push_str(&format!("    \"calls_total\": {},\n", a.calls_total));
            s.push_str(&format!("    \"calls_resolved\": {},\n", a.calls_resolved));
            s.push_str(&format!(
                "    \"calls_ambiguous\": {},\n",
                a.calls_ambiguous
            ));
            s.push_str(&format!(
                "    \"calls_unresolved\": {},\n",
                a.calls_unresolved
            ));
            s.push_str(&format!("    \"taint_seeds\": {},\n", a.taint_seeds));
            s.push_str(&format!("    \"tainted_fns\": {},\n", a.tainted_fns));
            s.push_str(&format!("    \"lock_files\": {},\n", a.lock_files));
            s.push_str(&format!("    \"lock_events\": {},\n", a.lock_events));
            s.push_str(&format!("    \"lock_edges\": {},\n", a.lock_edges));
            s.push_str(&format!("    \"elapsed_ms\": {}\n", a.elapsed_ms));
            s.push_str("  },\n");
        }
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"file\": \"{}\", ", json_escape(&f.file)));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"col\": {}, ", f.col));
            s.push_str(&format!("\"rule\": \"{}\", ", f.rule));
            s.push_str(&format!("\"message\": \"{}\"", json_escape(&f.message)));
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let r = Report {
            files_scanned: 2,
            findings: vec![Finding::new(
                "a.rs",
                3,
                7,
                Rule::SecretCmp,
                "`==` with \"quotes\"".to_string(),
            )],
            analysis: None,
        };
        let j = r.to_json();
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"rule\": \"secret-cmp\""));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(!j.contains("\"analysis\""));
    }

    #[test]
    fn analysis_stats_serialized() {
        let r = Report {
            files_scanned: 1,
            findings: Vec::new(),
            analysis: Some(AnalysisStats {
                files_parsed: 60,
                fns_parsed: 400,
                calls_total: 900,
                calls_resolved: 700,
                calls_ambiguous: 50,
                calls_unresolved: 150,
                ..AnalysisStats::default()
            }),
        };
        let j = r.to_json();
        assert!(j.contains("\"fns_parsed\": 400"));
        assert!(j.contains("\"calls_unresolved\": 150"));
    }

    #[test]
    fn render_is_greppable() {
        let f = Finding::new("x/y.rs", 10, 4, Rule::PanicPath, "boom".to_string());
        assert_eq!(f.render(), "x/y.rs:10:4: [panic-path] boom");
    }
}
