//! Findings and the machine-readable report.

use crate::policy::Rule;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Policy-root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Convenience constructor.
    pub fn new(file: &str, line: u32, col: u32, rule: Rule, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col,
            rule,
            message,
        }
    }

    /// `file:line:col rule message` — the CI-greppable form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A whole lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by file then position.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Did the run find nothing?
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the report as JSON (hand-rolled; the workspace is
    /// dependency-free by policy).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"tool\": \"shs-lint\",\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"file\": \"{}\", ", json_escape(&f.file)));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"col\": {}, ", f.col));
            s.push_str(&format!("\"rule\": \"{}\", ", f.rule));
            s.push_str(&format!("\"message\": \"{}\"", json_escape(&f.message)));
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let r = Report {
            files_scanned: 2,
            findings: vec![Finding::new(
                "a.rs",
                3,
                7,
                Rule::SecretCmp,
                "`==` with \"quotes\"".to_string(),
            )],
        };
        let j = r.to_json();
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"rule\": \"secret-cmp\""));
        assert!(j.contains("\\\"quotes\\\""));
    }

    #[test]
    fn render_is_greppable() {
        let f = Finding::new("x/y.rs", 10, 4, Rule::PanicPath, "boom".to_string());
        assert_eq!(f.render(), "x/y.rs:10:4: [panic-path] boom");
    }
}
