//! The secret-hygiene rules, run over one file's token stream.
//!
//! Every rule is a linear scan over the [`crate::lexer::Lexed`] tokens;
//! none of them needs a parse tree. Code inside `#[cfg(test)]`-gated items
//! and `#[test]` functions is exempt (tests may print, compare, and
//! unwrap secrets freely), and individual findings can be waived with a
//! written-down `// lint:allow(<rule>) reason="…"` directive on the same
//! line or the line above.

use crate::lexer::{AllowDirective, Lexed, Tok, TokKind};
use crate::policy::{Policy, Rule};
use crate::report::Finding;
use crate::Mode;

/// Runs every applicable token rule over one file and applies allow
/// directives — the single-file entry point (the workspace pipeline runs
/// [`token_findings`] and [`finalize`] separately so interprocedural
/// findings share the allow machinery).
///
/// `rel` is the policy-root-relative path used for path-scoped rules and
/// for reporting.
pub fn lint_tokens(rel: &str, lexed: &Lexed, policy: &Policy) -> Vec<Finding> {
    finalize(rel, lexed, token_findings(rel, lexed, policy), Mode::Tokens)
}

/// Raw findings from the fast token rules, test regions already
/// filtered, allow directives **not** yet applied.
pub fn token_findings(rel: &str, lexed: &Lexed, policy: &Policy) -> Vec<Finding> {
    let toks = &lexed.toks;
    let test_lines = test_regions(toks);
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);

    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(rule_secret_debug(rel, toks, policy));
    raw.extend(rule_secret_cmp(rel, toks, policy));
    raw.extend(rule_secret_fmt(rel, toks, policy));
    if policy.panic_rule_applies(rel) {
        raw.extend(rule_panic_path(rel, toks));
    }
    if policy.index_rule_applies(rel) {
        raw.extend(rule_index_path(rel, toks));
    }
    if policy.factory_rule_applies(rel) {
        raw.extend(rule_factory_dispatch(rel, toks, policy));
    }
    if policy.vartime_rule_applies(rel) {
        raw.extend(rule_vartime_usage(rel, toks, policy));
    }
    raw.retain(|f| !in_test(f.line));
    raw
}

/// Applies the file's allow directives to `raw` (token and analysis
/// findings alike) and appends allow-hygiene findings. Accounting is
/// per named rule: a directive listing several rules must suppress at
/// least one finding of **each**, or the idle names are themselves
/// findings — this is what lets a policy-rule upgrade surface every
/// allow it made stale.
///
/// `mode` says which passes produced `raw`: hygiene belongs to the token
/// pass (an `--analysis-only` run emits none), and a rule name is only
/// held to the "must suppress something" standard in a run where that
/// rule actually executed — otherwise a split CI job would call every
/// other-pass directive stale.
pub fn finalize(rel: &str, lexed: &Lexed, mut raw: Vec<Finding>, mode: Mode) -> Vec<Finding> {
    let test_lines = test_regions(&lexed.toks);
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);

    // Which rule names of each directive actually suppressed a finding.
    let mut used: Vec<Vec<&str>> = vec![Vec::new(); lexed.allows.len()];
    raw.retain(|f| {
        let mut suppressed = false;
        for (i, a) in lexed.allows.iter().enumerate() {
            if allow_covers(a, f) {
                if !used[i].contains(&f.rule.name()) {
                    used[i].push(f.rule.name());
                }
                suppressed = true;
            }
        }
        !suppressed
    });

    // Allow-directive hygiene: every exception must carry a reason, name
    // real rules, and actually suppress something under each named rule.
    // Hygiene itself is a token rule; in an `--analysis-only` run the
    // token job owns these findings, so none are emitted here.
    if mode.tokens() {
        // A rule name is only held to the suppress-something standard if
        // the pass producing that rule ran (in `--tokens-only`, a
        // directive for `secret-taint` cannot be proven stale).
        let checkable =
            |r: &str| Rule::from_name(r).is_some_and(|rule| !rule.is_analysis() || mode.analysis());
        for (i, a) in lexed.allows.iter().enumerate() {
            if in_test(a.line) {
                continue;
            }
            if !a.has_reason {
                raw.push(Finding::new(
                    rel,
                    a.line,
                    1,
                    Rule::AllowHygiene,
                    "lint:allow directive without a reason=\"…\" justification".to_string(),
                ));
                continue;
            }
            let mut all_known = true;
            for r in &a.rules {
                if Rule::from_name(r).is_none() {
                    all_known = false;
                    raw.push(Finding::new(
                        rel,
                        a.line,
                        1,
                        Rule::AllowHygiene,
                        format!("lint:allow names unknown rule `{r}`"),
                    ));
                }
            }
            if !all_known {
                continue;
            }
            if used[i].is_empty() && a.rules.iter().all(|r| checkable(r)) {
                raw.push(Finding::new(
                    rel,
                    a.line,
                    1,
                    Rule::AllowHygiene,
                    "unused lint:allow directive (suppresses nothing on this or the next line)"
                        .to_string(),
                ));
            } else {
                for r in &a.rules {
                    if checkable(r) && !used[i].contains(&r.as_str()) {
                        raw.push(Finding::new(
                            rel,
                            a.line,
                            1,
                            Rule::AllowHygiene,
                            format!(
                                "lint:allow lists `{r}` but suppresses no `{r}` finding \
                                 on this or the next line; drop the stale rule name"
                            ),
                        ));
                    }
                }
            }
        }
    }

    raw.sort_by_key(|a| (a.line, a.col, a.rule));
    raw
}

/// A directive covers a finding on its own line or the line below it.
fn allow_covers(a: &AllowDirective, f: &Finding) -> bool {
    (f.line == a.line || f.line == a.line + 1) && a.rules.iter().any(|r| r == f.rule.name())
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Line ranges of items gated by `#[cfg(test)]` / `#[test]` (also used
/// by the syntax layer to exempt test fns from the analyses).
pub(crate) fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            let (idents, after) = attr_contents(toks, i + 1);
            if is_test_attr(&idents) {
                let start_line = toks[i].line;
                if let Some(end_line) = item_end_line(toks, after) {
                    regions.push((start_line, end_line));
                    // Skip past the whole gated item in one step.
                    i = after;
                    continue;
                }
            }
            i = after;
            continue;
        }
        i += 1;
    }
    regions
}

/// `#[cfg(test)]`, `#[test]`, `#[cfg(any(test, …))]`, `#[tokio::test]` …
/// but never `#[cfg(not(test))]`.
fn is_test_attr(idents: &[String]) -> bool {
    let has = |s: &str| idents.iter().any(|i| i == s);
    has("test") && !has("not")
}

/// Collects the identifiers inside `[…]` starting at `open` (the `[`),
/// returning them and the index just past the closing `]`.
fn attr_contents(toks: &[Tok], open: usize) -> (Vec<String>, usize) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (idents, i + 1);
            }
        } else if t.kind == TokKind::Ident {
            idents.push(t.text.clone());
        }
        i += 1;
    }
    (idents, i)
}

/// The last line of the item starting at `i` (skipping further attributes):
/// through the matching `}` of its first brace, or at its terminating `;`.
fn item_end_line(toks: &[Tok], mut i: usize) -> Option<u32> {
    // Skip stacked attributes between the test gate and the item.
    while i + 1 < toks.len() && toks[i].is_punct("#") && toks[i + 1].is_punct("[") {
        let (_, after) = attr_contents(toks, i + 1);
        i = after;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(t.line);
            }
        } else if t.is_punct(";") && depth == 0 {
            return Some(t.line);
        }
        i += 1;
    }
    toks.last().map(|t| t.line)
}

// ---------------------------------------------------------------------------
// secret-debug
// ---------------------------------------------------------------------------

fn rule_secret_debug(rel: &str, toks: &[Tok], policy: &Policy) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_punct("#") && toks[i + 1].is_punct("[") && toks[i + 2].is_ident("derive") {
            let derive_line = toks[i].line;
            let (derived, mut j) = attr_contents(toks, i + 1);
            // Skip further attributes/visibility down to the item keyword.
            loop {
                if j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
                    let (_, after) = attr_contents(toks, j + 1);
                    j = after;
                } else if j < toks.len()
                    && (toks[j].is_ident("pub")
                        || toks[j].is_punct("(")
                        || toks[j].is_punct(")")
                        || toks[j].is_ident("crate")
                        || toks[j].is_ident("super"))
                {
                    j += 1;
                } else {
                    break;
                }
            }
            let is_type_item = j < toks.len()
                && (toks[j].is_ident("struct")
                    || toks[j].is_ident("enum")
                    || toks[j].is_ident("union"));
            if is_type_item && j + 1 < toks.len() && toks[j + 1].kind == TokKind::Ident {
                let name = &toks[j + 1].text;
                if policy.secret_types.iter().any(|t| t == name) {
                    for bad in ["Debug", "Display"] {
                        if derived.iter().any(|d| d == bad && d != "derive") {
                            out.push(Finding::new(
                                rel,
                                derive_line,
                                toks[i].col,
                                Rule::SecretDebug,
                                format!(
                                    "secret type `{name}` derives `{bad}`; write a redacting \
                                     manual impl (print type name and length only)"
                                ),
                            ));
                        }
                    }
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// secret-cmp
// ---------------------------------------------------------------------------

fn rule_secret_cmp(rel: &str, toks: &[Tok], policy: &Policy) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let mut idents = operand_idents_left(toks, i);
        idents.extend(operand_idents_right(toks, i));
        if let Some(secret) = idents
            .iter()
            .find(|id| policy.secret_idents.iter().any(|s| s == *id))
        {
            out.push(Finding::new(
                rel,
                t.line,
                t.col,
                Rule::SecretCmp,
                format!(
                    "`{}` on secret value `{secret}`; use `shs_crypto::ct::eq` \
                     (or `Key::ct_eq`) for content comparison",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Identifiers in the primary expression to the left of operator index `op`.
fn operand_idents_left(toks: &[Tok], op: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = op;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => out.push(t.text.clone()),
            TokKind::Number | TokKind::Str | TokKind::Char | TokKind::Lifetime => {}
            TokKind::Punct => match t.text.as_str() {
                ")" | "]" => {
                    // Skip the balanced group backwards.
                    let close = t.text.clone();
                    let open = if close == ")" { "(" } else { "[" };
                    let mut depth = 1usize;
                    while i > 0 && depth > 0 {
                        i -= 1;
                        if toks[i].is_punct(&close) {
                            depth += 1;
                        } else if toks[i].is_punct(open) {
                            depth -= 1;
                        } else if toks[i].kind == TokKind::Ident {
                            out.push(toks[i].text.clone());
                        }
                    }
                }
                "." | "::" | "&" | "*" | "?" => {}
                _ => break,
            },
        }
    }
    out
}

/// Identifiers in the primary expression to the right of operator index `op`.
fn operand_idents_right(toks: &[Tok], op: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = op + 1;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => out.push(t.text.clone()),
            TokKind::Number | TokKind::Str | TokKind::Char | TokKind::Lifetime => {}
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" => {
                    let open = t.text.clone();
                    let close = if open == "(" { ")" } else { "]" };
                    let mut depth = 1usize;
                    while i + 1 < toks.len() && depth > 0 {
                        i += 1;
                        if toks[i].is_punct(&open) {
                            depth += 1;
                        } else if toks[i].is_punct(close) {
                            depth -= 1;
                        } else if toks[i].kind == TokKind::Ident {
                            out.push(toks[i].text.clone());
                        }
                    }
                }
                "." | "::" | "&" | "*" | "?" => {}
                _ => break,
            },
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// secret-fmt
// ---------------------------------------------------------------------------

fn rule_secret_fmt(rel: &str, toks: &[Tok], policy: &Policy) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        let is_sink = toks[i].kind == TokKind::Ident
            && policy.sink_macros.iter().any(|m| m == &toks[i].text)
            && toks[i + 1].is_punct("!")
            && (toks[i + 2].is_punct("(")
                || toks[i + 2].is_punct("[")
                || toks[i + 2].is_punct("{"));
        if !is_sink {
            i += 1;
            continue;
        }
        let sink = toks[i].text.clone();
        let (line, col) = (toks[i].line, toks[i].col);
        let open = toks[i + 2].text.clone();
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            _ => "}",
        };
        let mut depth = 1usize;
        let mut j = i + 3;
        let mut leaked: Vec<String> = Vec::new();
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if t.is_punct(&open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
            } else if t.kind == TokKind::Ident
                && policy.secret_idents.iter().any(|s| s == &t.text)
                && !leaked.contains(&t.text)
            {
                leaked.push(t.text.clone());
            }
            j += 1;
        }
        for id in leaked {
            out.push(Finding::new(
                rel,
                line,
                col,
                Rule::SecretFmt,
                format!("secret value `{id}` flows into `{sink}!` sink; redact or remove it"),
            ));
        }
        i = j;
    }
    out
}

// ---------------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn rule_panic_path(rel: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_method = (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(");
        let is_macro = PANIC_MACROS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("!");
        if is_method {
            out.push(Finding::new(
                rel,
                t.line,
                t.col,
                Rule::PanicPath,
                format!(
                    "`.{}()` on a protocol path; return a structured error \
                     (`CoreError`/`AbortReason`) instead of panicking",
                    t.text
                ),
            ));
        } else if is_macro {
            out.push(Finding::new(
                rel,
                t.line,
                t.col,
                Rule::PanicPath,
                format!(
                    "`{}!` on a protocol path; protocol code must fail \
                     structurally, not panic",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// index-path
// ---------------------------------------------------------------------------

fn rule_index_path(rel: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct("[") || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let is_index = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
            || prev.is_punct(")")
            || prev.is_punct("]");
        if is_index {
            out.push(Finding::new(
                rel,
                t.line,
                t.col,
                Rule::IndexPath,
                "indexing can panic on a decoder path; use `.get(..)` and return \
                 a structured error"
                    .to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// factory-dispatch
// ---------------------------------------------------------------------------

/// Flags `match` expressions and `matches!` invocations that dispatch on a
/// factory-owned configuration enum (a `Enum::Variant` path appears in the
/// expression) anywhere outside the registered factory module(s). Keeping
/// all backend construction in one file is what lets a new instantiation
/// be added by touching exactly one dispatch site.
fn rule_factory_dispatch(rel: &str, toks: &[Tok], policy: &Policy) -> Vec<Finding> {
    let is_enum = |i: usize| -> Option<String> {
        let t = &toks[i];
        (t.kind == TokKind::Ident
            && policy.factory_enums.iter().any(|e| e == &t.text)
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("::"))
        .then(|| t.text.clone())
    };
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("match") {
            // The match body is the first `{` outside any bracket group in
            // the scrutinee; scan the body for `Enum::Variant` paths.
            let mut j = i + 1;
            let mut nest = 0usize;
            while j < toks.len() {
                let tj = &toks[j];
                if tj.is_punct("(") || tj.is_punct("[") {
                    nest += 1;
                } else if tj.is_punct(")") || tj.is_punct("]") {
                    nest = nest.saturating_sub(1);
                } else if tj.is_punct("{") && nest == 0 {
                    break;
                }
                j += 1;
            }
            let mut depth = 0usize;
            let mut hit: Option<String> = None;
            while j < toks.len() {
                let tj = &toks[j];
                if tj.is_punct("{") {
                    depth += 1;
                } else if tj.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if hit.is_none() {
                    hit = is_enum(j);
                }
                j += 1;
            }
            if let Some(name) = hit {
                out.push(Finding::new(
                    rel,
                    t.line,
                    t.col,
                    Rule::FactoryDispatch,
                    format!(
                        "`match` dispatches on `{name}` outside the factory module; \
                         construct backends through the factory instead"
                    ),
                ));
                // The whole expression is one finding; skip past it.
                i = j;
                continue;
            }
            i += 1;
            continue;
        }
        let is_matches_macro = t.is_ident("matches")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("!")
            && toks[i + 2].is_punct("(");
        if is_matches_macro {
            let mut depth = 1usize;
            let mut j = i + 3;
            let mut hit: Option<String> = None;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                } else if hit.is_none() {
                    hit = is_enum(j);
                }
                j += 1;
            }
            if let Some(name) = hit {
                out.push(Finding::new(
                    rel,
                    t.line,
                    t.col,
                    Rule::FactoryDispatch,
                    format!(
                        "`matches!` dispatches on `{name}` outside the factory module; \
                         construct backends through the factory instead"
                    ),
                ));
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// vartime-usage
// ---------------------------------------------------------------------------

/// Flags calls to registered variable-time exponentiation kernels
/// (`modpow_vartime`, `multi_exp_vartime`, …) anywhere outside the
/// allowlisted files. The vartime kernels' memory trace depends on the
/// exponent, so they are only safe on broadcast/public data — the
/// constant-trace kernels' definitions and the vetted verification
/// modules are allowlisted in the policy; everything else must use the
/// constant-trace kernels.
fn rule_vartime_usage(rel: &str, toks: &[Tok], policy: &Policy) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !policy.vartime_fns.iter().any(|f| f == &t.text) {
            continue;
        }
        // A call: `name(` — not a definition (`fn name(`) and not a bare
        // mention in a path or doc.
        let is_call = i + 1 < toks.len() && toks[i + 1].is_punct("(");
        let is_def = i > 0 && toks[i - 1].is_ident("fn");
        if is_call && !is_def {
            out.push(Finding::new(
                rel,
                t.line,
                t.col,
                Rule::VartimeUsage,
                format!(
                    "variable-time kernel `{}` called outside the allowlisted \
                     public-data verification sites; use the constant-trace \
                     kernel, or add this file to rules.vartime-usage.paths \
                     with a review",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Keywords that may directly precede `[` without it being an index
/// expression (`in [..]`, `return [..]`, …).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "in" | "return"
            | "break"
            | "if"
            | "else"
            | "match"
            | "while"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "box"
            | "dyn"
            | "impl"
            | "where"
            | "for"
            | "let"
            | "const"
            | "static"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn policy() -> Policy {
        Policy::parse(
            r#"
[secret]
types = ["Key", "JoinSecret"]
idents = ["k_prime", "tag", "key"]
[sinks]
macros = ["format", "println", "dbg"]
[rules.panic-path]
paths = ["proto.rs"]
[rules.index-path]
paths = ["proto.rs"]
"#,
        )
        .unwrap()
    }

    fn findings(rel: &str, src: &str) -> Vec<(Rule, u32)> {
        let lexed = lex(src);
        lint_tokens(rel, &lexed, &policy())
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn derive_debug_on_secret_flagged() {
        let src = "#[derive(Clone, Debug)]\npub struct Key([u8; 32]);";
        assert_eq!(findings("a.rs", src), vec![(Rule::SecretDebug, 1)]);
        // Non-secret type: fine.
        let ok = "#[derive(Clone, Debug)]\npub struct Public([u8; 32]);";
        assert!(findings("a.rs", ok).is_empty());
        // Secret type without Debug: fine.
        let ok2 = "#[derive(Clone)]\npub struct Key([u8; 32]);";
        assert!(findings("a.rs", ok2).is_empty());
    }

    #[test]
    fn secret_eq_flagged() {
        assert_eq!(
            findings("a.rs", "fn f() { if tag == other { } }"),
            vec![(Rule::SecretCmp, 1)]
        );
        assert_eq!(
            findings("a.rs", "fn f() { let x = a.key != b; }"),
            vec![(Rule::SecretCmp, 1)]
        );
        assert!(findings("a.rs", "fn f() { if a.len() == b.len() { } }").is_empty());
    }

    #[test]
    fn secret_fmt_flagged() {
        assert_eq!(
            findings("a.rs", "fn f() { println!(\"{:?}\", k_prime); }"),
            vec![(Rule::SecretFmt, 1)]
        );
        assert!(findings("a.rs", "fn f() { println!(\"{}\", public); }").is_empty());
    }

    #[test]
    fn panic_and_index_scoped_by_path() {
        let src = "fn f(v: &[u8]) -> u8 { let x = v[0]; y.unwrap(); panic!(\"no\"); x }";
        let hits = findings("proto.rs", src);
        assert!(hits.contains(&(Rule::IndexPath, 1)));
        assert!(hits.iter().filter(|(r, _)| *r == Rule::PanicPath).count() == 2);
        // Out-of-scope file: silent.
        assert!(findings("other.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { tag == x; v.unwrap(); }\n}";
        assert!(findings("proto.rs", src).is_empty());
        let src2 = "#[test]\nfn t() { tag == x; }";
        assert!(findings("a.rs", src2).is_empty());
        // cfg(not(test)) is NOT exempt.
        let src3 = "#[cfg(not(test))]\nmod m {\n  fn f() { tag == x; }\n}";
        assert_eq!(findings("a.rs", src3), vec![(Rule::SecretCmp, 3)]);
    }

    #[test]
    fn factory_dispatch_scoped_by_path() {
        let p = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
[rules.factory-dispatch]
enums = ["SchemeKind"]
paths = ["factory.rs"]
"#,
        )
        .unwrap();
        let hits = |rel: &str, src: &str| -> Vec<(Rule, u32)> {
            lint_tokens(rel, &lex(src), &p)
                .into_iter()
                .map(|f| (f.rule, f.line))
                .collect()
        };
        let m = "fn f(s: SchemeKind) -> u8 { match s { SchemeKind::A => 1, _ => 2 } }";
        assert_eq!(hits("other.rs", m), vec![(Rule::FactoryDispatch, 1)]);
        // The factory module itself is exempt.
        assert!(hits("factory.rs", m).is_empty());
        // matches! is also a dispatch.
        let mm = "fn g(s: SchemeKind) -> bool { matches!(s, SchemeKind::A) }";
        assert_eq!(hits("other.rs", mm), vec![(Rule::FactoryDispatch, 1)]);
        // Construction and matches on other enums are fine.
        assert!(hits("other.rs", "fn h() -> SchemeKind { SchemeKind::A }").is_empty());
        assert!(hits(
            "other.rs",
            "fn k(o: Option<u8>) -> u8 { match o { Some(x) => x, None => 0 } }"
        )
        .is_empty());
    }

    #[test]
    fn vartime_usage_scoped_by_path() {
        let p = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
[rules.vartime-usage]
fns = ["modpow_vartime", "multi_exp_vartime"]
paths = ["verify.rs"]
"#,
        )
        .unwrap();
        let hits = |rel: &str, src: &str| -> Vec<(Rule, u32)> {
            lint_tokens(rel, &lex(src), &p)
                .into_iter()
                .map(|f| (f.rule, f.line))
                .collect()
        };
        let call = "fn f() { let y = ctx.modpow_vartime(&b, &e); }";
        assert_eq!(hits("sign.rs", call), vec![(Rule::VartimeUsage, 1)]);
        // The allowlisted verification module is exempt.
        assert!(hits("verify.rs", call).is_empty());
        // Definitions of the kernel are not calls.
        let def = "pub fn modpow_vartime(e: &U) -> U { e.clone() }";
        assert!(hits("mont.rs", def).is_empty());
        // Mentions without a call (doc paths, imports) are fine.
        assert!(hits("sign.rs", "use mont::modpow_vartime;").is_empty());
        // Constant-time kernels are never flagged.
        assert!(hits("sign.rs", "fn f() { let y = ctx.modpow(&b, &e); }").is_empty());
    }

    #[test]
    fn allow_suppresses_with_reason() {
        let src =
            "fn f() { tag == x; } // lint:allow(secret-cmp) reason=\"public commitment bytes\"";
        assert!(findings("a.rs", src).is_empty());
        // Directive above the line also works.
        let src2 = "// lint:allow(secret-cmp) reason=\"vetted\"\nfn f() { tag == x; }";
        assert!(findings("a.rs", src2).is_empty());
    }

    #[test]
    fn allow_hygiene_enforced() {
        // No reason.
        let src = "fn f() { tag == x; } // lint:allow(secret-cmp)";
        assert_eq!(findings("a.rs", src), vec![(Rule::AllowHygiene, 1)]);
        // Unused.
        let src2 = "fn f() {} // lint:allow(secret-cmp) reason=\"stale\"";
        assert_eq!(findings("a.rs", src2), vec![(Rule::AllowHygiene, 1)]);
        // Unknown rule name.
        let src3 = "fn f() {} // lint:allow(secret-compare) reason=\"typo\"";
        assert_eq!(findings("a.rs", src3), vec![(Rule::AllowHygiene, 1)]);
    }

    #[test]
    fn multi_rule_allow_with_stale_name_flagged() {
        // secret-cmp earns its keep; secret-fmt suppresses nothing and is
        // itself a finding.
        let src = "fn f() { tag == x; } // lint:allow(secret-cmp,secret-fmt) reason=\"cmp vetted\"";
        let hits = findings("a.rs", src);
        assert_eq!(hits, vec![(Rule::AllowHygiene, 1)], "{hits:?}");
    }
}
