//! A lightweight syntax layer on top of the lexer.
//!
//! This is **not** a Rust grammar. It recovers exactly the structure the
//! interprocedural analyses need from the token stream:
//!
//! * function items — name, `impl` type, parameters (name + type idents),
//!   return-type idents, body extent, `#[cfg(test)]` gating;
//! * calls — callee name, path qualifier, receiver-chain identifiers,
//!   per-argument identifiers and nested calls;
//! * `let` bindings — pattern names, ascribed type, right-hand-side
//!   identifiers/calls, and the *primary* call (the call whose result the
//!   binding evaluates to, used for declassifier matching);
//! * `return`/tail expressions;
//! * sink-macro invocations;
//! * mutex/channel events (`lock()`, `send()`, `try_send()`, `recv()`,
//!   `recv_timeout()`) with an approximated guard-release point.
//!
//! Soundness caveats of this recovery are documented in DESIGN.md §14:
//! macro-generated code is invisible, trait dispatch resolves by name,
//! and guard lifetimes are approximated from statement shape
//! (`let`-bound → end of enclosing block, `match` scrutinee → end of the
//! match, `if`/`while` condition → start of the block, other temporaries
//! → end of statement).

use crate::lexer::{Lexed, Tok, TokKind};

/// Identifiers and nested calls appearing in one expression region.
#[derive(Debug, Clone, Default)]
pub struct ExprInfo {
    /// Value identifiers in source order (callee names, path qualifiers
    /// and macro names excluded; `self` included).
    pub idents: Vec<String>,
    /// Indices (into [`FnDef::calls`]) of calls inside the region.
    pub call_ids: Vec<usize>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Last path segment of the callee (`encode_delta`, `lock`, `seal`).
    pub callee: String,
    /// Path segment just before the callee, if any (`codec`, `cs`).
    pub qual: Option<String>,
    /// Method call (`recv.name(..)`) rather than a path call.
    pub is_method: bool,
    /// Receiver chain (identifiers + nested calls), empty for path calls.
    pub recv: ExprInfo,
    /// Per-argument expression info, split on top-level commas.
    pub args: Vec<ExprInfo>,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Token index of the callee within the file token stream.
    pub tok_idx: usize,
    /// Token index of the closing `)` of the argument list.
    pub close_idx: usize,
}

/// A sink-macro invocation (`format!`, `panic!`, …).
#[derive(Debug, Clone)]
pub struct MacroUse {
    /// Macro name without the `!`.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Identifiers/calls inside the macro's delimiters.
    pub args: ExprInfo,
}

/// One `let` binding.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Names bound by the pattern (tuple/struct patterns bind several).
    pub names: Vec<String>,
    /// Identifiers of an ascribed type (`let x: Key = …`), if any.
    pub ty_idents: Vec<String>,
    /// Right-hand-side identifiers and calls.
    pub rhs: ExprInfo,
    /// The call the RHS evaluates to, when the RHS ends in a call —
    /// `let t = seal(k, m)` or a method chain ending in `.finalize()`.
    pub primary_call: Option<usize>,
    /// 1-based source line.
    pub line: u32,
}

/// Mutex/channel operation kinds tracked by the lock-order analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// `x.lock()` — acquires mutex class `x`.
    Lock,
    /// `tx.send(..)` — potentially blocking send (bounded channels).
    Send,
    /// `tx.try_send(..)` — non-blocking send.
    TrySend,
    /// `rx.recv()` — blocking receive.
    Recv,
    /// `rx.recv_timeout(..)` — bounded-wait receive.
    RecvTimeout,
}

/// One mutex/channel event with its approximated guard extent.
#[derive(Debug, Clone)]
pub struct SyncEvent {
    /// The operation.
    pub op: SyncOp,
    /// Lock/channel class: last receiver-chain identifier that is not
    /// `self` (`self.registry.lock()` → `registry`).
    pub class: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Token index of the operation within the file token stream.
    pub tok_idx: usize,
    /// For `Lock`: token index past which the guard is dead. For channel
    /// ops this equals `tok_idx` (no guard).
    pub release_idx: usize,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for the receiver).
    pub name: String,
    /// Identifiers appearing in the declared type.
    pub ty_idents: Vec<String>,
}

/// One recovered function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `impl` block type ident, when the fn is an inherent/trait method.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters in order; a receiver appears as a param named `self`.
    pub params: Vec<Param>,
    /// Identifiers appearing in the return type (`Result<Key, E>` →
    /// `Result`, `Key`, `E`).
    pub ret_ty_idents: Vec<String>,
    /// Inside a `#[cfg(test)]`/`#[test]` region (analyses skip these).
    pub in_test: bool,
    /// All calls in the body, in source order.
    pub calls: Vec<Call>,
    /// All `let` bindings.
    pub bindings: Vec<Binding>,
    /// Sink-macro invocations.
    pub macros: Vec<MacroUse>,
    /// `return` expressions plus the tail expression.
    pub returns: Vec<ExprInfo>,
    /// Mutex/channel events, in source order.
    pub sync_events: Vec<SyncEvent>,
}

/// Parse statistics for one file (analyzer self-stats).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseStats {
    /// Function items recovered.
    pub fns: usize,
    /// Call sites recovered.
    pub calls: usize,
}

/// The recovered syntax of one file.
#[derive(Debug)]
pub struct FileSyntax {
    /// Policy-root-relative path.
    pub rel: String,
    /// Function items in source order.
    pub fns: Vec<FnDef>,
    /// Parse statistics.
    pub stats: ParseStats,
}

/// Rust keywords that must never be treated as value identifiers.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "if"
            | "else"
            | "match"
            | "return"
            | "for"
            | "while"
            | "loop"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "fn"
            | "impl"
            | "dyn"
            | "where"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "const"
            | "static"
            | "unsafe"
            | "await"
    )
}

/// Builds the [`FileSyntax`] for one lexed file.
pub fn parse_file(rel: &str, lexed: &Lexed) -> FileSyntax {
    let toks = &lexed.toks;
    let test_lines = crate::rules::test_regions(toks);
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);

    let mut fns = Vec::new();
    let mut impl_stack: Vec<(String, usize)> = Vec::new(); // (type, close_idx)
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // Track `impl Type { … }` / `impl Trait for Type { … }` blocks so
        // methods know their Self type.
        if t.is_ident("impl") {
            if let Some((ty, open)) = impl_header(toks, i) {
                let close = matching_brace(toks, open);
                impl_stack.push((ty, close));
                i = open + 1;
                continue;
            }
        }
        impl_stack.retain(|(_, close)| i <= *close);
        if t.is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let self_ty = impl_stack.last().map(|(ty, _)| ty.clone());
            if let Some((def, next)) = parse_fn(toks, i, self_ty, in_test(t.line)) {
                fns.push(def);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    let stats = ParseStats {
        fns: fns.len(),
        calls: fns.iter().map(|f| f.calls.len()).sum(),
    };
    FileSyntax {
        rel: rel.to_string(),
        fns,
        stats,
    }
}

/// Parses `impl … {`: returns the Self-type ident and the `{` index.
fn impl_header(toks: &[Tok], at: usize) -> Option<(String, usize)> {
    let mut i = at + 1;
    let mut idents: Vec<String> = Vec::new();
    let mut after_for: Option<usize> = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            // `impl Trait for Type` → the type is the segment after `for`;
            // plain `impl Type` → the first path segment.
            let pick = match after_for {
                Some(mark) if mark < idents.len() => idents.get(mark),
                _ => idents.first(),
            };
            return pick.map(|ty| (ty.clone(), i));
        }
        if t.is_punct(";") {
            return None;
        }
        if t.is_ident("for") {
            after_for = Some(idents.len());
        } else if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
            idents.push(t.text.clone());
        }
        i += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Parses one `fn` item starting at the `fn` keyword. Returns the def and
/// the index just past the body (or the `;` of a bodyless declaration).
fn parse_fn(
    toks: &[Tok],
    at: usize,
    self_ty: Option<String>,
    in_test: bool,
) -> Option<(FnDef, usize)> {
    let name = toks[at + 1].text.clone();
    let line = toks[at].line;
    let mut i = at + 2;
    // Generics: count `<`/`>` characters (the lexer may fuse `>>`).
    if i < toks.len() && toks[i].is_punct("<") {
        let mut depth = 0i32;
        while i < toks.len() {
            let txt = &toks[i].text;
            if toks[i].kind == TokKind::Punct {
                depth += txt.matches('<').count() as i32;
                depth -= txt.matches('>').count() as i32;
                // `->` inside generics cannot appear; no correction needed.
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if i >= toks.len() || !toks[i].is_punct("(") {
        return None;
    }
    let params_open = i;
    let params_close = matching_paren(toks, params_open)?;
    let params = parse_params(toks, params_open, params_close);

    // Return type: idents between `->` and `{`/`;`/`where`.
    let mut ret_ty_idents = Vec::new();
    let mut j = params_close + 1;
    if j < toks.len() && toks[j].is_punct("->") {
        j += 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") || t.is_punct(";") || t.is_ident("where") {
                break;
            }
            if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
                ret_ty_idents.push(t.text.clone());
            }
            j += 1;
        }
    }
    // Skip a where clause.
    while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    if toks[j].is_punct(";") {
        // Trait method declaration without a body.
        let def = FnDef {
            name,
            self_ty,
            line,
            params,
            ret_ty_idents,
            in_test,
            calls: Vec::new(),
            bindings: Vec::new(),
            macros: Vec::new(),
            returns: Vec::new(),
            sync_events: Vec::new(),
        };
        return Some((def, j + 1));
    }
    let body_open = j;
    let body_close = matching_brace(toks, body_open);
    let mut def = FnDef {
        name,
        self_ty,
        line,
        params,
        ret_ty_idents,
        in_test,
        calls: Vec::new(),
        bindings: Vec::new(),
        macros: Vec::new(),
        returns: Vec::new(),
        sync_events: Vec::new(),
    };
    scan_body(toks, body_open + 1, body_close, &mut def);
    Some((def, body_close + 1))
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("(") {
            depth += 1;
        } else if toks[i].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Parses the parameter list between `open` and `close` (exclusive).
fn parse_params(toks: &[Tok], open: usize, close: usize) -> Vec<Param> {
    let mut params = Vec::new();
    let mut start = open + 1;
    let mut depth = 0i32;
    let mut i = open + 1;
    while i <= close {
        let at_end = i == close;
        let t = &toks[i];
        if !at_end && (t.is_punct("(") || t.is_punct("[")) {
            depth += 1;
        } else if !at_end && (t.is_punct(")") || t.is_punct("]")) {
            depth -= 1;
        } else if t.kind == TokKind::Punct {
            depth += t.text.matches('<').count() as i32;
            depth -= t.text.matches('>').count() as i32;
            if t.is_punct("->") {
                depth += 1; // undo the '>' counted above
            }
        }
        if at_end || (t.is_punct(",") && depth == 0) {
            if let Some(p) = parse_one_param(toks, start, i) {
                params.push(p);
            }
            start = i + 1;
        }
        i += 1;
    }
    params
}

/// Parses one parameter slice `[start, end)`: `name: Type`, `&self`,
/// `mut name: Type`, pattern params take the last pre-`:` ident.
fn parse_one_param(toks: &[Tok], start: usize, end: usize) -> Option<Param> {
    if start >= end {
        return None;
    }
    let colon = (start..end).find(|&k| toks[k].is_punct(":"));
    match colon {
        None => {
            // Receiver form: `self`, `&self`, `&mut self`, `mut self`.
            (start..end)
                .find(|&k| toks[k].is_ident("self"))
                .map(|_| Param {
                    name: "self".to_string(),
                    ty_idents: Vec::new(),
                })
        }
        Some(c) => {
            let name = (start..c)
                .rev()
                .find(|&k| {
                    toks[k].kind == TokKind::Ident
                        && !matches!(toks[k].text.as_str(), "mut" | "ref")
                })
                .map(|k| toks[k].text.clone())?;
            let mut ty_idents = Vec::new();
            for t in &toks[c + 1..end] {
                if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
                    ty_idents.push(t.text.clone());
                }
            }
            Some(Param { name, ty_idents })
        }
    }
}

// ---------------------------------------------------------------------------
// Body scanning
// ---------------------------------------------------------------------------

/// Names treated as mutex/channel operations when called as methods.
fn sync_op_of(name: &str) -> Option<SyncOp> {
    match name {
        "lock" => Some(SyncOp::Lock),
        "send" => Some(SyncOp::Send),
        "try_send" => Some(SyncOp::TrySend),
        "recv" => Some(SyncOp::Recv),
        "recv_timeout" => Some(SyncOp::RecvTimeout),
        _ => None,
    }
}

/// Scans the body tokens `[start, end)` and fills `def`.
fn scan_body(toks: &[Tok], start: usize, end: usize, def: &mut FnDef) {
    collect_calls_and_macros(toks, start, end, def);
    collect_bindings_and_returns(toks, start, end, def);
    collect_sync_events(toks, start, end, def);
}

/// Is the token at `i` the callee of a call (`name(`), excluding macro
/// invocations (`name!(`) and definitions (`fn name(`)?
fn is_call_at(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == TokKind::Ident
        && !is_expr_keyword(&toks[i].text)
        && i + 1 < toks.len()
        && toks[i + 1].is_punct("(")
        && !(i > 0 && toks[i - 1].is_ident("fn"))
}

/// First pass: every call and sink-macro invocation in `[start, end)`.
fn collect_calls_and_macros(toks: &[Tok], start: usize, end: usize, def: &mut FnDef) {
    // (open paren, close paren, receiver token span if a method call).
    type CallExtent = (usize, usize, Option<(usize, usize)>);
    let mut call_extents: Vec<CallExtent> = Vec::new();
    let mut macro_extents: Vec<(usize, usize)> = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // Macro use: name ! ( … )   (also [ and { delimiters).
        if t.kind == TokKind::Ident
            && i + 2 < end
            && toks[i + 1].is_punct("!")
            && (toks[i + 2].is_punct("(") || toks[i + 2].is_punct("[") || toks[i + 2].is_punct("{"))
        {
            let close = match toks[i + 2].text.as_str() {
                "(" => matching_paren(toks, i + 2).unwrap_or(end.saturating_sub(1)),
                "[" => matching_delim(toks, i + 2, "[", "]"),
                _ => matching_brace(toks, i + 2),
            };
            def.macros.push(MacroUse {
                name: t.text.clone(),
                line: t.line,
                col: t.col,
                args: ExprInfo::default(), // filled after calls exist
            });
            macro_extents.push((i + 3, close));
            i += 3;
            continue;
        }
        if is_call_at(toks, i) {
            let open = i + 1;
            let close = matching_paren(toks, open).unwrap_or(end.saturating_sub(1));
            let (qual, is_method, recv_range) = call_context(toks, i);
            def.calls.push(Call {
                callee: t.text.clone(),
                qual,
                is_method,
                recv: ExprInfo::default(),
                args: Vec::new(),
                line: t.line,
                col: t.col,
                tok_idx: i,
                close_idx: close,
            });
            call_extents.push((open + 1, close, recv_range));
        }
        i += 1;
    }
    // Second sweep: fill args/recv/macro idents now that all calls are
    // known (nested calls need the full call list for `call_ids`).
    for (idx, (astart, aclose, recv_range)) in call_extents.into_iter().enumerate() {
        let args = split_args(toks, astart, aclose, &def.calls);
        let recv = match recv_range {
            Some((rs, re)) => expr_info(toks, rs, re, &def.calls),
            None => ExprInfo::default(),
        };
        def.calls[idx].args = args;
        def.calls[idx].recv = recv;
    }
    for (idx, (mstart, mclose)) in macro_extents.into_iter().enumerate() {
        def.macros[idx].args = expr_info(toks, mstart, mclose, &def.calls);
    }
}

/// Classifies the tokens before a callee: `(qual, is_method, recv_range)`.
fn call_context(toks: &[Tok], callee: usize) -> (Option<String>, bool, Option<(usize, usize)>) {
    if callee == 0 {
        return (None, false, None);
    }
    if toks[callee - 1].is_punct(".") {
        // Method call: receiver chain walks back over idents, `.`,
        // balanced groups and `?`.
        let mut i = callee - 1;
        loop {
            if i == 0 {
                break;
            }
            let p = &toks[i - 1];
            let extend = match p.kind {
                TokKind::Ident => !is_expr_keyword(&p.text),
                TokKind::Punct => match p.text.as_str() {
                    "." | "?" | "::" => true,
                    ")" | "]" => {
                        // Skip the balanced group backwards.
                        let close = p.text.clone();
                        let open = if close == ")" { "(" } else { "[" };
                        let mut depth = 1usize;
                        let mut k = i - 1;
                        while k > 0 && depth > 0 {
                            k -= 1;
                            if toks[k].is_punct(&close) {
                                depth += 1;
                            } else if toks[k].is_punct(open) {
                                depth -= 1;
                            }
                        }
                        i = k + 1; // re-enter loop just past the group open
                        if k == 0 {
                            break;
                        }
                        i -= 1;
                        continue;
                    }
                    _ => false,
                },
                _ => false,
            };
            if !extend {
                break;
            }
            i -= 1;
        }
        return (None, true, Some((i, callee - 1)));
    }
    if toks[callee - 1].is_punct("::") && callee >= 2 && toks[callee - 2].kind == TokKind::Ident {
        return (Some(toks[callee - 2].text.clone()), false, None);
    }
    (None, false, None)
}

/// Splits a call's argument tokens `[start, close)` on top-level commas.
fn split_args(toks: &[Tok], start: usize, close: usize, calls: &[Call]) -> Vec<ExprInfo> {
    let mut args = Vec::new();
    let mut seg_start = start;
    let mut depth = 0i32;
    let mut i = start;
    while i <= close {
        let at_end = i == close;
        if !at_end {
            let t = &toks[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            }
        }
        if at_end || (toks[i].is_punct(",") && depth == 0) {
            if seg_start < i {
                args.push(expr_info(toks, seg_start, i, calls));
            }
            seg_start = i + 1;
        }
        i += 1;
    }
    args
}

/// Collects value idents and call ids within `[start, end)`.
fn expr_info(toks: &[Tok], start: usize, end: usize, calls: &[Call]) -> ExprInfo {
    let mut info = ExprInfo::default();
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_expr_keyword(&t.text) {
            continue;
        }
        // Skip callee names, path qualifiers and macro names.
        let is_callee = i + 1 < toks.len() && toks[i + 1].is_punct("(");
        let is_qual = i + 1 < toks.len() && toks[i + 1].is_punct("::");
        let is_macro = i + 1 < toks.len() && toks[i + 1].is_punct("!");
        if is_qual || is_macro {
            continue;
        }
        if is_callee {
            continue; // the call itself is captured via call_ids
        }
        if !info.idents.contains(&t.text) {
            info.idents.push(t.text.clone());
        }
    }
    for (id, c) in calls.iter().enumerate() {
        if c.tok_idx >= start && c.tok_idx < end {
            info.call_ids.push(id);
        }
    }
    info
}

/// Closing delimiter index for a non-paren open delimiter.
fn matching_delim(toks: &[Tok], open: usize, o: &str, c: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(o) {
            depth += 1;
        } else if toks[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Second pass: `let` bindings, `return` expressions, and the tail expr.
fn collect_bindings_and_returns(toks: &[Tok], start: usize, end: usize, def: &mut FnDef) {
    let mut i = start;
    let mut last_stmt_end = start; // start of the current top-level segment
    let mut depth = 0i32;
    while i < end {
        let t = &toks[i];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            last_stmt_end = i + 1;
        } else if t.is_ident("let") {
            if let Some((binding, next)) = parse_let(toks, i, end, &def.calls) {
                // If the RHS opens a block (`let x = { let g = m.lock(); … };`,
                // match/if RHS, closure bodies), walk *into* it so nested
                // `let`s and `return`s are collected too; the statement's
                // own `;` restores the bookkeeping. Flat RHS skips ahead.
                let rhs_start = i + 1;
                let has_block = (rhs_start..next.min(end)).any(|k| toks[k].is_punct("{"));
                def.bindings.push(binding);
                if has_block {
                    i = rhs_start;
                } else {
                    i = next;
                    if depth == 0 {
                        last_stmt_end = i;
                    }
                }
                continue;
            }
        } else if t.is_ident("return") {
            // Idents/calls up to the terminating `;` (or end).
            let mut j = i + 1;
            let mut d = 0i32;
            while j < end {
                let tj = &toks[j];
                if tj.is_punct("(") || tj.is_punct("[") || tj.is_punct("{") {
                    d += 1;
                } else if tj.is_punct(")") || tj.is_punct("]") || tj.is_punct("}") {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                } else if tj.is_punct(";") && d == 0 {
                    break;
                }
                j += 1;
            }
            def.returns.push(expr_info(toks, i + 1, j, &def.calls));
            i = j;
            continue;
        }
        i += 1;
    }
    // Tail expression: the final top-level segment, if non-empty.
    if last_stmt_end < end {
        let tail = expr_info(toks, last_stmt_end, end, &def.calls);
        if !tail.idents.is_empty() || !tail.call_ids.is_empty() {
            def.returns.push(tail);
        }
    }
}

/// Parses `let pat[: Ty] = rhs ;` starting at the `let`. Returns the
/// binding and the index just past the terminating `;`.
fn parse_let(toks: &[Tok], at: usize, end: usize, calls: &[Call]) -> Option<(Binding, usize)> {
    let line = toks[at].line;
    // Pattern: up to top-level `=` (but not `==` / `=>`).
    let mut i = at + 1;
    let mut depth = 0i32;
    let mut colon: Option<usize> = None;
    let eq = loop {
        if i >= end {
            return None;
        }
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(":") && depth == 0 && colon.is_none() {
            colon = Some(i);
        } else if t.is_punct("=") && depth == 0 {
            break i;
        } else if t.is_punct(";") && depth == 0 {
            return None; // `let x;` — no RHS to track
        } else if t.kind == TokKind::Punct {
            // `<`/`>` inside a type ascription (generics).
            depth += t.text.matches('<').count() as i32;
            depth -= t.text.matches('>').count() as i32;
        }
        i += 1;
    };
    let pat_end = colon.unwrap_or(eq);
    let mut names = Vec::new();
    for k in at + 1..pat_end {
        let t = &toks[k];
        if t.kind != TokKind::Ident || matches!(t.text.as_str(), "mut" | "ref") {
            continue;
        }
        // Constructor paths in patterns (`Some(x)`, `Wire { .. }`) are not
        // bindings; skip idents followed by `(`/`::`/`{`.
        let next_is = |s: &str| k + 1 < pat_end && toks[k + 1].is_punct(s);
        if next_is("(") || next_is("::") || next_is("{") {
            continue;
        }
        names.push(t.text.clone());
    }
    if names.is_empty() {
        return None;
    }
    let mut ty_idents = Vec::new();
    if let Some(c) = colon {
        for t in &toks[c + 1..eq] {
            if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
                ty_idents.push(t.text.clone());
            }
        }
    }
    // RHS: up to the matching `;` at depth 0.
    let mut j = eq + 1;
    let mut d = 0i32;
    while j < end {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            d += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            d -= 1;
        } else if t.is_punct(";") && d <= 0 {
            break;
        }
        j += 1;
    }
    let rhs = expr_info(toks, eq + 1, j, calls);
    // Primary call: the call whose `)` closes the RHS (modulo trailing `?`).
    let mut tail_idx = j;
    while tail_idx > eq + 1 && toks[tail_idx - 1].is_punct("?") {
        tail_idx -= 1;
    }
    let primary_call = calls
        .iter()
        .position(|c| c.close_idx + 1 == tail_idx)
        .filter(|_| tail_idx > eq + 1 && toks[tail_idx - 1].is_punct(")"));
    Some((
        Binding {
            names,
            ty_idents,
            rhs,
            primary_call,
            line,
        },
        j + 1,
    ))
}

/// Third pass: mutex/channel events with guard-release approximation.
fn collect_sync_events(toks: &[Tok], start: usize, end: usize, def: &mut FnDef) {
    for call in &def.calls {
        if !call.is_method {
            continue;
        }
        let Some(op) = sync_op_of(&call.callee) else {
            continue;
        };
        let class = call
            .recv
            .idents
            .iter()
            .rev()
            .find(|s| s.as_str() != "self")
            .cloned()
            .unwrap_or_else(|| def.self_ty.clone().unwrap_or_else(|| "self".into()));
        let release_idx = if op == SyncOp::Lock {
            guard_release(toks, start, end, call)
        } else {
            call.close_idx
        };
        def.sync_events.push(SyncEvent {
            op,
            class,
            line: call.line,
            col: call.col,
            tok_idx: call.tok_idx,
            release_idx,
        });
    }
    def.sync_events.sort_by_key(|e| e.tok_idx);
}

/// Approximates where the guard returned by `call` (an `x.lock()`) dies.
///
/// * `let g = x.lock();` → end of the enclosing block (or `drop(g)`);
/// * `match x.lock()… {…}` → end of the match (scrutinee temporaries live
///   through the whole match);
/// * `if`/`while` conditions → start of the block (temporaries drop);
/// * anything else → end of the statement (`;`).
fn guard_release(toks: &[Tok], body_start: usize, body_end: usize, call: &Call) -> usize {
    // Statement start: token after the nearest preceding `;`, `{` or `}`.
    let mut s = call.tok_idx;
    while s > body_start {
        let p = &toks[s - 1];
        if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") {
            break;
        }
        s -= 1;
    }
    let head = &toks[s];
    // `let id = x.lock().admit(…);` binds the *result of the chain*, not
    // the guard — the guard is a temporary dying at the `;`. Only
    // `.unwrap()`/`.expect(…)` keep the guard alive (they unwrap a
    // `LockResult` into the guard itself).
    let chain_consumed = head.is_ident("let") && {
        let mut i = call.close_idx + 1;
        while i + 1 < body_end
            && toks[i].is_punct(".")
            && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
        {
            i += 2;
            if i < body_end && toks[i].is_punct("(") {
                let mut depth = 0i32;
                while i < body_end {
                    if toks[i].is_punct("(") {
                        depth += 1;
                    } else if toks[i].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        i < body_end && toks[i].is_punct(".")
    };
    if head.is_ident("let") && !chain_consumed {
        // Guard name (for early `drop(name)`).
        let guard = (s + 1..call.tok_idx)
            .find(|&k| {
                toks[k].kind == TokKind::Ident && !matches!(toks[k].text.as_str(), "mut" | "ref")
            })
            .map(|k| toks[k].text.clone());
        // Enclosing block close: first `}` that takes relative depth
        // negative.
        let mut depth = 0i32;
        let mut i = call.close_idx + 1;
        while i < body_end {
            let t = &toks[i];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if let Some(g) = &guard {
                // `drop(g)` ends the guard early.
                if t.is_ident("drop")
                    && i + 2 < body_end
                    && toks[i + 1].is_punct("(")
                    && toks[i + 2].is_ident(g)
                {
                    return i;
                }
            }
            i += 1;
        }
        return i.min(body_end);
    }
    if head.is_ident("match") {
        // First `{` at relative depth 0, then its matching `}`.
        let mut depth = 0i32;
        let mut i = call.close_idx + 1;
        while i < body_end {
            let t = &toks[i];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                return matching_brace(toks, i).min(body_end);
            }
            i += 1;
        }
        return body_end;
    }
    if head.is_ident("if") || head.is_ident("while") {
        // Temporaries in the condition drop at the block open.
        let mut depth = 0i32;
        let mut i = call.close_idx + 1;
        while i < body_end {
            let t = &toks[i];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                return i;
            }
            i += 1;
        }
        return body_end;
    }
    // Plain statement temporary: dies at the `;`.
    let mut depth = 0i32;
    let mut i = call.close_idx + 1;
    while i < body_end {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(";") && depth <= 0 {
            return i;
        }
        i += 1;
    }
    body_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileSyntax {
        parse_file("t.rs", &lex(src))
    }

    #[test]
    fn fn_signature_recovered() {
        let s = parse("pub fn seal(key: &Key, msg: &[u8]) -> Result<Vec<u8>, E> { msg.to_vec() }");
        assert_eq!(s.fns.len(), 1);
        let f = &s.fns[0];
        assert_eq!(f.name, "seal");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "key");
        assert_eq!(f.params[0].ty_idents, vec!["Key"]);
        assert!(f.ret_ty_idents.contains(&"Result".to_string()));
        assert_eq!(f.returns.len(), 1, "tail expr captured");
    }

    #[test]
    fn impl_methods_get_self_type() {
        let s = parse("impl RsaSecret { fn root(&self, x: &Ubig) -> Ubig { x.clone() } }");
        let f = &s.fns[0];
        assert_eq!(f.self_ty.as_deref(), Some("RsaSecret"));
        assert_eq!(f.params[0].name, "self");
        // `impl Trait for Type` picks the type.
        let s2 = parse("impl Drop for Key { fn drop(&mut self) { } }");
        assert_eq!(s2.fns[0].self_ty.as_deref(), Some("Key"));
    }

    #[test]
    fn calls_with_args_and_qualifiers() {
        let s = parse("fn f(k: Key) { let t = aead::seal(&k, &sid); g(t, 3); }");
        let f = &s.fns[0];
        let seal = f.calls.iter().find(|c| c.callee == "seal").unwrap();
        assert_eq!(seal.qual.as_deref(), Some("aead"));
        assert_eq!(seal.args.len(), 2);
        assert_eq!(seal.args[0].idents, vec!["k"]);
        let g = f.calls.iter().find(|c| c.callee == "g").unwrap();
        assert_eq!(g.args.len(), 2);
        assert_eq!(g.args[0].idents, vec!["t"]);
    }

    #[test]
    fn method_chain_receiver() {
        let s = parse("fn f(k: Key) { let t = mac.update(&k).finalize(); }");
        let f = &s.fns[0];
        let fin = f.calls.iter().find(|c| c.callee == "finalize").unwrap();
        assert!(fin.is_method);
        assert!(fin.recv.idents.contains(&"mac".to_string()));
        // The binding's primary call is the chain tail.
        let b = &f.bindings[0];
        assert_eq!(b.names, vec!["t"]);
        assert_eq!(
            b.primary_call.map(|i| f.calls[i].callee.clone()),
            Some("finalize".to_string())
        );
    }

    #[test]
    fn bindings_track_types_and_rhs() {
        let s = parse("fn f() { let x: Key = derive(seed); let (a, b) = pair(); }");
        let f = &s.fns[0];
        assert_eq!(f.bindings[0].ty_idents, vec!["Key"]);
        assert_eq!(f.bindings[0].rhs.idents, vec!["seed"]);
        assert_eq!(f.bindings[1].names, vec!["a", "b"]);
    }

    #[test]
    fn return_exprs_collected() {
        let s = parse("fn f(k: Key) -> Key { if early { return k; } derive(k) }");
        let f = &s.fns[0];
        assert_eq!(f.returns.len(), 2);
        assert!(f.returns[0].idents.contains(&"k".to_string()));
        assert!(!f.returns[1].call_ids.is_empty());
    }

    #[test]
    fn sync_events_and_guard_release() {
        let src = "fn f(&self) {
            let mut reg = self.registry.lock();
            reg.insert(1);
            self.shapes.lock().learn(2);
            tx.send(w);
        }";
        let s = parse(src);
        let f = &s.fns[0];
        let locks: Vec<_> = f
            .sync_events
            .iter()
            .filter(|e| e.op == SyncOp::Lock)
            .collect();
        assert_eq!(locks.len(), 2);
        assert_eq!(locks[0].class, "registry");
        assert_eq!(locks[1].class, "shapes");
        // let-bound guard lives to end of fn body; statement temporary
        // dies at its `;` — i.e. registry's release is *after* shapes'.
        assert!(locks[0].release_idx > locks[1].release_idx);
        let send = f.sync_events.iter().find(|e| e.op == SyncOp::Send).unwrap();
        assert_eq!(send.class, "tx");
    }

    #[test]
    fn match_scrutinee_guard_spans_the_match() {
        let src =
            "fn f() { match q.lock().pop() { Some(x) => use_it(x), None => idle() } done(); }";
        let s = parse(src);
        let f = &s.fns[0];
        let lock = f.sync_events.iter().find(|e| e.op == SyncOp::Lock).unwrap();
        let use_call = f.calls.iter().find(|c| c.callee == "use_it").unwrap();
        let done = f.calls.iter().find(|c| c.callee == "done").unwrap();
        assert!(lock.release_idx > use_call.tok_idx, "held inside match");
        assert!(lock.release_idx < done.tok_idx, "released after match");
    }

    #[test]
    fn if_condition_guard_drops_at_block() {
        let src = "fn f() { if reg.lock().active() == 0 { finish(); } }";
        let s = parse(src);
        let f = &s.fns[0];
        let lock = f.sync_events.iter().find(|e| e.op == SyncOp::Lock).unwrap();
        let finish = f.calls.iter().find(|c| c.callee == "finish").unwrap();
        assert!(lock.release_idx < finish.tok_idx);
    }

    #[test]
    fn drop_releases_let_guard_early() {
        let src = "fn f() { let g = m.lock(); step(); drop(g); late(); }";
        let s = parse(src);
        let f = &s.fns[0];
        let lock = f.sync_events.iter().find(|e| e.op == SyncOp::Lock).unwrap();
        let late = f.calls.iter().find(|c| c.callee == "late").unwrap();
        assert!(lock.release_idx < late.tok_idx);
    }

    #[test]
    fn test_gated_fns_marked() {
        let src = "#[cfg(test)]\nmod t { fn helper() { } }\nfn real() { }";
        let s = parse(src);
        let helper = s.fns.iter().find(|f| f.name == "helper").unwrap();
        let real = s.fns.iter().find(|f| f.name == "real").unwrap();
        assert!(helper.in_test);
        assert!(!real.in_test);
    }

    #[test]
    fn macro_args_collected() {
        let s = parse("fn f(k: Key) { println!(\"{:?}\", k.bytes); }");
        let f = &s.fns[0];
        assert_eq!(f.macros.len(), 1);
        assert_eq!(f.macros[0].name, "println");
        assert!(f.macros[0].args.idents.contains(&"k".to_string()));
    }
}
