//! Interprocedural secret-taint dataflow (rule `secret-taint`).
//!
//! Taint is seeded from the written policy — parameters, bindings, and
//! `impl` receivers of registered secret-material types, and values
//! named by a registered secret identifier — and propagated
//! context-insensitively over the workspace call graph: through `let`
//! bindings, through call arguments into callee parameters, and back out
//! of calls whose return values carry taint.
//!
//! The lattice has two tainted levels. A value is **strong** when it *is*
//! secret material: a seed, an alias of one, or the result of a call
//! whose return chain is secret-typed. It is **weak** when it was merely
//! *derived* from secret material through computation (a masked exponent,
//! a roster sampled from a secret-seeded DRBG). The distinction is what
//! each sink class cares about:
//!
//! 1. *vartime* — the registered variable-time kernels flag **any**
//!    taint: a blinded or derived exponent still drives the
//!    square-multiply trace;
//! 2. *fmt* — format/print/panic macros flag **strong** taint only
//!    (printing a value derived from a secret is normal protocol
//!    output; printing the secret itself never is). Bodies of manual
//!    `fn fmt` impls are exempt — they are the redaction point the
//!    `secret-debug` rule forces into existence, and the site-local
//!    `secret-fmt` token rule still patrols them;
//! 3. *wire* — raw wire-encode functions flag **strong** taint outside
//!    the registered decoy/AEAD construction paths.
//!
//! Keyed one-way primitives (`seal`, `encrypt`, HMAC `finalize`, …) are
//! registered **declassifiers**: their outputs are published by protocol
//! design, so a call to one yields a clean value. The soundness caveats
//! of this model are written down in DESIGN.md §14.

use crate::graph::{CallGraph, FnId, Resolution};
use crate::policy::{Policy, Rule};
use crate::report::Finding;
use crate::syntax::{Call, ExprInfo, FileSyntax, FnDef};
use std::collections::BTreeMap;

/// Taint-analysis self-stats for the JSON report.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaintStats {
    /// Values seeded tainted from the policy.
    pub seeds: usize,
    /// Functions holding at least one tainted value at fixpoint.
    pub tainted_fns: usize,
    /// Global fixpoint iterations until stable.
    pub iterations: usize,
}

/// How tainted a value is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Strength {
    /// Derived from secret material through computation.
    Weak,
    /// Is secret material (seed, alias, or secret-typed return).
    Strong,
}

type Taint = (Strength, String);

/// Per-function taint state.
#[derive(Debug, Default, Clone)]
struct FnTaint {
    /// Tainted value names → (strength, provenance).
    values: BTreeMap<String, Taint>,
    /// Tainted call results (index into `FnDef::calls`).
    call_results: BTreeMap<usize, Taint>,
    /// Parameters tainted from call sites.
    param_in: BTreeMap<String, Taint>,
    /// Taint carried by the function's return value.
    returns_taint: Option<Taint>,
    /// The return taint comes from a secret return *type* (a keygen/
    /// derive producing secret material no matter the inputs), as
    /// opposed to data-flow from the fn's own inputs.
    returns_ty_seeded: bool,
}

impl FnTaint {
    /// Inserts keeping the stronger of old and new.
    fn upgrade<K: Ord>(map: &mut BTreeMap<K, Taint>, key: K, t: Taint) -> bool {
        match map.get(&key) {
            Some((s, _)) if *s >= t.0 => false,
            _ => {
                map.insert(key, t);
                true
            }
        }
    }
}

/// Runs the analysis; returns findings plus self-stats.
pub fn analyze(
    files: &[FileSyntax],
    graph: &CallGraph,
    policy: &Policy,
) -> (Vec<Finding>, TaintStats) {
    let mut ids: Vec<FnId> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if !f.in_test {
                ids.push((fi, ni));
            }
        }
    }
    let mut state: BTreeMap<FnId, FnTaint> =
        ids.iter().map(|id| (*id, FnTaint::default())).collect();
    let mut stats = TaintStats::default();

    // Global fixpoint: local propagation + cross-fn param/return effects.
    const MAX_ITERS: usize = 40;
    for iter in 0..MAX_ITERS {
        stats.iterations = iter + 1;
        let mut changed = false;
        for &id in &ids {
            let before = snapshot(&state[&id]);
            propagate_local(files, id, graph, policy, &mut state);
            if snapshot(&state[&id]) != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    stats.seeds = ids
        .iter()
        .map(|id| seed_count(crate::graph::fn_def(files, *id), policy))
        .sum();
    stats.tainted_fns = ids
        .iter()
        .filter(|id| !state[id].values.is_empty() || !state[id].call_results.is_empty())
        .count();

    // Sink pass.
    let mut findings = Vec::new();
    for &id in &ids {
        let def = crate::graph::fn_def(files, id);
        let rel = &files[id.0].rel;
        let st = &state[&id];
        sink_pass(def, rel, st, policy, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    (findings, stats)
}

/// A comparable snapshot of one fn's taint state (for fixpoint detection).
type TaintShape = (
    Vec<(String, Strength)>,
    Vec<(usize, Strength)>,
    Vec<(String, Strength)>,
    Option<(Strength, bool)>,
);

fn snapshot(t: &FnTaint) -> TaintShape {
    (
        t.values.iter().map(|(k, (s, _))| (k.clone(), *s)).collect(),
        t.call_results.iter().map(|(k, (s, _))| (*k, *s)).collect(),
        t.param_in
            .iter()
            .map(|(k, (s, _))| (k.clone(), *s))
            .collect(),
        t.returns_taint
            .as_ref()
            .map(|(s, _)| (*s, t.returns_ty_seeded)),
    )
}

/// Number of policy-seeded values in one fn (stats only).
fn seed_count(def: &FnDef, policy: &Policy) -> usize {
    let mut n = 0;
    for p in &def.params {
        if param_seed(def, p.name.as_str(), &p.ty_idents, policy).is_some() {
            n += 1;
        }
    }
    for b in &def.bindings {
        for name in &b.names {
            if binding_seed(name, &b.ty_idents, policy).is_some() {
                n += 1;
            }
        }
    }
    n
}

fn is_seed_type(policy: &Policy, idents: &[String]) -> Option<String> {
    idents
        .iter()
        .find(|t| policy.taint_seed_types().iter().any(|s| s == *t))
        .cloned()
}

fn param_seed(def: &FnDef, name: &str, ty: &[String], policy: &Policy) -> Option<String> {
    if name == "self" {
        let st = def.self_ty.as_deref()?;
        if policy.taint_seed_types().iter().any(|s| s == st) {
            return Some(format!("receiver of secret type `{st}`"));
        }
        return None;
    }
    if let Some(t) = is_seed_type(policy, ty) {
        return Some(format!("parameter of secret type `{t}`"));
    }
    if policy.secret_idents.iter().any(|s| s == name) {
        return Some("parameter named as a registered secret".to_string());
    }
    None
}

fn binding_seed(name: &str, ty: &[String], policy: &Policy) -> Option<String> {
    if let Some(t) = is_seed_type(policy, ty) {
        return Some(format!("binding of secret type `{t}`"));
    }
    if policy.secret_idents.iter().any(|s| s == name) {
        return Some("binding named as a registered secret".to_string());
    }
    None
}

/// The strongest tainted value or nested call result in `e`, as
/// (offending name, strength, provenance).
fn expr_taint(e: &ExprInfo, st: &FnTaint, def: &FnDef) -> Option<(String, Strength, String)> {
    let mut best: Option<(String, Strength, String)> = None;
    let mut consider = |name: String, t: &Taint| {
        if best.as_ref().is_none_or(|(_, s, _)| *s < t.0) {
            best = Some((name, t.0, t.1.clone()));
        }
    };
    for id in &e.idents {
        if let Some(t) = st.values.get(id) {
            consider(id.clone(), t);
        }
    }
    for ci in &e.call_ids {
        if let Some(t) = st.call_results.get(ci) {
            consider(format!("{}(..)", def.calls[*ci].callee), t);
        }
    }
    best
}

/// One round of local propagation for `id`, updating `state` in place
/// (including callee param taint, which is why the whole map is passed).
fn propagate_local(
    files: &[FileSyntax],
    id: FnId,
    graph: &CallGraph,
    policy: &Policy,
    state: &mut BTreeMap<FnId, FnTaint>,
) {
    let def = crate::graph::fn_def(files, id);
    // Seeds.
    let mut st = state[&id].clone();
    for p in &def.params {
        if let Some(why) = param_seed(def, &p.name, &p.ty_idents, policy) {
            FnTaint::upgrade(&mut st.values, p.name.clone(), (Strength::Strong, why));
        }
    }
    for (name, t) in st.param_in.clone() {
        FnTaint::upgrade(&mut st.values, name, t);
    }
    for b in &def.bindings {
        for name in &b.names {
            if let Some(why) = binding_seed(name, &b.ty_idents, policy) {
                FnTaint::upgrade(&mut st.values, name.clone(), (Strength::Strong, why));
            }
        }
    }

    // Inner fixpoint over bindings and call results (flow-insensitive).
    loop {
        let mut changed = false;
        for (ci, call) in def.calls.iter().enumerate() {
            if policy.taint_declassify.iter().any(|d| d == &call.callee) {
                continue; // declassifier results are clean by policy
            }
            let input = expr_taint(&call.recv, &st, def)
                .or_else(|| call.args.iter().find_map(|a| expr_taint(a, &st, def)));
            let result_taint: Option<Taint> = match graph.resolution(id, ci) {
                Resolution::Resolved(target) => {
                    // Push taint into callee params.
                    push_args(files, def, call, target, &st, state);
                    let ty_seeded = state[&target].returns_ty_seeded;
                    state[&target].returns_taint.clone().and_then(|(s, why)| {
                        // A data-flow return ("returns its receiver's
                        // contents") only carries taint when *this*
                        // call site feeds it tainted input, capped at
                        // that input's strength — name-based method
                        // resolution would otherwise mark e.g. every
                        // `x.as_ref()` with the strength of the one
                        // secret impl of `as_ref`. Secret-typed
                        // returns (keygens) taint unconditionally.
                        let s = if ty_seeded || !call.is_method {
                            s
                        } else {
                            s.min(input.as_ref().map(|(_, s, _)| *s)?)
                        };
                        Some((s, format!("result of `{}` ({why})", call.callee)))
                    })
                }
                _ => input.as_ref().map(|(v, _, _)| {
                    (
                        Strength::Weak,
                        format!("result of external `{}` over tainted `{v}`", call.callee),
                    )
                }),
            };
            if let Some(t) = result_taint {
                changed |= FnTaint::upgrade(&mut st.call_results, ci, t);
            }
        }
        for b in &def.bindings {
            // A binding whose whole RHS is one call takes that call's
            // result taint: the arguments were *consumed* by the call,
            // not mixed into the binding. Declassifier results are clean
            // even if secrets flow in (ciphertext/tag outputs).
            let taint = if let Some(pc) = b.primary_call {
                let callee = &def.calls[pc].callee;
                if policy.taint_declassify.iter().any(|d| d == callee) {
                    continue;
                }
                st.call_results
                    .get(&pc)
                    .map(|(s, _)| (*s, format!("derived from tainted `{callee}(..)`")))
            } else {
                // Otherwise strength survives only a pure alias
                // (`let a = k;`); any mixing demotes to Weak.
                expr_taint(&b.rhs, &st, def).map(|(v, s, _)| {
                    let pure_alias = b.rhs.call_ids.is_empty() && b.rhs.idents.len() == 1;
                    let s = if pure_alias { s } else { Strength::Weak };
                    (s, format!("derived from tainted `{v}`"))
                })
            };
            if let Some((s, why)) = taint {
                for name in &b.names {
                    changed |= FnTaint::upgrade(&mut st.values, name.clone(), (s, why.clone()));
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Return taint. Strength survives a secret-typed return, a pure
    // alias (`return k;`) or a pure call result; a mixed expression is a
    // derivation and demotes to Weak, same as bindings.
    let ret = if let Some(t) = is_seed_type(policy, &def.ret_ty_idents) {
        st.returns_ty_seeded = true;
        Some((Strength::Strong, format!("returns secret type `{t}`")))
    } else {
        def.returns.iter().find_map(|r| {
            expr_taint(r, &st, def).map(|(v, s, _)| {
                let pure_alias = r.call_ids.is_empty() && r.idents.len() == 1;
                let pure_call = r.idents.is_empty() && r.call_ids.len() == 1;
                let s = if pure_alias || pure_call {
                    s
                } else {
                    Strength::Weak
                };
                (s, format!("returns value derived from tainted `{v}`"))
            })
        })
    };
    if let Some(t) = ret {
        if st.returns_taint.as_ref().is_none_or(|(s, _)| *s < t.0) {
            st.returns_taint = Some(t);
        }
    }
    state.insert(id, st);
}

/// Maps tainted call arguments onto callee parameter names.
fn push_args(
    files: &[FileSyntax],
    def: &FnDef,
    call: &Call,
    target: FnId,
    st: &FnTaint,
    state: &mut BTreeMap<FnId, FnTaint>,
) {
    let tdef = crate::graph::fn_def(files, target);
    let Some(cur) = state.get(&target) else {
        return;
    };
    let mut tgt = cur.clone();
    let mut changed = false;
    // Strength survives only a pure alias argument (`f(k)`, `f(&k)`); a
    // projection or computation (`f(&self.pk)`, `f(k.mask())`) is a
    // derivation and demotes to Weak — a secret *container*'s public
    // field is not the secret itself.
    let arg_taint = |e: &ExprInfo| {
        expr_taint(e, st, def).map(|(v, s, why)| {
            let pure_alias = e.call_ids.is_empty() && e.idents.len() == 1;
            (v, if pure_alias { s } else { Strength::Weak }, why)
        })
    };
    let has_self = tdef
        .params
        .first()
        .map(|p| p.name == "self")
        .unwrap_or(false);
    if call.is_method && has_self {
        if let Some((v, s, why)) = arg_taint(&call.recv) {
            changed |= FnTaint::upgrade(
                &mut tgt.param_in,
                "self".to_string(),
                (
                    s,
                    format!("receiver tainted at call site via `{v}` ({why})"),
                ),
            );
        }
    }
    // Positional args: for `recv.m(a, b)` arg i lands on param i+1 (past
    // `self`); for path calls (`Type::m(s, a)`) args map directly.
    let offset = usize::from(call.is_method && has_self);
    for (i, arg) in call.args.iter().enumerate() {
        let Some(p) = tdef.params.get(i + offset) else {
            continue;
        };
        if let Some((v, s, why)) = arg_taint(arg) {
            changed |= FnTaint::upgrade(
                &mut tgt.param_in,
                p.name.clone(),
                (s, format!("tainted at call site via `{v}` ({why})")),
            );
        }
    }
    if changed {
        state.insert(target, tgt);
    }
}

/// Checks every sink in one fn against the fixpoint taint state.
fn sink_pass(def: &FnDef, rel: &str, st: &FnTaint, policy: &Policy, out: &mut Vec<Finding>) {
    // 1. vartime kernels. Only the *arguments* are sinks — the operand
    // trace leaks base/exponent, while the receiver is the group/modulus
    // context, which is public-key material. In the policy-vetted vartime
    // files (verify sites, kernel wrappers, benches — audited to
    // exponentiate only public or freshly-derived data) strong taint
    // alone is a finding; everywhere else any taint flags, and the
    // site-local vartime-usage token rule independently bans the call
    // outright.
    let vetted = !policy.vartime_rule_applies(rel);
    for call in &def.calls {
        if !policy.vartime_fns.iter().any(|f| f == &call.callee) {
            continue;
        }
        let hit = call.args.iter().find_map(|a| expr_taint(a, st, def));
        if let Some((v, s, why)) = hit {
            if vetted && s != Strength::Strong {
                continue;
            }
            out.push(Finding::new(
                rel,
                call.line,
                call.col,
                Rule::SecretTaint,
                format!(
                    "tainted value `{v}` ({why}) reaches variable-time kernel \
                     `{}`; its operand trace would leak the secret — route \
                     through the constant-trace kernel",
                    call.callee
                ),
            ));
        }
    }
    // 2. format/print/panic sink macros: strong taint only, and not
    // inside the mandated redacting `fn fmt` impls.
    let in_fmt_impl = def.name == "fmt" && def.params.first().is_some_and(|p| p.name == "self");
    if !in_fmt_impl {
        for m in &def.macros {
            if !policy.taint_fmt_sinks().iter().any(|s| s == &m.name) {
                continue;
            }
            if let Some((v, Strength::Strong, why)) = expr_taint(&m.args, st, def) {
                out.push(Finding::new(
                    rel,
                    m.line,
                    m.col,
                    Rule::SecretTaint,
                    format!(
                        "secret value `{v}` ({why}) flows into `{}!` sink; \
                         redact it or break the dataflow",
                        m.name
                    ),
                ));
            }
        }
    }
    // 3. raw wire-encode sinks (outside registered decoy/AEAD-bound
    // paths): strong taint only.
    if !policy.wire_sink_exempt(rel) {
        for call in &def.calls {
            if !policy.wire_sink_fns.iter().any(|f| f == &call.callee) {
                continue;
            }
            if let Some((v, Strength::Strong, why)) =
                call.args.iter().find_map(|a| expr_taint(a, st, def))
            {
                out.push(Finding::new(
                    rel,
                    call.line,
                    call.col,
                    Rule::SecretTaint,
                    format!(
                        "secret value `{v}` ({why}) reaches wire-encode sink \
                         `{}`; secrets may only reach the wire through the \
                         registered AEAD/decoy construction sites",
                        call.callee
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::parse_file;

    fn policy() -> Policy {
        Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["println", "format"]
[rules.vartime-usage]
fns = ["modpow_vartime"]
paths = []
[taint]
declassify = ["seal", "finalize", "len"]
wire-sinks = ["put_bytes"]
"#,
        )
        .unwrap()
    }

    fn run(sources: &[(&str, &str)]) -> Vec<(String, u32)> {
        let files: Vec<FileSyntax> = sources
            .iter()
            .map(|(rel, src)| parse_file(rel, &lex(src)))
            .collect();
        let graph = CallGraph::build(&files);
        let (findings, _) = analyze(&files, &graph, &policy());
        findings.into_iter().map(|f| (f.file, f.line)).collect()
    }

    #[test]
    fn direct_secret_into_vartime_flagged() {
        let hits = run(&[(
            "a.rs",
            "fn f(k_prime: &U) { let y = ctx.modpow_vartime(&b, k_prime); }",
        )]);
        assert_eq!(hits, vec![("a.rs".to_string(), 1)]);
    }

    #[test]
    fn taint_through_helper_call_flagged() {
        // The secret flows through `mask` into the kernel — the PR-2
        // site-local rule missed exactly this shape.
        let src = "fn mask(e: &U) -> U { e.add(1) }\n\
                   fn f(k_prime: &U) {\n\
                       let e = mask(k_prime);\n\
                       let y = ctx.modpow_vartime(&b, &e);\n\
                   }";
        let hits = run(&[("a.rs", src)]);
        assert_eq!(hits, vec![("a.rs".to_string(), 4)]);
    }

    #[test]
    fn taint_through_return_flagged() {
        // The callee *returns* a secret-typed value; the caller's sink use
        // of the result is the finding.
        let src = "fn derive() -> Key { secret_key() }\n\
                   fn f() {\n\
                       let k = derive();\n\
                       println!(\"{:?}\", k);\n\
                   }";
        let hits = run(&[("a.rs", src)]);
        assert_eq!(hits, vec![("a.rs".to_string(), 4)]);
    }

    #[test]
    fn derived_value_into_fmt_is_clean_but_vartime_is_not() {
        // `masked` is only *derived* from the secret: printing it is the
        // protocol's own business, but exponentiating with it variable-time
        // still leaks through the operand trace.
        let src = "fn f(k_prime: &U) {\n\
                       let masked = blind(k_prime, r);\n\
                       println!(\"{:?}\", masked);\n\
                       let y = ctx.modpow_vartime(&b, &masked);\n\
                   }";
        let hits = run(&[("a.rs", src)]);
        assert_eq!(hits, vec![("a.rs".to_string(), 4)]);
    }

    #[test]
    fn alias_keeps_strength() {
        let src = "fn f(k_prime: &U) {\n\
                       let alias = k_prime;\n\
                       println!(\"{:?}\", alias);\n\
                   }";
        let hits = run(&[("a.rs", src)]);
        assert_eq!(hits, vec![("a.rs".to_string(), 3)]);
    }

    #[test]
    fn declassifier_cuts_the_flow() {
        let src = "fn f(k: Key) {\n\
                       let tag = mac.update(&k).finalize();\n\
                       println!(\"{:?}\", tag);\n\
                   }";
        assert!(run(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn redacting_fmt_impl_is_exempt() {
        let src = "impl Key {\n\
                       fn fmt(&self, f: &mut F) -> R {\n\
                           write!(f, \"Key({} bytes)\", self.body.len())\n\
                       }\n\
                   }";
        let p = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["write"]
"#,
        )
        .unwrap();
        let files = vec![parse_file("a.rs", &lex(src))];
        let graph = CallGraph::build(&files);
        assert!(analyze(&files, &graph, &p).0.is_empty());
    }

    #[test]
    fn wire_sink_flagged_and_exempt_path_clean() {
        let src = "fn f(k: Key, w: &mut W) { w.put_bytes(&k); }";
        assert_eq!(run(&[("a.rs", src)]), vec![("a.rs".to_string(), 1)]);
        // Registered AEAD-bound path: exempt.
        let p = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
[taint]
wire-sinks = ["put_bytes"]
wire-allow-paths = ["decoy.rs"]
"#,
        )
        .unwrap();
        let files = vec![parse_file("decoy.rs", &lex(src))];
        let graph = CallGraph::build(&files);
        let (findings, _) = analyze(&files, &graph, &p);
        assert!(findings.is_empty());
    }

    #[test]
    fn cross_file_taint_via_params() {
        let hits = run(&[
            (
                "kernel_user.rs",
                "pub fn leak(e: &U) { let y = ctx.modpow_vartime(&b, e); }",
            ),
            ("caller.rs", "fn go(k_prime: &U) { leak(k_prime); }"),
        ]);
        assert_eq!(hits, vec![("kernel_user.rs".to_string(), 1)]);
    }

    #[test]
    fn narrowed_seed_types_shrink_the_frontier() {
        // `Manager` is a registered secret type (its Debug must redact)
        // but not seed material, so its derived public key is clean.
        let p = Policy::parse(
            r#"
[secret]
types = ["Key", "Manager"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
[taint]
seed-types = ["Key"]
"#,
        )
        .unwrap();
        let src = "impl Manager { fn show(&self) { println!(\"{:?}\", self.pk); } }";
        let files = vec![parse_file("a.rs", &lex(src))];
        let graph = CallGraph::build(&files);
        assert!(analyze(&files, &graph, &p).0.is_empty());
        // Without the narrowing, the same code is a finding.
        let p2 = Policy::parse(
            r#"
[secret]
types = ["Key", "Manager"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
"#,
        )
        .unwrap();
        let files2 = vec![parse_file("a.rs", &lex(src))];
        let graph2 = CallGraph::build(&files2);
        assert_eq!(analyze(&files2, &graph2, &p2).0.len(), 1);
    }

    #[test]
    fn public_data_stays_clean() {
        let src = "fn verify(sig: &Sig) { let y = ctx.modpow_vartime(&sig.a, &sig.e); }";
        assert!(run(&[("a.rs", src)]).is_empty());
    }
}
