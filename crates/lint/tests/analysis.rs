//! Integration tests for the interprocedural layer: the call graph over
//! real fixture files, the baseline ratchet round-trip, the analyzer
//! self-stats, and the `--tokens-only` / `--analysis-only` split the CI
//! job relies on.

use shs_lint::baseline::Baseline;
use shs_lint::graph::{fn_def, CallGraph, Resolution};
use shs_lint::{lexer, syntax, Linter, Mode, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn linter() -> Linter {
    Linter::from_policy_file(&fixtures_root().join("policy.toml")).expect("fixture policy parses")
}

fn parse_fixture(name: &str) -> syntax::FileSyntax {
    let src = std::fs::read_to_string(fixtures_root().join(name)).expect("fixture readable");
    syntax::parse_file(name, &lexer::lex(&src))
}

// ---------------------------------------------------------------------------
// Call graph on real fixture files
// ---------------------------------------------------------------------------

#[test]
fn call_graph_resolves_fixture_helper_same_file() {
    let files = vec![
        parse_fixture("bad/taint_call.rs"),
        parse_fixture("good/taint_call.rs"),
    ];
    let g = CallGraph::build(&files);
    // `check` in the bad twin calls `exponent_of`; both twins define a
    // same-named helper, so same-file resolution must pick file 0.
    let (fi, ni, ci) = files
        .iter()
        .enumerate()
        .find_map(|(fi, f)| {
            f.fns.iter().enumerate().find_map(|(ni, d)| {
                (f.rel.starts_with("bad/") && d.name == "check").then(|| {
                    let ci = d
                        .calls
                        .iter()
                        .position(|c| c.callee == "exponent_of")
                        .expect("check calls exponent_of");
                    (fi, ni, ci)
                })
            })
        })
        .expect("bad/check found");
    let target = g.target((fi, ni), ci).expect("helper resolves uniquely");
    assert_eq!(target.0, fi, "same-file definition wins over the good twin");
    assert_eq!(fn_def(&files, target).name, "exponent_of");
}

#[test]
fn call_graph_marks_external_kernels_unknown() {
    let files = vec![parse_fixture("bad/taint_call.rs")];
    let g = CallGraph::build(&files);
    let def = files[0]
        .fns
        .iter()
        .enumerate()
        .find(|(_, d)| d.name == "check")
        .expect("check present");
    let ci = def
        .1
        .calls
        .iter()
        .position(|c| c.callee == "modpow_vartime")
        .expect("kernel call present");
    assert_eq!(
        g.resolution((0, def.0), ci),
        Resolution::Unknown,
        "modpow_vartime has no workspace definition"
    );
    assert!(g.stats.unknown >= 1);
}

#[test]
fn call_graph_sees_transitive_send_helper() {
    let files = vec![parse_fixture("bad/send_under_lock.rs")];
    let g = CallGraph::build(&files);
    assert_eq!(g.defs_named("notify").len(), 1);
    let (ni, def) = files[0]
        .fns
        .iter()
        .enumerate()
        .find(|(_, d)| d.name == "enqueue_via_helper")
        .expect("helper caller present");
    let ci = def
        .calls
        .iter()
        .position(|c| c.callee == "notify")
        .expect("notify call present");
    let target = g.target((0, ni), ci).expect("notify resolves");
    assert_eq!(fn_def(&files, target).name, "notify");
}

// ---------------------------------------------------------------------------
// Baseline ratchet round-trip
// ---------------------------------------------------------------------------

#[test]
fn fixture_baseline_roundtrips_and_ratchets_both_ways() {
    let report = linter().lint_workspace().expect("fixture tree lints");
    assert!(!report.findings.is_empty(), "fixtures must have findings");

    // Round trip: a baseline written from the report matches it exactly.
    let base = Baseline::from_report(&report);
    let parsed = Baseline::parse(&base.to_json()).expect("own output parses");
    assert_eq!(parsed, base);
    assert!(parsed.compare(&report).ok());

    // Regression direction: against an empty baseline every (rule, file)
    // key is a regression.
    let empty = Baseline::parse("{\"version\": 1, \"entries\": []}").unwrap();
    let diff = empty.compare(&report);
    assert!(!diff.ok());
    assert!(diff.regressions.len() >= Rule::ALL.len() - 1);
    assert!(diff.improvements.is_empty());

    // Improvement direction: a tokens-only run "fixes" every analysis
    // finding, which the full-report baseline must flag for re-writing.
    let tokens = linter()
        .lint_workspace_mode(Mode::Tokens)
        .expect("fixture tree lints");
    let diff = base.compare(&tokens);
    assert!(diff.regressions.is_empty());
    assert!(
        diff.improvements
            .iter()
            .any(|i| i.contains("secret-taint") && i.contains("--write-baseline")),
        "{:?}",
        diff.improvements
    );
}

// ---------------------------------------------------------------------------
// Mode split and self-stats (what the CI job consumes)
// ---------------------------------------------------------------------------

#[test]
fn mode_split_partitions_rules_between_passes() {
    let tokens = linter().lint_workspace_mode(Mode::Tokens).unwrap();
    assert!(tokens.analysis.is_none(), "token pass carries no stats");
    assert!(tokens.findings.iter().all(|f| !f.rule.is_analysis()));

    // The analysis pass emits only analysis findings — allow-hygiene
    // belongs to the token job, and a token-rule allow must NOT be
    // reported stale just because tokens did not run here.
    let analysis = linter().lint_workspace_mode(Mode::Analysis).unwrap();
    assert!(analysis.findings.iter().all(|f| f.rule.is_analysis()));

    // Together the passes cover the full run. (They may overlap: a taint
    // finding colocated with a token finding is deduped only when both
    // passes run, so the sum can exceed the full count.)
    let full = linter().lint_workspace().unwrap();
    for f in &full.findings {
        let seen = |r: &shs_lint::Report| {
            r.findings
                .iter()
                .any(|g| g.file == f.file && g.line == f.line && g.rule == f.rule)
        };
        assert!(
            seen(&tokens) || seen(&analysis),
            "full-run finding missing from both split passes: {}",
            f.render()
        );
    }
    assert!(tokens.findings.len() + analysis.findings.len() >= full.findings.len());
}

#[test]
fn analyzer_self_stats_reflect_the_fixture_tree() {
    let report = linter().lint_workspace_mode(Mode::Analysis).unwrap();
    let a = report.analysis.expect("analysis pass ran");
    assert_eq!(a.files_parsed, report.files_scanned);
    assert!(a.fns_parsed > 0);
    assert_eq!(
        a.calls_total,
        a.calls_resolved + a.calls_ambiguous + a.calls_unresolved
    );
    assert!(a.taint_seeds > 0, "secret params must seed taint");
    assert!(a.lock_events > 0, "lock fixtures must produce events");
    assert!(a.lock_edges > 0, "lock cycle fixture must produce edges");

    let json = report.to_json();
    for key in [
        "\"analysis\"",
        "\"fns_parsed\"",
        "\"calls_resolved\"",
        "\"taint_seeds\"",
        "\"lock_edges\"",
        "\"elapsed_ms\"",
    ] {
        assert!(json.contains(key), "JSON report lacks {key}:\n{json}");
    }
}

// ---------------------------------------------------------------------------
// Binary: baseline flags end to end
// ---------------------------------------------------------------------------

#[test]
fn binary_write_then_check_baseline_roundtrip() {
    let dir = std::env::temp_dir().join(format!("shs-lint-ratchet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let base_path = dir.join("baseline.json");

    // `--write-baseline` exits 0 even with findings, and writes the file.
    let out = Command::new(env!("CARGO_BIN_EXE_shs-lint"))
        .arg("--policy")
        .arg(fixtures_root().join("policy.toml"))
        .arg("--workspace")
        .arg("--quiet")
        .arg("--write-baseline")
        .arg(&base_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));

    // A re-run ratcheted against the fresh baseline is clean.
    let out = Command::new(env!("CARGO_BIN_EXE_shs-lint"))
        .arg("--policy")
        .arg(fixtures_root().join("policy.toml"))
        .arg("--workspace")
        .arg("--quiet")
        .arg("--baseline")
        .arg(&base_path)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A tokens-only run against the same baseline trips the down-ratchet.
    let out = Command::new(env!("CARGO_BIN_EXE_shs-lint"))
        .arg("--policy")
        .arg(fixtures_root().join("policy.toml"))
        .arg("--workspace")
        .arg("--tokens-only")
        .arg("--baseline")
        .arg(&base_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ratchet improvement"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
