//! Fixture suite: every rule has a positive (bad/) and negative (good/)
//! fixture under `tests/fixtures/`, linted with the fixture policy, with
//! the exact expected findings asserted. The `shs-lint` binary itself is
//! exercised for exit codes and report formats via `CARGO_BIN_EXE_shs-lint`.

use shs_lint::{Linter, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn linter() -> Linter {
    Linter::from_policy_file(&fixtures_root().join("policy.toml")).expect("fixture policy parses")
}

/// Findings for one fixture file as `(rule, line)` pairs.
fn lint_one(name: &str) -> Vec<(Rule, u32)> {
    let report = linter()
        .lint_files(&[fixtures_root().join(name)])
        .expect("fixture lints");
    report
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn secret_debug_fixture_pair() {
    assert_eq!(
        lint_one("bad/secret_debug.rs"),
        vec![(Rule::SecretDebug, 3)]
    );
    assert_eq!(lint_one("good/secret_debug.rs"), vec![]);
}

#[test]
fn secret_cmp_fixture_pair() {
    assert_eq!(lint_one("bad/secret_cmp.rs"), vec![(Rule::SecretCmp, 4)]);
    assert_eq!(lint_one("good/secret_cmp.rs"), vec![]);
}

#[test]
fn secret_fmt_fixture_pair() {
    assert_eq!(lint_one("bad/secret_fmt.rs"), vec![(Rule::SecretFmt, 4)]);
    assert_eq!(lint_one("good/secret_fmt.rs"), vec![]);
}

#[test]
fn panic_path_fixture_pair() {
    assert_eq!(
        lint_one("bad/panic_path.rs"),
        vec![(Rule::PanicPath, 4), (Rule::PanicPath, 5)]
    );
    assert_eq!(lint_one("good/panic_path.rs"), vec![]);
}

#[test]
fn index_path_fixture_pair() {
    assert_eq!(lint_one("bad/index_path.rs"), vec![(Rule::IndexPath, 4)]);
    assert_eq!(lint_one("good/index_path.rs"), vec![]);
}

#[test]
fn factory_dispatch_fixture_pair() {
    assert_eq!(
        lint_one("bad/factory_dispatch.rs"),
        vec![(Rule::FactoryDispatch, 9)]
    );
    // The good twin contains the same match but is registered as the
    // factory module, so it is exempt.
    assert_eq!(lint_one("good/factory_dispatch.rs"), vec![]);
}

#[test]
fn vartime_usage_fixture_pair() {
    assert_eq!(
        lint_one("bad/vartime_usage.rs"),
        vec![(Rule::VartimeUsage, 5)]
    );
    // The good twin calls the same kernel but is a registered
    // verification site (and defines the kernel, which is not a call).
    assert_eq!(lint_one("good/vartime_usage.rs"), vec![]);
}

#[test]
fn taint_through_call_fixture_pair() {
    // The bad twin is a *vetted* vartime file (the token rule is silent);
    // only interprocedural taint catches the secret exponent arriving
    // through the helper.
    assert_eq!(lint_one("bad/taint_call.rs"), vec![(Rule::SecretTaint, 15)]);
    assert_eq!(lint_one("good/taint_call.rs"), vec![]);
}

#[test]
fn taint_through_return_fixture_pair() {
    assert_eq!(
        lint_one("bad/taint_return.rs"),
        vec![(Rule::SecretTaint, 12)]
    );
    assert_eq!(lint_one("good/taint_return.rs"), vec![]);
}

#[test]
fn lock_cycle_fixture_pair() {
    let findings = lint_one("bad/lock_cycle.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].0, Rule::LockOrder);
    assert_eq!(lint_one("good/lock_cycle.rs"), vec![]);
}

#[test]
fn send_under_lock_fixture_pair() {
    // Direct send under the guard, plus the transitive variant through
    // `notify`.
    assert_eq!(
        lint_one("bad/send_under_lock.rs"),
        vec![(Rule::SendUnderLock, 8), (Rule::SendUnderLock, 18)]
    );
    assert_eq!(lint_one("good/send_under_lock.rs"), vec![]);
}

#[test]
fn allow_hygiene_fixture_pair() {
    // Missing reason, stale directive, unknown rule name — one finding
    // each; the suppressed secret-cmp on line 4 must NOT reappear.
    assert_eq!(
        lint_one("bad/allow_hygiene.rs"),
        vec![
            (Rule::AllowHygiene, 3),
            (Rule::AllowHygiene, 6),
            (Rule::AllowHygiene, 9),
        ]
    );
    assert_eq!(lint_one("good/allow_hygiene.rs"), vec![]);
}

#[test]
fn fixture_workspace_totals() {
    let report = linter().lint_workspace().expect("fixture tree lints");
    assert_eq!(report.files_scanned, 24, "one bad + one good file per rule");
    assert_eq!(report.findings.len(), 16);
    // Every rule is represented by at least one finding.
    for rule in Rule::ALL {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "no fixture finding for rule `{rule}`"
        );
    }
    // All findings come from bad/, none from good/.
    assert!(report.findings.iter().all(|f| f.file.starts_with("bad/")));
}

#[test]
fn findings_render_as_file_line_col() {
    let report = linter().lint_workspace().expect("fixture tree lints");
    let rendered = report
        .findings
        .iter()
        .find(|f| f.file == "bad/secret_cmp.rs")
        .expect("secret-cmp finding present")
        .render();
    assert!(
        rendered.starts_with("bad/secret_cmp.rs:4:") && rendered.contains("[secret-cmp]"),
        "unexpected render: {rendered}"
    );
}

// ---------------------------------------------------------------------------
// Binary behaviour (exit codes, stderr, JSON report)
// ---------------------------------------------------------------------------

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_shs-lint"))
}

#[test]
fn binary_exits_nonzero_on_bad_fixtures_with_file_line_output() {
    let out = bin()
        .arg("--policy")
        .arg(fixtures_root().join("policy.toml"))
        .arg("--workspace")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad/secret_cmp.rs:4:"),
        "stderr lacks file:line finding:\n{stderr}"
    );
    assert!(stderr.contains("16 finding(s)"), "{stderr}");
}

#[test]
fn binary_exits_zero_on_good_fixtures() {
    let mut cmd = bin();
    cmd.arg("--policy").arg(fixtures_root().join("policy.toml"));
    for name in [
        "secret_debug",
        "secret_cmp",
        "secret_fmt",
        "panic_path",
        "index_path",
        "factory_dispatch",
        "vartime_usage",
        "allow_hygiene",
    ] {
        cmd.arg(fixtures_root().join(format!("good/{name}.rs")));
    }
    let out = cmd.output().expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_emits_json_report_on_stdout() {
    let out = bin()
        .arg("--policy")
        .arg(fixtures_root().join("policy.toml"))
        .arg("--workspace")
        .arg("--quiet")
        .arg("--json")
        .arg("-")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"tool\": \"shs-lint\""), "{json}");
    assert!(json.contains("\"finding_count\": 16"), "{json}");
    assert!(json.contains("\"rule\": \"secret-debug\""), "{json}");
}

#[test]
fn binary_exits_two_on_usage_errors() {
    let out = bin().arg("--no-such-flag").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .arg("--policy")
        .arg("/nonexistent/policy.toml")
        .arg("--workspace")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
