//! BAD: malformed and stale allow directives.

// lint:allow(secret-cmp)
pub fn reason_missing(k_prime: &[u8], o: &[u8]) -> bool { k_prime == o }

// lint:allow(secret-cmp) reason="nothing on this or the next line needs it"
pub fn directive_unused() {}

// lint:allow(secret-compare) reason="rule name is a typo"
pub fn unknown_rule() {}
