//! BAD: dispatching on a factory-owned enum outside the factory module.

pub enum SchemeKind {
    One,
    Two,
}

pub fn sig_len(scheme: &SchemeKind) -> usize {
    match scheme {
        SchemeKind::One => 32,
        SchemeKind::Two => 64,
    }
}
