//! BAD: panicking indexing on a decoder path.

pub fn tag_of(frame: &[u8]) -> u8 {
    frame[0]
}
