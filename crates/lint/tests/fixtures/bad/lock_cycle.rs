//! BAD: two paths acquire the same two mutexes in opposite orders — the
//! classic inconsistent-order deadlock. Each function is individually
//! fine; only the global acquisition graph shows the cycle.

impl Router {
    fn route(&self) {
        let table = self.table.lock();
        let peers = self.peers.lock();
        table.forward(&peers);
    }

    fn reshape(&self) {
        let peers = self.peers.lock();
        let table = self.table.lock();
        peers.rebalance(&table);
    }
}
