//! BAD: panicking on a protocol path.

pub fn decode_len(buf: &[u8]) -> u32 {
    let first = buf.first().unwrap();
    assert!(buf.len() >= 4, "short header");
    u32::from(*first)
}
