//! BAD: timing-dependent comparison of secret key material.

pub fn verify(k_prime: &[u8], other: &[u8]) -> bool {
    k_prime == other
}
