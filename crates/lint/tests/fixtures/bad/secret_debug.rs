//! BAD: a registered secret type deriving `Debug`.

#[derive(Clone, Debug)]
pub struct Key([u8; 32]);
