//! BAD: secret value flows into a format-family sink.

pub fn log_key(group_key: &[u8]) -> String {
    format!("derived group key = {:02x?}", group_key)
}
