//! BAD: a blocking `send` on a bounded channel while a mutex guard is
//! live — backpressure deadlocks against the lock. The second fn shows
//! the transitive variant: the send hides behind a helper call.

impl Dispatcher {
    fn enqueue(&self, m: Frame) {
        let reg = self.registry.lock();
        self.to_workers.send(m);
        reg.note_enqueued();
    }

    fn notify(&self, m: Frame) {
        self.to_workers.send(m);
    }

    fn enqueue_via_helper(&self, m: Frame) {
        let reg = self.registry.lock();
        self.notify(m);
    }
}
