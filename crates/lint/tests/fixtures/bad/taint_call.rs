//! BAD: this file is a registered vartime verification site, so the
//! site-local `vartime-usage` token rule trusts every kernel call in it —
//! but a secret exponent slips through the `exponent_of` helper into the
//! variable-time kernel, which only the interprocedural taint analysis
//! sees.

struct Verifier;

fn exponent_of(k_prime: &Ubig) -> &Ubig {
    k_prime
}

fn check(v: &Verifier, k_prime: &Ubig, base: &Ubig, ctx: &Mont) -> Ubig {
    let e = exponent_of(k_prime);
    ctx.modpow_vartime(base, e)
}
