//! BAD: `derive_group_key` returns secret-typed material; the caller
//! prints the returned value. No registered secret *identifier* appears
//! at the sink, so the site-local `secret-fmt` token rule is blind —
//! only return-taint propagation connects the dots.

fn derive_group_key(seed: &[u8]) -> Key {
    Key::from_seed(seed)
}

fn announce(seed: &[u8]) {
    let k = derive_group_key(seed);
    println!("fresh key: {:?}", k);
}
