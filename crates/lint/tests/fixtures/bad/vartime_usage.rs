//! BAD: calls a variable-time exponentiation kernel from a signing path
//! (secret exponent) — the trace would leak the member key.

fn sign(ctx: &Ctx, base: &U, secret_e: &U) -> U {
    ctx.modpow_vartime(base, secret_e)
}
