//! GOOD: a justified, load-bearing allow directive.

// lint:allow(secret-cmp) reason="commitment bytes are public once opened"
pub fn opened_matches(k_prime: &[u8], commitment: &[u8]) -> bool { k_prime == commitment }
