//! GOOD: this file is registered as the factory module, so it may
//! dispatch on the configuration enums.

pub enum SchemeKind {
    One,
    Two,
}

pub fn sig_len(scheme: &SchemeKind) -> usize {
    match scheme {
        SchemeKind::One => 32,
        SchemeKind::Two => 64,
    }
}
