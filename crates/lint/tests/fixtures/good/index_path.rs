//! GOOD: checked access with a structured error.

pub fn tag_of(frame: &[u8]) -> Result<u8, &'static str> {
    frame.first().copied().ok_or("empty frame")
}
