//! GOOD twin: both paths follow the single global order (`table` before
//! `peers`), so the acquisition graph is acyclic.

impl Router {
    fn route(&self) {
        let table = self.table.lock();
        let peers = self.peers.lock();
        table.forward(&peers);
    }

    fn reshape(&self) {
        let table = self.table.lock();
        let peers = self.peers.lock();
        peers.rebalance(&table);
    }
}
