//! GOOD: structured errors on the protocol path.

pub fn decode_len(buf: &[u8]) -> Result<u32, &'static str> {
    let first = buf.first().ok_or("short header")?;
    Ok(u32::from(*first))
}
