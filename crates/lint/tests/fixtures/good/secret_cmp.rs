//! GOOD: content comparison through the constant-time helper.

pub fn verify(k_prime: &[u8], other: &[u8]) -> bool {
    shs_crypto::ct::eq(k_prime, other)
}
