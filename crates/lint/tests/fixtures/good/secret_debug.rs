//! GOOD: a redacting manual impl instead of a derive.

#[derive(Clone)]
pub struct Key([u8; 32]);

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Key(****)")
    }
}
