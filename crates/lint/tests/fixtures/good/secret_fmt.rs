//! GOOD: log the event, never the key bytes.

pub fn log_key(key_len: usize) -> String {
    format!("derived a group key ({key_len} bytes)")
}
