//! GOOD twin: the guard is dropped (or scoped out) before the blocking
//! send, and non-blocking `try_send` is fine even under the lock.

impl Dispatcher {
    fn enqueue(&self, m: Frame) {
        {
            let reg = self.registry.lock();
            reg.note_enqueued();
        }
        self.to_workers.send(m);
    }

    fn enqueue_explicit_drop(&self, m: Frame) {
        let reg = self.registry.lock();
        drop(reg);
        self.to_workers.send(m);
    }

    fn enqueue_bounded(&self, m: Frame) {
        let reg = self.registry.lock();
        let _ = self.to_workers.try_send(m);
        reg.note_enqueued();
    }
}
