//! GOOD twin: the same registered verification site, exponentiating only
//! public signature data — plus a *blinded* (derived, weak-taint) value,
//! which a vetted vartime site may exponentiate by design.

struct Verifier;

fn normalize(sig_e: &Ubig) -> &Ubig {
    sig_e
}

fn check(v: &Verifier, sig_e: &Ubig, base: &Ubig, ctx: &Mont) -> Ubig {
    let e = normalize(sig_e);
    ctx.modpow_vartime(base, e)
}

fn check_blinded(k_prime: &Ubig, r: &Ubig, base: &Ubig, ctx: &Mont) -> Ubig {
    let blinded = blind(k_prime, r);
    ctx.modpow_vartime(base, &blinded)
}
