//! GOOD twin: the same secret-typed return, but the printed value went
//! through a registered declassifier (`seal` — AEAD output is wire data
//! by design), so the flow is cut.

fn derive_group_key(seed: &[u8]) -> Key {
    Key::from_seed(seed)
}

fn announce(seed: &[u8], payload: &[u8]) {
    let k = derive_group_key(seed);
    let sealed = k.seal(payload);
    println!("ciphertext: {:?}", sealed);
}
