//! GOOD twin: this file is registered in `rules.vartime-usage.paths` as a
//! public-data verification site, so the same call is allowed — and the
//! kernel definition itself is never a finding.

pub fn modpow_vartime(base: &U, e: &U) -> U {
    base.pow(e)
}

fn verify(ctx: &Ctx, base: &U, public_e: &U) -> U {
    ctx.modpow_vartime(base, public_e)
}
