//! Snapshot gate: the real workspace, linted with the real policy, is
//! clean. This is the tier-1 guarantee that the secret-hygiene pass stays
//! green; any new violation fails `cargo test` with the exact findings.

use shs_lint::Linter;
use std::path::Path;

#[test]
fn workspace_is_lint_clean_under_the_shipped_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let linter =
        Linter::from_policy_file(&root.join("lint-policy.toml")).expect("workspace policy parses");
    let report = linter.lint_workspace().expect("workspace lints");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); scan roots misconfigured?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.clean(),
        "workspace has {} secret-hygiene finding(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
