//! Snapshot gate: the real workspace, linted with the real policy, is
//! clean. This is the tier-1 guarantee that the secret-hygiene pass stays
//! green; any new violation fails `cargo test` with the exact findings.

use shs_lint::baseline::Baseline;
use shs_lint::{Linter, Mode};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

fn workspace_linter() -> Linter {
    Linter::from_policy_file(&workspace_root().join("lint-policy.toml"))
        .expect("workspace policy parses")
}

#[test]
fn workspace_is_lint_clean_under_the_shipped_policy() {
    let report = workspace_linter()
        .lint_workspace()
        .expect("workspace lints");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); scan roots misconfigured?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.clean(),
        "workspace has {} secret-hygiene finding(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

/// Exact-finding snapshot: the analysis pass alone, ratcheted against the
/// committed `lint-baseline.json`, matches in both directions — and stays
/// inside the ISSUE 7 latency budget so pre-commit runs remain cheap.
#[test]
fn analysis_pass_matches_committed_baseline_within_budget() {
    let root = workspace_root();
    let linter = workspace_linter();
    let t0 = Instant::now();
    let report = linter
        .lint_workspace_mode(Mode::Analysis)
        .expect("workspace lints");
    let elapsed = t0.elapsed();

    let base_src = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("committed lint-baseline.json present");
    let base = Baseline::parse(&base_src).expect("committed baseline parses");
    let diff = base.compare(&report);
    assert!(
        diff.ok(),
        "analysis findings drifted from lint-baseline.json\nregressions: {:?}\nimprovements: {:?}",
        diff.regressions,
        diff.improvements
    );

    let stats = report.analysis.expect("analysis pass ran");
    assert!(
        stats.fns_parsed > 1000,
        "suspiciously few fns parsed ({}); syntax layer regressed?",
        stats.fns_parsed
    );
    assert!(
        stats.calls_resolved > 1000,
        "suspiciously few calls resolved ({}); call graph regressed?",
        stats.calls_resolved
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "analysis pass took {elapsed:?}, over the 10 s budget"
    );
}
