//! The time abstraction: wall time for deployments, virtual time for
//! the discrete-event simulator.
//!
//! Every place the networking runtime used to consult the OS clock
//! directly — the hub's delivery-patience loop, the supervisor's
//! reconnect backoff, the serve layer's between-attempt backoff — now
//! goes through a [`Clock`]. Production code uses [`WallClock`]
//! (identical behaviour to the old direct calls); the `shs-sim`
//! discrete-event simulator supplies a [`VirtualClock`] whose `sleep`
//! *advances* time instead of blocking, so a simulated run with delay
//! faults or deep backoff schedules costs zero wall-clock time and
//! stays bit-reproducible.
//!
//! The trait is deliberately tiny: a monotonic "now" as a [`Duration`]
//! since the clock's own epoch, plus a sleep. Durations (rather than
//! [`Instant`]) keep the trait implementable by a virtual clock, which
//! has no `Instant` to hand out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of monotonic time plus a way to wait for it to pass.
///
/// Implementations must be cheap to call and safe to share across
/// threads; `now` must be monotonic per clock instance.
pub trait Clock: Send + Sync {
    /// Monotonic time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Waits until at least `d` of clock time has passed. A wall clock
    /// blocks the thread; a virtual clock advances itself instead.
    fn sleep(&self, d: Duration);
}

/// The operating-system clock: `now` is measured from the instant the
/// clock was created, `sleep` is [`std::thread::sleep`].
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A shared virtual clock for discrete-event simulation: time is a
/// counter of nanoseconds that only moves when someone advances it.
///
/// `sleep` advances the counter by the requested duration and returns
/// immediately — a simulated backoff or patience window costs nothing
/// in wall time. Clones share the same underlying counter, so a
/// simulator can hand one handle to the runtime and keep another to
/// schedule events against the same timeline.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Moves the clock forward to `t` if `t` is later than the current
    /// time (monotonic advance; earlier values are ignored).
    pub fn advance_to(&self, t: Duration) {
        let target = t.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.nanos.fetch_max(target, Ordering::SeqCst);
    }

    /// Moves the clock forward by `d`.
    pub fn advance_by(&self, d: Duration) {
        let delta = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.nanos.fetch_add(delta, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance_by(d);
    }
}

/// A shared handle to a clock, as threaded through the runtime.
pub type SharedClock = Arc<dyn Clock>;

/// The default clock used everywhere a caller does not supply one.
pub fn wall() -> SharedClock {
    Arc::new(WallClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_sleeps() {
        let c = WallClock::new();
        let a = c.now();
        c.sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b >= a + Duration::from_millis(2));
    }

    #[test]
    fn virtual_clock_advances_without_blocking() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        let start = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(start.elapsed() < Duration::from_millis(100), "no real wait");
        assert_eq!(c.now(), Duration::from_secs(3600));
    }

    #[test]
    fn virtual_clock_clones_share_the_timeline() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance_to(Duration::from_millis(250));
        assert_eq!(b.now(), Duration::from_millis(250));
        // advance_to never goes backwards.
        b.advance_to(Duration::from_millis(100));
        assert_eq!(a.now(), Duration::from_millis(250));
    }
}
