//! Seeded, composable fault injection for the anonymous media.
//!
//! The paper's system model (§2) assumes guaranteed delivery; this module
//! deliberately breaks that assumption so the handshake runtime's failure
//! half can be exercised: messages can be dropped, duplicated, corrupted,
//! truncated or delayed, parties can crash-stop mid-session, and the
//! medium can partition. A [`FaultPlan`] is a deterministic (seeded)
//! schedule of [`FaultRule`]s consulted on every delivery by both
//! [`crate::sync::BroadcastNet`] and the threaded [`crate::hub`]; every
//! fault that fires is tallied in [`FaultCounters`], exposed through
//! [`crate::observe::TrafficLog::faults`] so tests and benches can assert
//! exactly which faults fired.
//!
//! Fault *scope* composes: a rule can be limited to a round-label prefix,
//! a sender slot, a receiver slot, a per-delivery probability and a
//! maximum fire count, and multiple rules apply in order to the same
//! delivery (e.g. duplicate-then-corrupt yields one good and one mangled
//! copy... or two mangled ones, depending on rule order).

use crate::observe::FaultCounters;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The delivery never arrives.
    Drop,
    /// The receiver gets two copies.
    Duplicate,
    /// `bit_flips` uniformly chosen bits of the payload are flipped.
    Corrupt {
        /// Number of bit positions to flip (re-draws may coincide).
        bit_flips: u32,
    },
    /// The payload is cut at a uniformly chosen point.
    Truncate,
    /// The delivery is held back and re-delivered on a *later* exchange
    /// carrying the same round label (i.e. a retransmission round).
    Delay {
        /// How many matching exchanges to sit out.
        rounds: u32,
    },
    /// `slot` transmits during the first `after_round` exchanges, then
    /// goes permanently silent (fail-stop party).
    CrashStop {
        /// The crashing sender slot.
        slot: usize,
        /// Number of exchanges the slot participates in before dying.
        after_round: u32,
    },
    /// Slots `< boundary` and slots `>= boundary` can no longer hear
    /// each other; intra-side delivery is unaffected.
    Partition {
        /// First slot of the second side.
        boundary: usize,
    },
}

/// A scoped fault: what happens, where, how often.
#[derive(Debug, Clone)]
pub struct FaultRule {
    kind: FaultKind,
    probability: f64,
    round_prefix: Option<String>,
    from_slot: Option<usize>,
    to_slot: Option<usize>,
    max_fires: u64,
    fired: u64,
}

impl FaultRule {
    /// A rule firing on every matching delivery (probability 1).
    pub fn new(kind: FaultKind) -> FaultRule {
        FaultRule {
            kind,
            probability: 1.0,
            round_prefix: None,
            from_slot: None,
            to_slot: None,
            max_fires: u64::MAX,
            fired: 0,
        }
    }

    /// Shorthand for [`FaultKind::Drop`].
    pub fn drop() -> FaultRule {
        FaultRule::new(FaultKind::Drop)
    }

    /// Shorthand for [`FaultKind::Duplicate`].
    pub fn duplicate() -> FaultRule {
        FaultRule::new(FaultKind::Duplicate)
    }

    /// Shorthand for [`FaultKind::Corrupt`].
    pub fn corrupt(bit_flips: u32) -> FaultRule {
        FaultRule::new(FaultKind::Corrupt { bit_flips })
    }

    /// Shorthand for [`FaultKind::Truncate`].
    pub fn truncate() -> FaultRule {
        FaultRule::new(FaultKind::Truncate)
    }

    /// Shorthand for [`FaultKind::Delay`].
    pub fn delay(rounds: u32) -> FaultRule {
        FaultRule::new(FaultKind::Delay { rounds })
    }

    /// Shorthand for [`FaultKind::CrashStop`].
    pub fn crash_stop(slot: usize, after_round: u32) -> FaultRule {
        FaultRule::new(FaultKind::CrashStop { slot, after_round })
    }

    /// Shorthand for [`FaultKind::Partition`].
    pub fn partition(boundary: usize) -> FaultRule {
        FaultRule::new(FaultKind::Partition { boundary })
    }

    /// Fires with probability `p` per matching delivery.
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.probability = p;
        self
    }

    /// Restricts to round labels starting with `prefix`.
    pub fn in_round(mut self, prefix: &str) -> FaultRule {
        self.round_prefix = Some(prefix.to_string());
        self
    }

    /// Restricts to deliveries from `slot`.
    pub fn from(mut self, slot: usize) -> FaultRule {
        self.from_slot = Some(slot);
        self
    }

    /// Restricts to deliveries to `slot`.
    pub fn to(mut self, slot: usize) -> FaultRule {
        self.to_slot = Some(slot);
        self
    }

    /// Fires at most `n` times in total.
    pub fn at_most(mut self, n: u64) -> FaultRule {
        self.max_fires = n;
        self
    }

    fn matches(&self, round: &str, from: usize, to: usize) -> bool {
        if self.fired >= self.max_fires {
            return false;
        }
        if let Some(p) = &self.round_prefix {
            if !round.starts_with(p.as_str()) {
                return false;
            }
        }
        if let Some(f) = self.from_slot {
            if f != from {
                return false;
            }
        }
        if let Some(t) = self.to_slot {
            if t != to {
                return false;
            }
        }
        true
    }
}

/// A delivery held back by a [`FaultKind::Delay`] rule.
#[derive(Debug, Clone)]
struct DelayedDelivery {
    round: String,
    from_slot: usize,
    to_slot: usize,
    payload: Vec<u8>,
    /// Matching exchanges left to sit out.
    remaining: u32,
}

/// A delayed delivery released by [`FaultPlan::begin_exchange`].
#[derive(Debug, Clone)]
pub struct Redelivery {
    /// Original sender slot.
    pub from_slot: usize,
    /// Receiver slot.
    pub to_slot: usize,
    /// Original (possibly already-tampered) payload.
    pub payload: Vec<u8>,
}

/// A deterministic, composable schedule of faults.
#[derive(Debug)]
pub struct FaultPlan {
    rng: StdRng,
    rules: Vec<FaultRule>,
    delayed: Vec<DelayedDelivery>,
    /// Exchanges seen so far (the `after_round` clock of crash-stop).
    exchanges: u32,
    counters: FaultCounters,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given decision seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            rules: Vec::new(),
            delayed: Vec::new(),
            exchanges: 0,
            counters: FaultCounters::default(),
        }
    }

    /// Adds a rule (builder-style).
    pub fn with(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// The per-fault tallies so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Number of exchanges the plan has seen.
    pub fn exchanges(&self) -> u32 {
        self.exchanges
    }

    /// Is `slot` crash-stopped as of the current exchange?
    pub fn crashed(&self, slot: usize) -> bool {
        self.rules.iter().any(|r| {
            matches!(r.kind, FaultKind::CrashStop { slot: s, after_round }
                if s == slot && self.exchanges > after_round)
        })
    }

    /// Every slot currently crash-stopped.
    pub fn crashed_slots(&self, slots: usize) -> Vec<usize> {
        (0..slots).filter(|&s| self.crashed(s)).collect()
    }

    /// The tightest crash-stop budget for `slot`: how many broadcasts it
    /// gets before dying, if any rule targets it. Used by the hub, whose
    /// crash clock ticks per sender broadcast rather than per exchange.
    pub fn crash_budget(&self, slot: usize) -> Option<u32> {
        self.rules
            .iter()
            .filter_map(|r| match r.kind {
                FaultKind::CrashStop {
                    slot: s,
                    after_round,
                } if s == slot => Some(after_round),
                _ => None,
            })
            .min()
    }

    /// Counts one crash-suppressed broadcast (for media that implement
    /// the crash clock themselves, like the hub and the `shs-sim`
    /// virtual-time session, whose crash clocks tick per sender
    /// broadcast rather than per exchange).
    pub fn note_crash_silenced(&mut self) {
        self.counters.crash_silenced += 1;
    }

    /// Marks the start of a broadcast exchange under `round`, returning
    /// any delayed deliveries that come due on this (retransmission)
    /// exchange. Call exactly once per `exchange`/hub-relay round.
    pub fn begin_exchange(&mut self, round: &str) -> Vec<Redelivery> {
        self.exchanges += 1;
        let mut due = Vec::new();
        let mut kept = Vec::new();
        for mut d in self.delayed.drain(..) {
            if d.round == round {
                if d.remaining <= 1 {
                    self.counters.redelivered += 1;
                    due.push(Redelivery {
                        from_slot: d.from_slot,
                        to_slot: d.to_slot,
                        payload: d.payload,
                    });
                    continue;
                }
                d.remaining -= 1;
            }
            kept.push(d);
        }
        self.delayed = kept;
        due
    }

    /// Should `slot`'s broadcast in the current exchange be suppressed
    /// entirely (crash-stop)? Counts one suppression when true.
    pub fn suppress_send(&mut self, slot: usize) -> bool {
        // `begin_exchange` has already advanced the clock for this
        // exchange, so "participates in `after_round` exchanges" means
        // silent once exchanges > after_round.
        if self.crashed(slot) {
            self.counters.crash_silenced += 1;
            true
        } else {
            false
        }
    }

    /// Runs the schedule for one delivery, returning the payload copies
    /// that actually arrive now (empty = dropped / delayed / partitioned;
    /// two entries = duplicated).
    pub fn deliver(
        &mut self,
        round: &str,
        from_slot: usize,
        to_slot: usize,
        payload: Vec<u8>,
    ) -> Vec<Vec<u8>> {
        let mut copies = vec![payload];
        for i in 0..self.rules.len() {
            if copies.is_empty() {
                break;
            }
            if !self.rules[i].matches(round, from_slot, to_slot) {
                continue;
            }
            // Crash-stop is a sender property handled by `suppress_send`,
            // not a per-delivery transformation.
            if matches!(self.rules[i].kind, FaultKind::CrashStop { .. }) {
                continue;
            }
            let p = self.rules[i].probability;
            if p < 1.0 && !self.coin(p) {
                continue;
            }
            let kind = self.rules[i].kind;
            match kind {
                FaultKind::Drop => {
                    self.counters.dropped += copies.len() as u64;
                    copies.clear();
                }
                FaultKind::Duplicate => {
                    self.counters.duplicated += copies.len() as u64;
                    let dup: Vec<Vec<u8>> = copies.clone();
                    copies.extend(dup);
                }
                FaultKind::Corrupt { bit_flips } => {
                    for c in &mut copies {
                        if c.is_empty() {
                            continue;
                        }
                        for _ in 0..bit_flips {
                            let bit = self.rng.next_u64() as usize % (c.len() * 8);
                            c[bit / 8] ^= 1 << (bit % 8);
                        }
                    }
                    self.counters.corrupted += copies.len() as u64;
                }
                FaultKind::Truncate => {
                    for c in &mut copies {
                        let cut = if c.is_empty() {
                            0
                        } else {
                            self.rng.next_u64() as usize % c.len()
                        };
                        c.truncate(cut);
                    }
                    self.counters.truncated += copies.len() as u64;
                }
                FaultKind::Delay { rounds } => {
                    self.counters.delayed += copies.len() as u64;
                    for c in copies.drain(..) {
                        self.delayed.push(DelayedDelivery {
                            round: round.to_string(),
                            from_slot,
                            to_slot,
                            payload: c,
                            remaining: rounds.max(1),
                        });
                    }
                }
                FaultKind::CrashStop { .. } => unreachable!("handled above"),
                FaultKind::Partition { boundary } => {
                    if (from_slot < boundary) != (to_slot < boundary) {
                        self.counters.partitioned += copies.len() as u64;
                        copies.clear();
                    }
                }
            }
            self.rules[i].fired += 1;
        }
        copies
    }

    fn coin(&mut self, p: f64) -> bool {
        (self.rng.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_transparent() {
        let mut plan = FaultPlan::new(1);
        assert!(plan.begin_exchange("r").is_empty());
        assert_eq!(plan.deliver("r", 0, 1, vec![1, 2, 3]), vec![vec![1, 2, 3]]);
        assert!(!plan.suppress_send(0));
        assert_eq!(plan.counters(), &FaultCounters::default());
    }

    #[test]
    fn drop_fires_only_in_scope() {
        let mut plan = FaultPlan::new(2).with(FaultRule::drop().in_round("phase2").from(1));
        plan.begin_exchange("phase2-mac");
        assert!(plan.deliver("phase2-mac", 1, 0, vec![9]).is_empty());
        assert_eq!(plan.deliver("phase2-mac", 0, 1, vec![9]), vec![vec![9]]);
        assert_eq!(plan.deliver("phase3-full", 1, 0, vec![9]), vec![vec![9]]);
        assert_eq!(plan.counters().dropped, 1);
    }

    #[test]
    fn duplicate_and_corrupt_compose_in_order() {
        let mut plan = FaultPlan::new(3)
            .with(FaultRule::duplicate())
            .with(FaultRule::corrupt(1));
        plan.begin_exchange("r");
        let copies = plan.deliver("r", 0, 1, vec![0u8; 8]);
        assert_eq!(copies.len(), 2);
        // Both copies were corrupted after duplication.
        assert!(copies.iter().all(|c| c.iter().any(|&b| b != 0)));
        assert_eq!(plan.counters().duplicated, 1);
        assert_eq!(plan.counters().corrupted, 2);
    }

    #[test]
    fn truncate_shortens() {
        let mut plan = FaultPlan::new(4).with(FaultRule::truncate());
        plan.begin_exchange("r");
        let copies = plan.deliver("r", 0, 1, vec![7u8; 64]);
        assert_eq!(copies.len(), 1);
        assert!(copies[0].len() < 64);
        assert_eq!(plan.counters().truncated, 1);
    }

    #[test]
    fn delay_redelivers_on_matching_retransmission() {
        let mut plan = FaultPlan::new(5).with(FaultRule::delay(1).at_most(1));
        plan.begin_exchange("r1");
        assert!(plan.deliver("r1", 0, 1, vec![42]).is_empty());
        // A different round label does not release it.
        assert!(plan.begin_exchange("r2").is_empty());
        // The matching retransmission does.
        let due = plan.begin_exchange("r1");
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload, vec![42]);
        assert_eq!((due[0].from_slot, due[0].to_slot), (0, 1));
        assert_eq!(plan.counters().delayed, 1);
        assert_eq!(plan.counters().redelivered, 1);
    }

    #[test]
    fn crash_stop_silences_after_round() {
        let mut plan = FaultPlan::new(6).with(FaultRule::crash_stop(2, 1));
        plan.begin_exchange("r1");
        assert!(!plan.suppress_send(2), "alive in its first exchange");
        plan.begin_exchange("r2");
        assert!(plan.suppress_send(2), "dead from the second on");
        assert!(!plan.suppress_send(0));
        assert_eq!(plan.crashed_slots(4), vec![2]);
        assert_eq!(plan.counters().crash_silenced, 1);
    }

    #[test]
    fn partition_cuts_cross_side_delivery_only() {
        let mut plan = FaultPlan::new(7).with(FaultRule::partition(2));
        plan.begin_exchange("r");
        assert!(plan.deliver("r", 0, 2, vec![1]).is_empty());
        assert!(plan.deliver("r", 3, 1, vec![1]).is_empty());
        assert_eq!(plan.deliver("r", 0, 1, vec![1]), vec![vec![1]]);
        assert_eq!(plan.deliver("r", 2, 3, vec![1]), vec![vec![1]]);
        assert_eq!(plan.counters().partitioned, 2);
    }

    #[test]
    fn probability_and_budget_bound_firing() {
        let mut plan = FaultPlan::new(8).with(FaultRule::drop().with_probability(0.5));
        plan.begin_exchange("r");
        let mut dropped = 0;
        for _ in 0..400 {
            if plan.deliver("r", 0, 1, vec![1]).is_empty() {
                dropped += 1;
            }
        }
        assert!(
            (100..300).contains(&dropped),
            "~50% drop rate, got {dropped}"
        );

        let mut plan = FaultPlan::new(9).with(FaultRule::drop().at_most(3));
        plan.begin_exchange("r");
        let mut dropped = 0;
        for _ in 0..10 {
            if plan.deliver("r", 0, 1, vec![1]).is_empty() {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 3, "budget caps fires");
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed).with(FaultRule::drop().with_probability(0.3));
            plan.begin_exchange("r");
            (0..64)
                .map(|i| plan.deliver("r", 0, i % 4, vec![1]).is_empty())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
