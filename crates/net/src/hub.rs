//! A threaded asynchronous broadcast hub.
//!
//! Each party runs on its own OS thread and talks to the hub through
//! channels; the hub relays every message to every other party, delaying
//! and interleaving deliveries pseudo-randomly. This is the "asynchronous
//! communication model (with guaranteed delivery)" in which the paper
//! claims the framework still works (§1.1 flexibility) — exercised by the
//! E10 experiment.
//!
//! [`run_session_with_faults`] weakens the guarantee: the hub consults a
//! [`FaultPlan`] on every relay, so deliveries may be lost, duplicated,
//! mangled, delayed, or cut by a partition, and crash-stopped parties go
//! silent after their `after_round`-th broadcast. Party bodies that must
//! survive such a medium should use the deadline-based receives
//! ([`PartyHandle::recv_timeout`], [`PartyHandle::collect_round_within`])
//! instead of the blocking ones — a blocking [`PartyHandle::recv`] on a
//! lossy medium can sit out its full (generous) deadline.
//!
//! # Flow control
//!
//! All channels are **bounded**, sized by [`HubConfig`]: a flooding
//! sender blocks once the hub's inbox is at capacity (backpressure)
//! instead of growing an unbounded buffer, and the hub's reorder buffer
//! is capped at the same size. Deliveries to a party whose inbox stays
//! full past [`HubConfig::delivery_patience`] are dropped and tallied in
//! [`crate::observe::FaultCounters::backpressure_dropped`] — the hub
//! never blocks forever on a stalled receiver, so a slow party cannot
//! deadlock the medium. With the default capacities a protocol-shaped
//! session (every party sends once per round and drains its inbox) never
//! triggers either mechanism.

use crate::clock::SharedClock;
use crate::fault::FaultPlan;
use crate::observe::TrafficLog;
use crate::{NetError, PartyLink};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Flow-control configuration of the threaded hub.
///
/// The defaults are sized so that the bounded channels are invisible to
/// well-behaved protocol sessions: a session of `m` parties and `r`
/// rounds keeps at most `m` messages per inbox in flight per round, far
/// under [`HubConfig::channel_capacity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HubConfig {
    /// Capacity of every channel (party → hub and hub → party) and cap
    /// of the hub's internal reorder buffer. A sender whose channel is
    /// full blocks until the consumer drains — backpressure, not
    /// buffering without limit.
    pub channel_capacity: usize,
    /// How long the hub keeps retrying delivery into a full party inbox
    /// before dropping the message (tallied as `backpressure_dropped`).
    /// This bounds the damage of a stalled receiver; the retry-based
    /// session runtime recovers dropped deliveries like any other loss.
    pub delivery_patience: Duration,
    /// Deadline of the *blocking* [`PartyHandle::recv`]: generous enough
    /// that it never fires on a guaranteed-delivery medium, but a party
    /// stranded by a dead hub gets an error instead of hanging forever.
    pub recv_deadline: Duration,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            channel_capacity: 1024,
            delivery_patience: Duration::from_millis(500),
            recv_deadline: Duration::from_secs(30),
        }
    }
}

/// A message in flight.
#[derive(Debug, Clone)]
struct Wire {
    from_slot: usize,
    round: String,
    payload: Vec<u8>,
}

/// A party's endpoint: broadcast and blocking receive.
pub struct PartyHandle {
    slot: usize,
    slots: usize,
    recv_deadline: Duration,
    to_hub: Sender<Wire>,
    from_hub: Receiver<Wire>,
}

impl std::fmt::Debug for PartyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartyHandle {{ slot: {}/{} }}", self.slot, self.slots)
    }
}

impl PartyHandle {
    /// This party's anonymous slot.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Number of slots in the session.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Broadcasts a payload under a round label. Blocks while the hub's
    /// bounded inbox is at capacity (backpressure); a send to a hub that
    /// already shut down is silently discarded, matching radio semantics.
    pub fn broadcast(&self, round: &str, payload: Vec<u8>) {
        let _ = self.to_hub.send(Wire {
            from_slot: self.slot,
            round: round.to_string(),
            payload,
        });
    }

    /// Blocks for the next delivery `(from_slot, round, payload)`, up to
    /// the configured [`HubConfig::recv_deadline`].
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] if the hub is gone,
    /// [`NetError::Timeout`] if nothing arrived within the (generous)
    /// deadline — on a lossy medium prefer the explicitly-budgeted
    /// [`PartyHandle::recv_timeout`].
    pub fn recv(&self) -> Result<(usize, String, Vec<u8>), NetError> {
        self.recv_timeout(self.recv_deadline)
    }

    /// Blocks for the next delivery up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if nothing arrived in time,
    /// [`NetError::Disconnected`] if the hub is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(usize, String, Vec<u8>), NetError> {
        match self.from_hub.recv_timeout(timeout) {
            Ok(w) => Ok((w.from_slot, w.round, w.payload)),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Collects one message per slot for the given round. Buffering
    /// out-of-round arrivals is the caller's job in fully general
    /// protocols; for the round-structured handshake protocols a simple
    /// filter suffices because every party sends exactly once per round.
    ///
    /// # Errors
    ///
    /// Propagates [`PartyHandle::recv`] errors: a guaranteed-delivery
    /// medium never produces them while the hub lives, but a dropped hub
    /// yields [`NetError::Disconnected`] instead of a panic.
    pub fn collect_round(&self, round: &str) -> Result<Vec<(usize, Vec<u8>)>, NetError> {
        let mut got: Vec<Option<Vec<u8>>> = vec![None; self.slots];
        let mut count = 0;
        while count < self.slots {
            let (from, r, payload) = self.recv()?;
            if r == round && got[from].is_none() {
                got[from] = Some(payload);
                count += 1;
            }
        }
        // The count loop above established completeness, so the filter
        // never discards anything.
        Ok(got
            .into_iter()
            .enumerate()
            .filter_map(|(slot, p)| p.map(|payload| (slot, payload)))
            .collect())
    }

    /// Collects up to one message per slot for the given round, giving up
    /// on slots that produced nothing within `timeout` (overall
    /// deadline). Entry `i` is `None` if slot `i`'s message never
    /// arrived — dropped, partitioned, or its sender crashed. Duplicate
    /// copies are discarded (first one wins); out-of-round arrivals are
    /// skipped as in [`PartyHandle::collect_round`].
    pub fn collect_round_within(&self, round: &str, timeout: Duration) -> Vec<Option<Vec<u8>>> {
        let deadline = Instant::now() + timeout;
        let mut got: Vec<Option<Vec<u8>>> = vec![None; self.slots];
        let mut count = 0;
        while count < self.slots {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.recv_timeout(left) {
                Ok((from, r, payload)) => {
                    if r == round && from < self.slots && got[from].is_none() {
                        got[from] = Some(payload);
                        count += 1;
                    }
                }
                Err(_) => break,
            }
        }
        got
    }
}

impl PartyLink for PartyHandle {
    fn slot(&self) -> usize {
        PartyHandle::slot(self)
    }

    fn slots(&self) -> usize {
        PartyHandle::slots(self)
    }

    fn broadcast(&mut self, round: &str, payload: Vec<u8>) -> Result<(), NetError> {
        PartyHandle::broadcast(self, round, payload);
        Ok(())
    }

    /// Like [`PartyHandle::collect_round_within`], but with the caller's
    /// validity filter so corrupted copies do not displace a later valid
    /// retransmission (first-*valid*-copy-wins, as in the lockstep
    /// engine).
    fn collect(
        &mut self,
        round: &str,
        timeout: Duration,
        valid: &mut dyn FnMut(usize, &[u8]) -> bool,
    ) -> Result<Vec<Option<Vec<u8>>>, NetError> {
        let deadline = Instant::now() + timeout;
        let mut got: Vec<Option<Vec<u8>>> = vec![None; self.slots];
        let mut count = 0;
        while count < self.slots {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.recv_timeout(left) {
                Ok((from, r, payload)) => {
                    if r == round
                        && from < self.slots
                        && got.get(from).is_some_and(Option::is_none)
                        && valid(from, &payload)
                    {
                        if let Some(cell) = got.get_mut(from) {
                            *cell = Some(payload);
                            count += 1;
                        }
                    }
                }
                Err(NetError::Timeout) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(got)
    }
}

/// Runs `m` party bodies on threads connected through an asynchronous
/// reordering hub with guaranteed delivery; returns their outputs plus
/// the eavesdropper log.
///
/// Every broadcast is delivered to **all** slots, including the sender
/// (radio-medium echo semantics, matching [`crate::sync::BroadcastNet`]).
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_session<T, F>(m: usize, seed: u64, bodies: Vec<F>) -> (Vec<T>, TrafficLog)
where
    T: Send + 'static,
    F: FnOnce(PartyHandle) -> T + Send + 'static,
{
    run_session_with_faults(m, seed, FaultPlan::new(seed), bodies)
}

/// [`run_session`] over a faulty medium with default flow control.
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_session_with_faults<T, F>(
    m: usize,
    seed: u64,
    plan: FaultPlan,
    bodies: Vec<F>,
) -> (Vec<T>, TrafficLog)
where
    T: Send + 'static,
    F: FnOnce(PartyHandle) -> T + Send + 'static,
{
    run_session_with_config(m, seed, plan, HubConfig::default(), bodies)
}

/// [`run_session`] over a faulty medium with explicit [`HubConfig`] flow
/// control: the hub consults `plan` on every relay. The final
/// [`TrafficLog`] carries the plan's fault counters.
///
/// The crash-stop clock here is **per sender**: a `CrashStop { slot,
/// after_round }` rule silences `slot` once it has broadcast
/// `after_round` messages, which coincides with protocol rounds because
/// every party broadcasts exactly once per round. The delay clock, as in
/// the synchronous medium, re-releases a held delivery when a later
/// message with the same round label (a retransmission) is relayed.
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_session_with_config<T, F>(
    m: usize,
    seed: u64,
    plan: FaultPlan,
    config: HubConfig,
    bodies: Vec<F>,
) -> (Vec<T>, TrafficLog)
where
    T: Send + 'static,
    F: FnOnce(PartyHandle) -> T + Send + 'static,
{
    run_session_with_clock(m, seed, plan, config, crate::clock::wall(), bodies)
}

/// [`run_session_with_config`] with an explicit [`crate::clock::Clock`]
/// governing the hub's delivery-patience wait. The wall clock (the
/// default everywhere else) reproduces the old blocking behaviour; a
/// virtual clock makes a stalled-receiver wait advance simulated time
/// instead of wall time.
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_session_with_clock<T, F>(
    m: usize,
    seed: u64,
    mut plan: FaultPlan,
    config: HubConfig,
    clock: SharedClock,
    bodies: Vec<F>,
) -> (Vec<T>, TrafficLog)
where
    T: Send + 'static,
    F: FnOnce(PartyHandle) -> T + Send + 'static,
{
    // lint:allow(panic-path) reason="public API precondition documented under # Panics; harness configuration, not wire data"
    assert_eq!(bodies.len(), m, "one body per slot");
    let (to_hub, hub_in) = bounded::<Wire>(config.channel_capacity);
    let mut party_txs = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for slot in 0..m {
        let (tx, rx) = bounded::<Wire>(config.channel_capacity);
        party_txs.push(tx);
        handles.push(PartyHandle {
            slot,
            slots: m,
            recv_deadline: config.recv_deadline,
            to_hub: to_hub.clone(),
            from_hub: rx,
        });
    }
    drop(to_hub);

    let log = Arc::new(Mutex::new(TrafficLog::new()));
    let hub_log = Arc::clone(&log);
    let hub = thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pending: Vec<Wire> = Vec::new();
        let mut sent_by: Vec<u64> = vec![0; m];
        let mut bp_dropped: u64 = 0;
        // Push one delivery into a party inbox, waiting out transient
        // fullness up to the configured patience; a stubbornly full (or
        // disconnected) inbox loses the message instead of wedging the
        // hub.
        let deliver = |tx: &Sender<Wire>, mut w: Wire, bp_dropped: &mut u64| {
            // The patience window runs on the injected clock: a virtual
            // clock's sleep advances time, so the loop still terminates
            // after `delivery_patience` without any real waiting.
            let deadline = clock.now() + config.delivery_patience;
            loop {
                match tx.try_send(w) {
                    Ok(()) => return,
                    Err(TrySendError::Disconnected(_)) => return,
                    Err(TrySendError::Full(back)) => {
                        if clock.now() >= deadline {
                            *bp_dropped += 1;
                            return;
                        }
                        w = back;
                        clock.sleep(Duration::from_micros(100));
                    }
                }
            }
        };
        let relay = |w: Wire,
                     plan: &mut FaultPlan,
                     sent_by: &mut Vec<u64>,
                     bp_dropped: &mut u64,
                     rng: &mut StdRng| {
            // Crash-stop: the sender dies after its `after_round`-th
            // broadcast; later messages never reach the wire or the log.
            if let Some(after) = plan.crash_budget(w.from_slot) {
                if sent_by[w.from_slot] >= u64::from(after) {
                    plan.note_crash_silenced();
                    return;
                }
            }
            sent_by[w.from_slot] += 1;
            hub_log.lock().record(&w.round, w.from_slot, &w.payload);
            // Release deliveries delayed until a retransmission of this
            // round label; their receiver order is adversarial too.
            let mut due = plan.begin_exchange(&w.round);
            for i in (1..due.len()).rev() {
                let j = rng.gen_range(0..=i);
                due.swap(i, j);
            }
            for d in due {
                if let Some(tx) = party_txs.get(d.to_slot) {
                    deliver(
                        tx,
                        Wire {
                            from_slot: d.from_slot,
                            round: w.round.clone(),
                            payload: d.payload,
                        },
                        bp_dropped,
                    );
                }
            }
            for (to_slot, tx) in party_txs.iter().enumerate() {
                for copy in plan.deliver(&w.round, w.from_slot, to_slot, w.payload.clone()) {
                    deliver(
                        tx,
                        Wire {
                            from_slot: w.from_slot,
                            round: w.round.clone(),
                            payload: copy,
                        },
                        bp_dropped,
                    );
                }
            }
        };
        loop {
            // Drain what's available; block for at least one if the
            // buffer is empty. The reorder buffer is capped so that a
            // flood blocks at the bounded channel (backpressure) instead
            // of ballooning the buffer.
            if pending.is_empty() {
                match hub_in.recv() {
                    Ok(w) => pending.push(w),
                    Err(_) => break,
                }
            }
            while pending.len() < config.channel_capacity {
                match hub_in.try_recv() {
                    Ok(w) => pending.push(w),
                    Err(_) => break,
                }
            }
            // Deliver a random pending message to all parties (in
            // adversarial order relative to other messages).
            let idx = rng.gen_range(0..pending.len());
            let w = pending.swap_remove(idx);
            relay(w, &mut plan, &mut sent_by, &mut bp_dropped, &mut rng);
        }
        // Flush anything left after senders disconnected.
        while let Some(w) = pending.pop() {
            relay(w, &mut plan, &mut sent_by, &mut bp_dropped, &mut rng);
        }
        let mut counters = plan.counters().clone();
        counters.backpressure_dropped = bp_dropped;
        hub_log.lock().set_faults(counters);
    });

    let threads: Vec<thread::JoinHandle<T>> = handles
        .into_iter()
        .zip(bodies)
        .map(|(handle, body)| thread::spawn(move || body(handle)))
        .collect();
    let outputs: Vec<T> = threads
        .into_iter()
        // lint:allow(panic-path) reason="propagates a party-thread panic to the harness caller, documented under # Panics"
        .map(|t| t.join().expect("party thread"))
        .collect();
    // lint:allow(panic-path) reason="propagates a hub-thread panic to the harness caller, documented under # Panics"
    hub.join().expect("hub thread");
    // lint:allow(panic-path) reason="hub thread joined above, so the log Arc is uniquely held here"
    let log = Arc::try_unwrap(log).expect("hub done").into_inner();
    (outputs, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;

    #[test]
    fn echo_round_collects_everyone() {
        let m = 4;
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("hello", vec![h.slot() as u8]);
                    let round = h.collect_round("hello").expect("guaranteed delivery");
                    round.iter().map(|(s, p)| (*s, p[0])).collect::<Vec<_>>()
                }
            })
            .collect();
        let (outputs, log) = run_session(m, 42, bodies);
        for out in outputs {
            assert_eq!(out, vec![(0, 0u8), (1, 1), (2, 2), (3, 3)]);
        }
        assert_eq!(log.len(), m);
        assert_eq!(log.faults().total(), 0, "plain run injects nothing");
    }

    #[test]
    fn multi_round_sessions_complete() {
        let m = 3;
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r1", vec![h.slot() as u8]);
                    let r1 = h.collect_round("r1").expect("guaranteed delivery");
                    let sum: u8 = r1.iter().map(|(_, p)| p[0]).sum();
                    h.broadcast("r2", vec![sum]);
                    let r2 = h.collect_round("r2").expect("guaranteed delivery");
                    r2.iter().map(|(_, p)| p[0]).collect::<Vec<u8>>()
                }
            })
            .collect();
        let (outputs, log) = run_session(m, 1, bodies);
        for out in outputs {
            assert_eq!(out, vec![3u8, 3, 3]);
        }
        assert_eq!(log.len(), 2 * m);
    }

    #[test]
    fn different_seeds_reorder_differently_but_agree() {
        // The point of E10 in miniature: outcomes are delivery-order
        // independent.
        for seed in [1u64, 2, 3] {
            let m = 3;
            let bodies: Vec<_> = (0..m)
                .map(|_| {
                    move |h: PartyHandle| {
                        h.broadcast("x", vec![h.slot() as u8 + 10]);
                        let mut vals: Vec<u8> = h
                            .collect_round("x")
                            .expect("guaranteed delivery")
                            .iter()
                            .map(|(_, p)| p[0])
                            .collect();
                        vals.sort();
                        vals
                    }
                })
                .collect();
            let (outputs, _) = run_session(m, seed, bodies);
            for out in outputs {
                assert_eq!(out, vec![10, 11, 12], "seed {seed}");
            }
        }
    }

    #[test]
    fn lossy_round_times_out_instead_of_hanging() {
        let m = 3;
        // Slot 2's broadcasts never reach slot 0.
        let plan = FaultPlan::new(9).with(FaultRule::drop().from(2).to(0));
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r", vec![h.slot() as u8]);
                    h.collect_round_within("r", Duration::from_millis(300))
                        .iter()
                        .map(|p| p.is_some())
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        let (outputs, log) = run_session_with_faults(m, 5, plan, bodies);
        assert_eq!(outputs[0], vec![true, true, false], "slot 0 misses slot 2");
        assert_eq!(outputs[1], vec![true, true, true]);
        assert_eq!(outputs[2], vec![true, true, true]);
        assert!(log.faults().dropped >= 1);
        assert_eq!(log.len(), m, "eavesdropper still saw every broadcast");
    }

    #[test]
    fn crashed_party_goes_silent_after_budget() {
        let m = 3;
        // Slot 1 participates in round r1, then dies.
        let plan = FaultPlan::new(3).with(FaultRule::crash_stop(1, 1));
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r1", vec![1]);
                    let r1 = h.collect_round_within("r1", Duration::from_millis(300));
                    h.broadcast("r2", vec![2]);
                    let r2 = h.collect_round_within("r2", Duration::from_millis(300));
                    (
                        r1.iter().filter(|p| p.is_some()).count(),
                        r2.iter().filter(|p| p.is_some()).count(),
                    )
                }
            })
            .collect();
        let (outputs, log) = run_session_with_faults(m, 7, plan, bodies);
        for (r1_got, r2_got) in outputs {
            assert_eq!(r1_got, m, "everyone alive in r1");
            assert_eq!(r2_got, m - 1, "slot 1 silent in r2");
        }
        assert_eq!(log.faults().crash_silenced, 1);
        assert_eq!(log.len(), 2 * m - 1, "dead sender logs nothing");
    }

    #[test]
    fn duplicates_are_deduplicated_by_collect() {
        let m = 2;
        let plan = FaultPlan::new(4).with(FaultRule::duplicate());
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r", vec![h.slot() as u8]);
                    h.collect_round_within("r", Duration::from_millis(300))
                        .iter()
                        .filter(|p| p.is_some())
                        .count()
                }
            })
            .collect();
        let (outputs, log) = run_session_with_faults(m, 2, plan, bodies);
        assert_eq!(outputs, vec![m, m], "first copy wins, extras discarded");
        assert!(log.faults().duplicated >= 1);
    }

    #[test]
    fn recv_reports_disconnected_hub_instead_of_panicking() {
        // A party whose recv outlives the hub gets a structured error.
        let m = 2;
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    // No broadcasts at all: nothing will ever arrive, and
                    // the deadline-based receive reports that structurally
                    // instead of blocking forever or panicking.
                    h.recv_timeout(Duration::from_millis(200))
                }
            })
            .collect();
        let (outputs, _) = run_session(m, 8, bodies);
        for out in outputs {
            assert!(matches!(
                out,
                Err(NetError::Timeout) | Err(NetError::Disconnected)
            ));
        }
    }

    #[test]
    fn tiny_capacity_applies_backpressure_without_deadlock() {
        // Capacity 1 with a slow reader: the hub must neither wedge nor
        // buffer without limit; anything it sheds is tallied.
        let config = HubConfig {
            channel_capacity: 1,
            delivery_patience: Duration::from_millis(50),
            recv_deadline: Duration::from_secs(5),
        };
        let m = 2;
        let burst = 64usize;
        let bodies: Vec<_> = (0..m)
            .map(|slot: usize| {
                move |h: PartyHandle| {
                    if slot == 0 {
                        for i in 0..burst {
                            h.broadcast("flood", vec![i as u8]);
                        }
                        0usize
                    } else {
                        // Slow consumer: drain with pauses.
                        let mut got = 0usize;
                        while let Ok(_msg) = h.recv_timeout(Duration::from_millis(300)) {
                            got += 1;
                            thread::sleep(Duration::from_millis(1));
                        }
                        got
                    }
                }
            })
            .collect();
        let (outputs, log) = run_session_with_config(m, 6, FaultPlan::new(6), config, bodies);
        // Every flooded message was either delivered or accounted as a
        // backpressure drop — none vanished silently.
        let delivered = outputs[1];
        let dropped = log.faults().backpressure_dropped as usize;
        // Slot 0 also receives its own echoes, which nobody drains; those
        // echoes are the main source of backpressure drops here.
        assert!(delivered + dropped >= burst, "{delivered} + {dropped}");
        assert_eq!(log.len(), burst, "the wire saw every broadcast");
    }
}
