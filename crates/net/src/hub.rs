//! A threaded asynchronous broadcast hub with guaranteed delivery.
//!
//! Each party runs on its own OS thread and talks to the hub through
//! channels; the hub relays every message to every other party, delaying
//! and interleaving deliveries pseudo-randomly. This is the "asynchronous
//! communication model (with guaranteed delivery)" in which the paper
//! claims the framework still works (§1.1 flexibility) — exercised by the
//! E10 experiment.

use crate::observe::TrafficLog;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread;

/// A message in flight.
#[derive(Debug, Clone)]
struct Wire {
    from_slot: usize,
    round: String,
    payload: Vec<u8>,
}

/// A party's endpoint: broadcast and blocking receive.
pub struct PartyHandle {
    slot: usize,
    slots: usize,
    to_hub: Sender<Wire>,
    from_hub: Receiver<Wire>,
}

impl std::fmt::Debug for PartyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartyHandle {{ slot: {}/{} }}", self.slot, self.slots)
    }
}

impl PartyHandle {
    /// This party's anonymous slot.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Number of slots in the session.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Broadcasts a payload under a round label.
    pub fn broadcast(&self, round: &str, payload: Vec<u8>) {
        let _ = self.to_hub.send(Wire {
            from_slot: self.slot,
            round: round.to_string(),
            payload,
        });
    }

    /// Blocks until the next delivery: `(from_slot, round, payload)`.
    pub fn recv(&self) -> (usize, String, Vec<u8>) {
        let w = self.from_hub.recv().expect("hub alive while parties run");
        (w.from_slot, w.round, w.payload)
    }

    /// Collects one message per *other* slot for the given round,
    /// buffering out-of-round arrivals is the caller's job in fully
    /// general protocols; for the round-structured handshake protocols a
    /// simple filter suffices because every party sends exactly once per
    /// round.
    pub fn collect_round(&self, round: &str) -> Vec<(usize, Vec<u8>)> {
        let mut got: Vec<Option<Vec<u8>>> = vec![None; self.slots];
        let mut count = 0;
        while count < self.slots {
            let (from, r, payload) = self.recv();
            if r == round && got[from].is_none() {
                got[from] = Some(payload);
                count += 1;
            }
        }
        got.into_iter()
            .enumerate()
            .map(|(slot, p)| (slot, p.expect("all slots collected")))
            .collect()
    }
}

/// Runs `m` party bodies on threads connected through an asynchronous
/// reordering hub; returns their outputs plus the eavesdropper log.
///
/// Every broadcast is delivered to **all** slots, including the sender
/// (radio-medium echo semantics, matching [`crate::sync::BroadcastNet`]).
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_session<T, F>(m: usize, seed: u64, bodies: Vec<F>) -> (Vec<T>, TrafficLog)
where
    T: Send + 'static,
    F: FnOnce(PartyHandle) -> T + Send + 'static,
{
    assert_eq!(bodies.len(), m, "one body per slot");
    let (to_hub, hub_in) = unbounded::<Wire>();
    let mut party_txs = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for slot in 0..m {
        let (tx, rx) = unbounded::<Wire>();
        party_txs.push(tx);
        handles.push(PartyHandle {
            slot,
            slots: m,
            to_hub: to_hub.clone(),
            from_hub: rx,
        });
    }
    drop(to_hub);

    let log = Arc::new(Mutex::new(TrafficLog::new()));
    let hub_log = Arc::clone(&log);
    let hub = thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pending: Vec<Wire> = Vec::new();
        loop {
            // Drain what's available; block for at least one if the
            // buffer is empty.
            if pending.is_empty() {
                match hub_in.recv() {
                    Ok(w) => pending.push(w),
                    Err(_) => break,
                }
            }
            while let Ok(w) = hub_in.try_recv() {
                pending.push(w);
            }
            // Deliver a random pending message to all parties (guaranteed,
            // but in adversarial order relative to other messages).
            let idx = rng.gen_range(0..pending.len());
            let w = pending.swap_remove(idx);
            hub_log.lock().record(&w.round, w.from_slot, &w.payload);
            for tx in &party_txs {
                let _ = tx.send(w.clone());
            }
        }
        // Flush anything left after senders disconnected.
        while let Some(w) = pending.pop() {
            hub_log.lock().record(&w.round, w.from_slot, &w.payload);
            for tx in &party_txs {
                let _ = tx.send(w.clone());
            }
        }
    });

    let threads: Vec<thread::JoinHandle<T>> = handles
        .into_iter()
        .zip(bodies)
        .map(|(handle, body)| thread::spawn(move || body(handle)))
        .collect();
    let outputs: Vec<T> = threads
        .into_iter()
        .map(|t| t.join().expect("party thread"))
        .collect();
    hub.join().expect("hub thread");
    let log = Arc::try_unwrap(log).expect("hub done").into_inner();
    (outputs, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_collects_everyone() {
        let m = 4;
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("hello", vec![h.slot() as u8]);
                    let round = h.collect_round("hello");
                    round.iter().map(|(s, p)| (*s, p[0])).collect::<Vec<_>>()
                }
            })
            .collect();
        let (outputs, log) = run_session(m, 42, bodies);
        for out in outputs {
            assert_eq!(out, vec![(0, 0u8), (1, 1), (2, 2), (3, 3)]);
        }
        assert_eq!(log.len(), m);
    }

    #[test]
    fn multi_round_sessions_complete() {
        let m = 3;
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r1", vec![h.slot() as u8]);
                    let r1 = h.collect_round("r1");
                    let sum: u8 = r1.iter().map(|(_, p)| p[0]).sum();
                    h.broadcast("r2", vec![sum]);
                    let r2 = h.collect_round("r2");
                    r2.iter().map(|(_, p)| p[0]).collect::<Vec<u8>>()
                }
            })
            .collect();
        let (outputs, log) = run_session(m, 1, bodies);
        for out in outputs {
            assert_eq!(out, vec![3u8, 3, 3]);
        }
        assert_eq!(log.len(), 2 * m);
    }

    #[test]
    fn different_seeds_reorder_differently_but_agree() {
        // The point of E10 in miniature: outcomes are delivery-order
        // independent.
        for seed in [1u64, 2, 3] {
            let m = 3;
            let bodies: Vec<_> = (0..m)
                .map(|_| {
                    move |h: PartyHandle| {
                        h.broadcast("x", vec![h.slot() as u8 + 10]);
                        let mut vals: Vec<u8> =
                            h.collect_round("x").iter().map(|(_, p)| p[0]).collect();
                        vals.sort();
                        vals
                    }
                })
                .collect();
            let (outputs, _) = run_session(m, seed, bodies);
            for out in outputs {
                assert_eq!(out, vec![10, 11, 12], "seed {seed}");
            }
        }
    }
}
