//! A threaded asynchronous broadcast hub.
//!
//! Each party runs on its own OS thread and talks to the hub through
//! channels; the hub relays every message to every other party, delaying
//! and interleaving deliveries pseudo-randomly. This is the "asynchronous
//! communication model (with guaranteed delivery)" in which the paper
//! claims the framework still works (§1.1 flexibility) — exercised by the
//! E10 experiment.
//!
//! [`run_session_with_faults`] weakens the guarantee: the hub consults a
//! [`FaultPlan`] on every relay, so deliveries may be lost, duplicated,
//! mangled, delayed, or cut by a partition, and crash-stopped parties go
//! silent after their `after_round`-th broadcast. Party bodies that must
//! survive such a medium should use the deadline-based receives
//! ([`PartyHandle::recv_timeout`], [`PartyHandle::collect_round_within`])
//! instead of the blocking ones — a blocking [`PartyHandle::recv`] on a
//! lossy medium can wait forever.

use crate::fault::FaultPlan;
use crate::observe::TrafficLog;
use crate::NetError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A message in flight.
#[derive(Debug, Clone)]
struct Wire {
    from_slot: usize,
    round: String,
    payload: Vec<u8>,
}

/// A party's endpoint: broadcast and blocking receive.
pub struct PartyHandle {
    slot: usize,
    slots: usize,
    to_hub: Sender<Wire>,
    from_hub: Receiver<Wire>,
}

impl std::fmt::Debug for PartyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartyHandle {{ slot: {}/{} }}", self.slot, self.slots)
    }
}

impl PartyHandle {
    /// This party's anonymous slot.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Number of slots in the session.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Broadcasts a payload under a round label.
    pub fn broadcast(&self, round: &str, payload: Vec<u8>) {
        let _ = self.to_hub.send(Wire {
            from_slot: self.slot,
            round: round.to_string(),
            payload,
        });
    }

    /// Blocks until the next delivery: `(from_slot, round, payload)`.
    ///
    /// Only safe on a guaranteed-delivery medium; under a fault plan use
    /// [`PartyHandle::recv_timeout`].
    pub fn recv(&self) -> (usize, String, Vec<u8>) {
        // lint:allow(panic-path) reason="documented blocking API, valid only on a guaranteed-delivery medium; fault-tolerant callers use recv_timeout"
        let w = self.from_hub.recv().expect("hub alive while parties run");
        (w.from_slot, w.round, w.payload)
    }

    /// Blocks for the next delivery up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if nothing arrived in time,
    /// [`NetError::Disconnected`] if the hub is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(usize, String, Vec<u8>), NetError> {
        match self.from_hub.recv_timeout(timeout) {
            Ok(w) => Ok((w.from_slot, w.round, w.payload)),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Collects one message per *other* slot for the given round,
    /// buffering out-of-round arrivals is the caller's job in fully
    /// general protocols; for the round-structured handshake protocols a
    /// simple filter suffices because every party sends exactly once per
    /// round.
    pub fn collect_round(&self, round: &str) -> Vec<(usize, Vec<u8>)> {
        let mut got: Vec<Option<Vec<u8>>> = vec![None; self.slots];
        let mut count = 0;
        while count < self.slots {
            let (from, r, payload) = self.recv();
            if r == round && got[from].is_none() {
                got[from] = Some(payload);
                count += 1;
            }
        }
        got.into_iter()
            .enumerate()
            // lint:allow(panic-path) reason="completeness is established by the count loop above; unreachable on a guaranteed-delivery medium"
            .map(|(slot, p)| (slot, p.expect("all slots collected")))
            .collect()
    }

    /// Collects up to one message per slot for the given round, giving up
    /// on slots that produced nothing within `timeout` (overall
    /// deadline). Entry `i` is `None` if slot `i`'s message never
    /// arrived — dropped, partitioned, or its sender crashed. Duplicate
    /// copies are discarded (first one wins); out-of-round arrivals are
    /// skipped as in [`PartyHandle::collect_round`].
    pub fn collect_round_within(&self, round: &str, timeout: Duration) -> Vec<Option<Vec<u8>>> {
        let deadline = Instant::now() + timeout;
        let mut got: Vec<Option<Vec<u8>>> = vec![None; self.slots];
        let mut count = 0;
        while count < self.slots {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.recv_timeout(left) {
                Ok((from, r, payload)) => {
                    if r == round && from < self.slots && got[from].is_none() {
                        got[from] = Some(payload);
                        count += 1;
                    }
                }
                Err(_) => break,
            }
        }
        got
    }
}

/// Runs `m` party bodies on threads connected through an asynchronous
/// reordering hub with guaranteed delivery; returns their outputs plus
/// the eavesdropper log.
///
/// Every broadcast is delivered to **all** slots, including the sender
/// (radio-medium echo semantics, matching [`crate::sync::BroadcastNet`]).
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_session<T, F>(m: usize, seed: u64, bodies: Vec<F>) -> (Vec<T>, TrafficLog)
where
    T: Send + 'static,
    F: FnOnce(PartyHandle) -> T + Send + 'static,
{
    run_session_with_faults(m, seed, FaultPlan::new(seed), bodies)
}

/// [`run_session`] over a faulty medium: the hub consults `plan` on every
/// relay. The final [`TrafficLog`] carries the plan's fault counters.
///
/// The crash-stop clock here is **per sender**: a `CrashStop { slot,
/// after_round }` rule silences `slot` once it has broadcast
/// `after_round` messages, which coincides with protocol rounds because
/// every party broadcasts exactly once per round. The delay clock, as in
/// the synchronous medium, re-releases a held delivery when a later
/// message with the same round label (a retransmission) is relayed.
///
/// # Panics
///
/// Panics if a party thread panics.
pub fn run_session_with_faults<T, F>(
    m: usize,
    seed: u64,
    mut plan: FaultPlan,
    bodies: Vec<F>,
) -> (Vec<T>, TrafficLog)
where
    T: Send + 'static,
    F: FnOnce(PartyHandle) -> T + Send + 'static,
{
    // lint:allow(panic-path) reason="public API precondition documented under # Panics; harness configuration, not wire data"
    assert_eq!(bodies.len(), m, "one body per slot");
    let (to_hub, hub_in) = unbounded::<Wire>();
    let mut party_txs = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for slot in 0..m {
        let (tx, rx) = unbounded::<Wire>();
        party_txs.push(tx);
        handles.push(PartyHandle {
            slot,
            slots: m,
            to_hub: to_hub.clone(),
            from_hub: rx,
        });
    }
    drop(to_hub);

    let log = Arc::new(Mutex::new(TrafficLog::new()));
    let hub_log = Arc::clone(&log);
    let hub = thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pending: Vec<Wire> = Vec::new();
        let mut sent_by: Vec<u64> = vec![0; m];
        let relay = |w: Wire, plan: &mut FaultPlan, sent_by: &mut Vec<u64>, rng: &mut StdRng| {
            // Crash-stop: the sender dies after its `after_round`-th
            // broadcast; later messages never reach the wire or the log.
            if let Some(after) = plan.crash_budget(w.from_slot) {
                if sent_by[w.from_slot] >= u64::from(after) {
                    plan.note_crash_silenced();
                    return;
                }
            }
            sent_by[w.from_slot] += 1;
            hub_log.lock().record(&w.round, w.from_slot, &w.payload);
            // Release deliveries delayed until a retransmission of this
            // round label; their receiver order is adversarial too.
            let mut due = plan.begin_exchange(&w.round);
            for i in (1..due.len()).rev() {
                let j = rng.gen_range(0..=i);
                due.swap(i, j);
            }
            for d in due {
                if let Some(tx) = party_txs.get(d.to_slot) {
                    let _ = tx.send(Wire {
                        from_slot: d.from_slot,
                        round: w.round.clone(),
                        payload: d.payload,
                    });
                }
            }
            for (to_slot, tx) in party_txs.iter().enumerate() {
                for copy in plan.deliver(&w.round, w.from_slot, to_slot, w.payload.clone()) {
                    let _ = tx.send(Wire {
                        from_slot: w.from_slot,
                        round: w.round.clone(),
                        payload: copy,
                    });
                }
            }
        };
        loop {
            // Drain what's available; block for at least one if the
            // buffer is empty.
            if pending.is_empty() {
                match hub_in.recv() {
                    Ok(w) => pending.push(w),
                    Err(_) => break,
                }
            }
            while let Ok(w) = hub_in.try_recv() {
                pending.push(w);
            }
            // Deliver a random pending message to all parties (in
            // adversarial order relative to other messages).
            let idx = rng.gen_range(0..pending.len());
            let w = pending.swap_remove(idx);
            relay(w, &mut plan, &mut sent_by, &mut rng);
        }
        // Flush anything left after senders disconnected.
        while let Some(w) = pending.pop() {
            relay(w, &mut plan, &mut sent_by, &mut rng);
        }
        hub_log.lock().set_faults(plan.counters().clone());
    });

    let threads: Vec<thread::JoinHandle<T>> = handles
        .into_iter()
        .zip(bodies)
        .map(|(handle, body)| thread::spawn(move || body(handle)))
        .collect();
    let outputs: Vec<T> = threads
        .into_iter()
        // lint:allow(panic-path) reason="propagates a party-thread panic to the harness caller, documented under # Panics"
        .map(|t| t.join().expect("party thread"))
        .collect();
    // lint:allow(panic-path) reason="propagates a hub-thread panic to the harness caller, documented under # Panics"
    hub.join().expect("hub thread");
    // lint:allow(panic-path) reason="hub thread joined above, so the log Arc is uniquely held here"
    let log = Arc::try_unwrap(log).expect("hub done").into_inner();
    (outputs, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;

    #[test]
    fn echo_round_collects_everyone() {
        let m = 4;
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("hello", vec![h.slot() as u8]);
                    let round = h.collect_round("hello");
                    round.iter().map(|(s, p)| (*s, p[0])).collect::<Vec<_>>()
                }
            })
            .collect();
        let (outputs, log) = run_session(m, 42, bodies);
        for out in outputs {
            assert_eq!(out, vec![(0, 0u8), (1, 1), (2, 2), (3, 3)]);
        }
        assert_eq!(log.len(), m);
        assert_eq!(log.faults().total(), 0, "plain run injects nothing");
    }

    #[test]
    fn multi_round_sessions_complete() {
        let m = 3;
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r1", vec![h.slot() as u8]);
                    let r1 = h.collect_round("r1");
                    let sum: u8 = r1.iter().map(|(_, p)| p[0]).sum();
                    h.broadcast("r2", vec![sum]);
                    let r2 = h.collect_round("r2");
                    r2.iter().map(|(_, p)| p[0]).collect::<Vec<u8>>()
                }
            })
            .collect();
        let (outputs, log) = run_session(m, 1, bodies);
        for out in outputs {
            assert_eq!(out, vec![3u8, 3, 3]);
        }
        assert_eq!(log.len(), 2 * m);
    }

    #[test]
    fn different_seeds_reorder_differently_but_agree() {
        // The point of E10 in miniature: outcomes are delivery-order
        // independent.
        for seed in [1u64, 2, 3] {
            let m = 3;
            let bodies: Vec<_> = (0..m)
                .map(|_| {
                    move |h: PartyHandle| {
                        h.broadcast("x", vec![h.slot() as u8 + 10]);
                        let mut vals: Vec<u8> =
                            h.collect_round("x").iter().map(|(_, p)| p[0]).collect();
                        vals.sort();
                        vals
                    }
                })
                .collect();
            let (outputs, _) = run_session(m, seed, bodies);
            for out in outputs {
                assert_eq!(out, vec![10, 11, 12], "seed {seed}");
            }
        }
    }

    #[test]
    fn lossy_round_times_out_instead_of_hanging() {
        let m = 3;
        // Slot 2's broadcasts never reach slot 0.
        let plan = FaultPlan::new(9).with(FaultRule::drop().from(2).to(0));
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r", vec![h.slot() as u8]);
                    h.collect_round_within("r", Duration::from_millis(300))
                        .iter()
                        .map(|p| p.is_some())
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        let (outputs, log) = run_session_with_faults(m, 5, plan, bodies);
        assert_eq!(outputs[0], vec![true, true, false], "slot 0 misses slot 2");
        assert_eq!(outputs[1], vec![true, true, true]);
        assert_eq!(outputs[2], vec![true, true, true]);
        assert!(log.faults().dropped >= 1);
        assert_eq!(log.len(), m, "eavesdropper still saw every broadcast");
    }

    #[test]
    fn crashed_party_goes_silent_after_budget() {
        let m = 3;
        // Slot 1 participates in round r1, then dies.
        let plan = FaultPlan::new(3).with(FaultRule::crash_stop(1, 1));
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r1", vec![1]);
                    let r1 = h.collect_round_within("r1", Duration::from_millis(300));
                    h.broadcast("r2", vec![2]);
                    let r2 = h.collect_round_within("r2", Duration::from_millis(300));
                    (
                        r1.iter().filter(|p| p.is_some()).count(),
                        r2.iter().filter(|p| p.is_some()).count(),
                    )
                }
            })
            .collect();
        let (outputs, log) = run_session_with_faults(m, 7, plan, bodies);
        for (r1_got, r2_got) in outputs {
            assert_eq!(r1_got, m, "everyone alive in r1");
            assert_eq!(r2_got, m - 1, "slot 1 silent in r2");
        }
        assert_eq!(log.faults().crash_silenced, 1);
        assert_eq!(log.len(), 2 * m - 1, "dead sender logs nothing");
    }

    #[test]
    fn duplicates_are_deduplicated_by_collect() {
        let m = 2;
        let plan = FaultPlan::new(4).with(FaultRule::duplicate());
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |h: PartyHandle| {
                    h.broadcast("r", vec![h.slot() as u8]);
                    h.collect_round_within("r", Duration::from_millis(300))
                        .iter()
                        .filter(|p| p.is_some())
                        .count()
                }
            })
            .collect();
        let (outputs, log) = run_session_with_faults(m, 2, plan, bodies);
        assert_eq!(outputs, vec![m, m], "first copy wins, extras discarded");
        assert!(log.faults().duplicated >= 1);
    }
}
