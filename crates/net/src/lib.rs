//! Anonymous-channel network simulation for the handshake protocols.
//!
//! The paper's system model (§2) assumes *anonymous channels*: an outside
//! observer sees that messages flow (their sizes, their round structure,
//! which anonymous *slot* of the session emitted them) but not who the
//! parties are; §9 argues wireless broadcast provides this naturally. This
//! crate simulates exactly that medium:
//!
//! * [`sync::BroadcastNet`] — a deterministic round-based broadcast
//!   medium with pluggable delivery order ([`DeliveryPolicy`]), an
//!   eavesdropper-facing traffic log ([`observe`]) and a
//!   man-in-the-middle interception hook.
//! * [`hub::run_session`] — a threaded, asynchronous (guaranteed-delivery)
//!   variant where each party runs on its own thread and messages are
//!   delivered through channels in adversarially perturbed order. Used by
//!   the E10 model-agnosticism experiment.
//! * [`serve::Service`] — a long-lived multi-session service on top:
//!   session lifecycle registry, bounded-queue admission control with
//!   decoy-traffic load shedding, survivor re-formation after aborts,
//!   and graceful draining shutdown.
//!
//! Payloads are opaque bytes: everything a protocol puts on the wire goes
//! through here, so the observer API sees precisely what a real
//! eavesdropper would.
//!
//! # Failure model
//!
//! By default both media guarantee delivery, matching the paper's system
//! model. Installing a [`fault::FaultPlan`] (via
//! [`sync::BroadcastNet::set_fault_plan`] or
//! [`hub::run_session_with_faults`]) weakens the medium to a lossy,
//! malicious network: deliveries may be dropped, duplicated, corrupted,
//! truncated, delayed to a later retransmission, cut by a partition, or
//! silenced entirely by a crash-stopped sender. Two invariants hold
//! regardless of the plan:
//!
//! * **The eavesdropper log records what senders put on the wire.**
//!   Per-receiver faults (drop/corrupt/truncate/delay/partition) never
//!   change the observed [`observe::TrafficLog`] shape; only a
//!   crash-stop does, because a dead sender truly transmits nothing.
//! * **Every fault that fires is counted** in
//!   [`observe::FaultCounters`], exposed via
//!   [`observe::TrafficLog::faults`].
//!
//! Recovering from injected faults (retransmission, abort with decoy
//! traffic) is the protocol driver's job — see `shs-core`'s session
//! budget and abort semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod hub;
pub mod observe;
pub mod serve;
pub mod sync;

use serde::{Deserialize, Serialize};

/// Delivery-order policy of the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryPolicy {
    /// Messages of a round are delivered in slot order (synchronous
    /// model).
    Synchronous,
    /// Messages of a round are delivered in an adversarially chosen
    /// (seeded pseudo-random, per-receiver) order — the asynchronous model
    /// with guaranteed delivery.
    AdversarialReorder {
        /// Seed of the adversary's permutation choices.
        seed: u64,
    },
}

/// Errors produced by the network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// A slot index was out of range.
    BadSlot,
    /// The per-round message set was incomplete.
    IncompleteRound,
    /// A blocking receive exceeded its deadline (lossy medium; the
    /// expected message may have been dropped or its sender crashed).
    Timeout,
    /// The peer side of a channel disappeared mid-session.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadSlot => write!(f, "slot index out of range"),
            NetError::IncompleteRound => write!(f, "round message set incomplete"),
            NetError::Timeout => write!(f, "receive deadline exceeded"),
            NetError::Disconnected => write!(f, "peer channel disconnected"),
        }
    }
}

impl std::error::Error for NetError {}
