//! Anonymous-channel network simulation for the handshake protocols.
//!
//! The paper's system model (§2) assumes *anonymous channels*: an outside
//! observer sees that messages flow (their sizes, their round structure,
//! which anonymous *slot* of the session emitted them) but not who the
//! parties are; §9 argues wireless broadcast provides this naturally. This
//! crate simulates exactly that medium:
//!
//! * [`sync::BroadcastNet`] — a deterministic round-based broadcast
//!   medium with pluggable delivery order ([`DeliveryPolicy`]), an
//!   eavesdropper-facing traffic log ([`observe`]) and a
//!   man-in-the-middle interception hook.
//! * [`hub::run_session`] — a threaded, asynchronous (guaranteed-delivery)
//!   variant where each party runs on its own thread and messages are
//!   delivered through channels in adversarially perturbed order. Used by
//!   the E10 model-agnosticism experiment.
//! * [`serve::Service`] — a long-lived multi-session service on top:
//!   session lifecycle registry, bounded-queue admission control with
//!   decoy-traffic load shedding, survivor re-formation after aborts,
//!   and graceful draining shutdown.
//!
//! Payloads are opaque bytes: everything a protocol puts on the wire goes
//! through here, so the observer API sees precisely what a real
//! eavesdropper would.
//!
//! # Failure model
//!
//! By default both media guarantee delivery, matching the paper's system
//! model. Installing a [`fault::FaultPlan`] (via
//! [`sync::BroadcastNet::set_fault_plan`] or
//! [`hub::run_session_with_faults`]) weakens the medium to a lossy,
//! malicious network: deliveries may be dropped, duplicated, corrupted,
//! truncated, delayed to a later retransmission, cut by a partition, or
//! silenced entirely by a crash-stopped sender. Two invariants hold
//! regardless of the plan:
//!
//! * **The eavesdropper log records what senders put on the wire.**
//!   Per-receiver faults (drop/corrupt/truncate/delay/partition) never
//!   change the observed [`observe::TrafficLog`] shape; only a
//!   crash-stop does, because a dead sender truly transmits nothing.
//! * **Every fault that fires is counted** in
//!   [`observe::FaultCounters`], exposed via
//!   [`observe::TrafficLog::faults`].
//!
//! Recovering from injected faults (retransmission, abort with decoy
//! traffic) is the protocol driver's job — see `shs-core`'s session
//! budget and abort semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fault;
pub mod hub;
pub mod observe;
pub mod serve;
pub mod sync;
pub mod tcp;

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Delivery-order policy of the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryPolicy {
    /// Messages of a round are delivered in slot order (synchronous
    /// model).
    Synchronous,
    /// Messages of a round are delivered in an adversarially chosen
    /// (seeded pseudo-random, per-receiver) order — the asynchronous model
    /// with guaranteed delivery.
    AdversarialReorder {
        /// Seed of the adversary's permutation choices.
        seed: u64,
    },
}

/// Errors produced by the network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// A slot index was out of range.
    BadSlot,
    /// The per-round message set was incomplete.
    IncompleteRound,
    /// A blocking receive exceeded its deadline (lossy medium; the
    /// expected message may have been dropped or its sender crashed).
    Timeout,
    /// The peer side of a channel disappeared mid-session.
    Disconnected,
    /// A wire frame failed to decode (see [`tcp::frame::FrameError`]).
    /// Fires before any allocation for the offending frame body.
    Frame(tcp::frame::FrameError),
    /// The connection supervisor exhausted its reconnect attempt budget.
    ConnectFailed,
    /// The remote end refused the attachment (slot taken, session full,
    /// or a protocol-version mismatch during the hello exchange).
    Refused,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadSlot => write!(f, "slot index out of range"),
            NetError::IncompleteRound => write!(f, "round message set incomplete"),
            NetError::Timeout => write!(f, "receive deadline exceeded"),
            NetError::Disconnected => write!(f, "peer channel disconnected"),
            NetError::Frame(e) => write!(f, "wire frame: {e}"),
            NetError::ConnectFailed => write!(f, "reconnect attempt budget exhausted"),
            NetError::Refused => write!(f, "remote refused attachment"),
        }
    }
}

impl std::error::Error for NetError {}

/// Transport-level robustness counters a medium accumulates alongside
/// the fault tallies in [`observe::FaultCounters`]. In-process media
/// report zeros; the TCP transport counts real socket events so the
/// hardened runtime's session accounting
/// (`shs-core`'s `SessionStats`) can surface them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportCounters {
    /// Successful re-attachments after a lost connection (each one cost
    /// at least one backoff sleep).
    pub reconnects: u64,
    /// Read or write deadlines that expired on a live connection.
    pub deadline_timeouts: u64,
    /// Heartbeat frames sent to keep an idle connection observable.
    pub heartbeats: u64,
}

impl TransportCounters {
    /// Component-wise sum.
    pub fn merge(&mut self, other: &TransportCounters) {
        self.reconnects += other.reconnects;
        self.deadline_timeouts += other.deadline_timeouts;
        self.heartbeats += other.heartbeats;
    }
}

/// A lockstep broadcast medium the handshake engine can drive: all
/// slots' payloads go in together, all inboxes come back together.
///
/// [`sync::BroadcastNet`] implements this in-process;
/// [`tcp::TcpSession`] implements it over real sockets through a frame
/// relay. The engine only sees this trait, so the session budget, decoy
/// machinery and retransmission logic are byte-identical on both.
pub trait Medium {
    /// Number of party slots.
    fn slots(&self) -> usize;

    /// Performs one broadcast exchange under `round`: `outgoing[i]` is
    /// slot `i`'s payload, the result's entry `i` is slot `i`'s inbox
    /// (own echo included, as on a radio medium).
    ///
    /// # Errors
    ///
    /// [`NetError::IncompleteRound`] unless exactly one payload per slot
    /// is supplied; transports add their I/O error classes.
    fn exchange(
        &mut self,
        round: &str,
        outgoing: Vec<Vec<u8>>,
    ) -> Result<Vec<Vec<sync::Received>>, NetError>;

    /// A snapshot of the eavesdropper's traffic log so far.
    fn traffic_snapshot(&self) -> observe::TrafficLog;

    /// Slots known to have crash-stopped (fault injection or a real
    /// dead connection) as of now.
    fn crashed_slots(&self) -> Vec<usize>;

    /// Transport robustness counters (zero for in-process media).
    fn transport_counters(&self) -> TransportCounters {
        TransportCounters::default()
    }
}

/// One party's endpoint on a broadcast medium, for drivers where each
/// party runs in its own thread or OS process (the distributed
/// counterpart of [`Medium`], which holds all slots in one place).
///
/// [`hub::PartyHandle`] implements this over in-process channels (the
/// test seam); [`tcp::TcpParty`] implements it over a framed TCP
/// connection to a relay.
pub trait PartyLink {
    /// This party's anonymous slot.
    fn slot(&self) -> usize;

    /// Number of slots in the session.
    fn slots(&self) -> usize;

    /// Broadcasts `payload` under `round` to every slot.
    ///
    /// # Errors
    ///
    /// Transport errors ([`NetError::Disconnected`] after the reconnect
    /// budget, write timeouts) are propagated.
    fn broadcast(&mut self, round: &str, payload: Vec<u8>) -> Result<(), NetError>;

    /// Collects one exchange of `round`: entry `j` is the first copy of
    /// slot `j`'s payload that satisfied `valid` (`None` where nothing
    /// valid arrived before the deadline). Out-of-round arrivals and
    /// invalid copies are discarded, matching the lockstep engine's
    /// first-valid-copy-wins rule.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the medium is gone for good; a
    /// mere quiet deadline returns an incomplete view instead.
    fn collect(
        &mut self,
        round: &str,
        timeout: Duration,
        valid: &mut dyn FnMut(usize, &[u8]) -> bool,
    ) -> Result<Vec<Option<Vec<u8>>>, NetError>;

    /// Transport robustness counters (zero for in-process links).
    fn transport_counters(&self) -> TransportCounters {
        TransportCounters::default()
    }
}
