//! Anonymous-channel network simulation for the handshake protocols.
//!
//! The paper's system model (§2) assumes *anonymous channels*: an outside
//! observer sees that messages flow (their sizes, their round structure,
//! which anonymous *slot* of the session emitted them) but not who the
//! parties are; §9 argues wireless broadcast provides this naturally. This
//! crate simulates exactly that medium:
//!
//! * [`sync::BroadcastNet`] — a deterministic round-based broadcast
//!   medium with pluggable delivery order ([`DeliveryPolicy`]), an
//!   eavesdropper-facing traffic log ([`observe`]) and a
//!   man-in-the-middle interception hook.
//! * [`hub::run_session`] — a threaded, asynchronous (guaranteed-delivery)
//!   variant where each party runs on its own thread and messages are
//!   delivered through channels in adversarially perturbed order. Used by
//!   the E10 model-agnosticism experiment.
//!
//! Payloads are opaque bytes: everything a protocol puts on the wire goes
//! through here, so the observer API sees precisely what a real
//! eavesdropper would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hub;
pub mod observe;
pub mod sync;

/// Delivery-order policy of the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Messages of a round are delivered in slot order (synchronous
    /// model).
    Synchronous,
    /// Messages of a round are delivered in an adversarially chosen
    /// (seeded pseudo-random, per-receiver) order — the asynchronous model
    /// with guaranteed delivery.
    AdversarialReorder {
        /// Seed of the adversary's permutation choices.
        seed: u64,
    },
}

/// Errors produced by the network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// A slot index was out of range.
    BadSlot,
    /// The per-round message set was incomplete.
    IncompleteRound,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadSlot => write!(f, "slot index out of range"),
            NetError::IncompleteRound => write!(f, "round message set incomplete"),
        }
    }
}

impl std::error::Error for NetError {}
