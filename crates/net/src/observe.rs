//! The eavesdropper's view: a traffic log of everything that crossed the
//! medium.
//!
//! The *indistinguishability to eavesdroppers* experiments (Fig. 2, E7a)
//! compare two [`TrafficLog`]s — one from a successful handshake, one from
//! a failed or simulated one — and check that nothing but the payload
//! randomness differs: same rounds, same slots, same sizes.

use serde::{Deserialize, Serialize};

/// One observed transmission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficRecord {
    /// Protocol-phase label (e.g. `"dgka-round1"`, `"phase2-mac"`).
    pub round: String,
    /// Anonymous sender slot within the session.
    pub from_slot: usize,
    /// The raw bytes on the wire (the eavesdropper sees ciphertext).
    pub payload: Vec<u8>,
}

/// Per-fault-kind tallies of injected faults (see [`crate::fault`]).
///
/// Exposed through [`TrafficLog::faults`] so tests and benches can assert
/// exactly which faults fired during a session.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Deliveries silently discarded.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Payload copies with flipped bits.
    pub corrupted: u64,
    /// Payload copies cut short.
    pub truncated: u64,
    /// Deliveries held back for a later matching exchange.
    pub delayed: u64,
    /// Held-back deliveries that eventually arrived.
    pub redelivered: u64,
    /// Broadcasts suppressed because the sender crash-stopped.
    pub crash_silenced: u64,
    /// Deliveries cut by a network partition.
    pub partitioned: u64,
    /// Deliveries the threaded hub shed because a receiver's bounded
    /// inbox stayed full past its delivery patience (flow control, not
    /// an injected fault — but still a loss the runtime must absorb).
    pub backpressure_dropped: u64,
}

impl FaultCounters {
    /// Total faults that fired (redeliveries are recoveries, not faults).
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.corrupted
            + self.truncated
            + self.delayed
            + self.crash_silenced
            + self.partitioned
            + self.backpressure_dropped
    }
}

/// An ordered log of observed transmissions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficLog {
    records: Vec<TrafficRecord>,
    faults: FaultCounters,
}

/// The *shape* of a log: everything an eavesdropper can compare across
/// sessions except payload bits — round labels, slots, sizes, order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficShape {
    /// `(round, from_slot, payload_len)` per record, in order.
    pub entries: Vec<(String, usize, usize)>,
}

impl TrafficLog {
    /// An empty log.
    pub fn new() -> TrafficLog {
        TrafficLog::default()
    }

    /// Records one transmission.
    pub fn record(&mut self, round: &str, from_slot: usize, payload: &[u8]) {
        self.records.push(TrafficRecord {
            round: round.to_string(),
            from_slot,
            payload: payload.to_vec(),
        });
    }

    /// All records, in observation order.
    pub fn records(&self) -> &[TrafficRecord] {
        &self.records
    }

    /// Total bytes observed.
    pub fn total_bytes(&self) -> usize {
        self.records.iter().map(|r| r.payload.len()).sum()
    }

    /// Number of transmissions observed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of transmissions attributed to `slot`.
    pub fn messages_from(&self, slot: usize) -> usize {
        self.records.iter().filter(|r| r.from_slot == slot).count()
    }

    /// Tallies of faults the medium injected while producing this log.
    pub fn faults(&self) -> &FaultCounters {
        &self.faults
    }

    /// Overwrites the fault tallies (called by the media — including
    /// out-of-crate ones like the `shs-sim` simulated medium — after
    /// each exchange; the plan owns the authoritative counts).
    pub fn set_faults(&mut self, faults: FaultCounters) {
        self.faults = faults;
    }

    /// The metadata shape (see [`TrafficShape`]).
    pub fn shape(&self) -> TrafficShape {
        TrafficShape {
            entries: self
                .records
                .iter()
                .map(|r| (r.round.clone(), r.from_slot, r.payload.len()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut log = TrafficLog::new();
        assert!(log.is_empty());
        log.record("r1", 0, b"abc");
        log.record("r1", 1, b"defg");
        log.record("r2", 0, b"x");
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_bytes(), 8);
        assert_eq!(log.messages_from(0), 2);
        assert_eq!(log.messages_from(1), 1);
        assert_eq!(log.messages_from(2), 0);
    }

    #[test]
    fn shape_ignores_payload_bits() {
        let mut a = TrafficLog::new();
        a.record("r1", 0, b"aaaa");
        let mut b = TrafficLog::new();
        b.record("r1", 0, b"zzzz");
        assert_ne!(a, b);
        assert_eq!(a.shape(), b.shape());
        // Different size breaks the shape.
        let mut c = TrafficLog::new();
        c.record("r1", 0, b"aaa");
        assert_ne!(a.shape(), c.shape());
    }
}
