//! Graceful-shutdown accounting.
//!
//! Shutdown is a *drain*, not a kill: queued sessions that no worker has
//! picked up are classified [`super::registry::TerminalClass::Drained`] immediately, and
//! running sessions get a grace period to finish their current attempt —
//! the drain flag forbids further re-formation retries, so every running
//! session reaches a terminal state within one attempt. The
//! [`DrainReport`] records what happened, so operators (and the chaos
//! soak) can assert that nothing was left dangling.

use std::time::Duration;

/// What a graceful shutdown accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Queued sessions classified [`super::registry::TerminalClass::Drained`] without
    /// ever running.
    pub swept_from_queue: u64,
    /// Sessions that were mid-attempt when the drain began and still
    /// reached a terminal state within the grace period.
    pub finished_in_grace: u64,
    /// Sessions still non-terminal when the grace period expired
    /// (registry leaks — the chaos soak asserts this is zero).
    pub leaked: u64,
    /// Messages lost to backpressure across every attempt the registry
    /// recorded over the service's lifetime — so an operator reading the
    /// shutdown report sees load shedding, not just lifecycle counts.
    pub backpressure_dropped: u64,
    /// How long the drain took.
    pub elapsed: Duration,
}

impl DrainReport {
    /// Did the drain leave the registry fully terminal?
    pub fn clean(&self) -> bool {
        self.leaked == 0
    }
}
