//! A long-lived multi-session handshake service.
//!
//! [`Service`] multiplexes many concurrent handshake sessions over a
//! bounded worker pool:
//!
//! * **Lifecycle** — every submission gets a [`registry::SessionEntry`]
//!   whose state machine (`Gathering → Running → Draining →
//!   Completed/Aborted`) only moves along legal edges
//!   ([`registry::SessionRegistry::transition`] refuses and counts
//!   anything else).
//! * **Sharding** — the registry is split into one shard per worker.
//!   Sessions are pinned to a shard by `id % workers`, each worker owns
//!   its shard's queue outright (no shared receiver lock), and in the
//!   steady state a worker only ever touches its own shard's mutex, so
//!   workers never contend. Cross-shard traffic happens in exactly one
//!   place: admission, where a submission whose pinned queue is full is
//!   *stolen* onto the first sibling queue with room, scanning
//!   circularly from the pinned shard (the stolen item still records
//!   into its owning shard's registry, keeping id → shard lookup a pure
//!   modulus).
//! * **Backpressure** — every shard queue is bounded; when all of them
//!   are full, admission control sheds the session *with decoy traffic*
//!   ([`shed::ShapeBook`]) so outsiders cannot distinguish a shed
//!   session from a served-and-failed one.
//! * **Survivor re-formation** — when an attempt aborts, slot liveness
//!   derived from the attempt's [`crate::observe::TrafficLog`] picks the
//!   responsive survivors and the session is re-formed among them
//!   (§7 partial-success semantics), retried under jittered exponential
//!   backoff, a bounded attempt budget and a per-session deadline.
//! * **Graceful shutdown** — [`Service::shutdown`] sweeps the queue,
//!   lets running sessions finish their current attempt, and reports a
//!   [`drain::DrainReport`] whose leak count a chaos soak can assert to
//!   be zero.
//!
//! The service is generic over [`session::SessionJob`], so `shs-net`
//! stays protocol-agnostic; `shs-core` provides the adapter that runs
//! real GCD handshakes as jobs.

pub mod drain;
pub mod registry;
pub mod session;
pub mod shed;

pub use drain::DrainReport;
pub use registry::{
    RegistryError, RegistryStats, SessionEntry, SessionId, SessionRegistry, SessionState,
    TerminalClass,
};
pub use session::{
    live_slots, AttemptContext, AttemptOutcome, AttemptRecord, AttemptVerdict, SessionJob,
    SessionSpec,
};
pub use shed::{backoff_delay, DecoyShape, ShapeBook};

use crate::clock::SharedClock;
use crate::observe::TrafficLog;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use session::DriveConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Service tuning knobs. The defaults suit tests and the bundled
/// daemon example; a deployment would size them to its fleet.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing sessions concurrently (default 4).
    pub workers: usize,
    /// Bound of the submission queue (default 32). A full queue is the
    /// shedding trigger: submissions beyond it are turned away with
    /// decoy traffic instead of buffering without limit.
    pub queue_capacity: usize,
    /// Deadline applied to sessions whose spec does not override it
    /// (default 30 s, measured from admission).
    pub default_deadline: Duration,
    /// Attempt budget applied to sessions whose spec does not override
    /// it (default 4: the original attempt plus three retries).
    pub default_max_attempts: u32,
    /// First-retry backoff (default 5 ms); doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling (default 100 ms).
    pub backoff_cap: Duration,
    /// Seed for per-attempt randomness derivation and decoy payloads.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            queue_capacity: 32,
            default_deadline: Duration::from_secs(30),
            default_max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            seed: 0x5e5510,
        }
    }
}

/// Outcome of a [`Service::submit`] call.
#[derive(Debug)]
pub enum Submitted {
    /// Admitted and queued for a worker.
    Queued(SessionId),
    /// Turned away by admission control. `decoy` is the synthetic
    /// traffic emitted in place of a real session (present once the
    /// service has learned a wire shape for this roster size).
    Shed {
        /// The registry id of the shed session (terminal immediately).
        id: SessionId,
        /// What an eavesdropper saw instead of a real session.
        decoy: Option<TrafficLog>,
    },
}

impl Submitted {
    /// The registry id, whichever way admission went.
    pub fn id(&self) -> SessionId {
        match self {
            Submitted::Queued(id) => *id,
            Submitted::Shed { id, .. } => *id,
        }
    }

    /// Was the session admitted to the queue?
    pub fn queued(&self) -> bool {
        matches!(self, Submitted::Queued(_))
    }
}

struct WorkItem {
    id: SessionId,
    /// Index of the shard registry this session lives in — `id % n` at
    /// admission. Carried explicitly so a *stolen* item (executed by a
    /// sibling worker) still records into its owning shard.
    shard: usize,
    spec: SessionSpec,
}

/// The multi-session handshake service. See the module docs.
pub struct Service {
    config: ServiceConfig,
    /// One registry shard per worker; session `id` lives in
    /// `shards[id % shards.len()]`.
    shards: Arc<Vec<Mutex<SessionRegistry>>>,
    shapes: Arc<Mutex<ShapeBook>>,
    draining: Arc<AtomicBool>,
    /// Global id allocator — the only cross-shard state touched on the
    /// admission fast path.
    next_id: Arc<AtomicU64>,
    /// Per-worker submission queues; cleared on shutdown to disconnect
    /// the workers.
    queues: Vec<Sender<WorkItem>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool and returns the running service, with
    /// backoff sleeps on the wall clock.
    pub fn start(config: ServiceConfig) -> Service {
        Service::start_with_clock(config, crate::clock::wall())
    }

    /// [`Service::start`] with an explicit [`crate::clock::Clock`] for
    /// the between-attempt backoff sleeps. The discrete-event simulator
    /// passes a virtual clock so retry schedules advance simulated time
    /// instead of blocking worker threads.
    pub fn start_with_clock(config: ServiceConfig, clock: SharedClock) -> Service {
        let n = config.workers.max(1);
        let shards: Arc<Vec<Mutex<SessionRegistry>>> =
            Arc::new((0..n).map(|_| Mutex::new(SessionRegistry::new())).collect());
        let shapes = Arc::new(Mutex::new(ShapeBook::new()));
        let draining = Arc::new(AtomicBool::new(false));
        // The configured capacity bounds the *total* queued work, split
        // evenly across the per-worker queues.
        let per_queue = config.queue_capacity.max(1).div_ceil(n).max(1);
        let drive_cfg = DriveConfig {
            backoff_base: config.backoff_base,
            backoff_cap: config.backoff_cap,
            seed: config.seed,
            clock,
        };
        let mut queues = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<WorkItem>(per_queue);
            queues.push(tx);
            let shards = Arc::clone(&shards);
            let shapes = Arc::clone(&shapes);
            let draining = Arc::clone(&draining);
            let drive_cfg = drive_cfg.clone();
            workers.push(thread::spawn(move || loop {
                // The worker owns its receiver outright — no dequeue
                // contention; the timeout keeps idle workers responsive
                // to a disconnect.
                match rx.recv_timeout(Duration::from_millis(25)) {
                    Ok(item) => {
                        let roster_len = item.spec.job.roster_len();
                        let summary = session::drive(
                            &shards[item.shard],
                            &draining,
                            drive_cfg.clone(),
                            item.id,
                            item.spec,
                        );
                        if let Some(traffic) = summary.clean_traffic {
                            shapes.lock().learn(roster_len, &traffic);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }));
        }
        Service {
            config,
            shards,
            shapes,
            draining,
            next_id: Arc::new(AtomicU64::new(0)),
            queues,
            workers,
        }
    }

    /// Submits a session. Admission control applies here: the session is
    /// pinned to shard `id % workers` and offered to that worker's
    /// queue first; if the pinned queue is full the item is stolen onto
    /// the next sibling with room. Only when *every* queue is full (or
    /// the service is draining) is the submission shed with decoy
    /// traffic, and the shed entry is terminal at once.
    pub fn submit(&self, mut spec: SessionSpec) -> Submitted {
        if spec.deadline == Duration::ZERO {
            spec.deadline = self.config.default_deadline;
        }
        if spec.max_attempts == 0 {
            spec.max_attempts = self.config.default_max_attempts;
        }
        let roster_len = spec.job.roster_len();
        let n = self.queues.len();
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let shard = (id % n as u64) as usize;
        self.shards[shard]
            .lock()
            .admit_with_id(id, roster_len, Instant::now() + spec.deadline);
        if !self.draining.load(Ordering::SeqCst) {
            let mut item = WorkItem { id, shard, spec };
            for offset in 0..n {
                let q = (shard + offset) % n;
                match self.queues[q].try_send(item) {
                    Ok(()) => return Submitted::Queued(id),
                    // The shim's try_send hands the message back either
                    // way; reclaim it and try the next sibling queue.
                    Err(TrySendError::Full(back)) | Err(TrySendError::Disconnected(back)) => {
                        item = back;
                    }
                }
            }
        }
        // Shed: classify immediately and emit a decoy so the refusal is
        // indistinguishable on the wire from a served session.
        let decoy = self
            .shapes
            .lock()
            .template(roster_len)
            .map(|t| t.synthesize(self.config.seed ^ id.wrapping_mul(0x9e37)));
        let mut reg = self.shards[shard].lock();
        let _ = reg.transition(id, SessionState::Aborted, Some(TerminalClass::Shed));
        if let Some(d) = &decoy {
            let _ = reg.set_decoy_traffic(id, d.clone());
        }
        Submitted::Shed { id, decoy }
    }

    /// Non-terminal sessions across every shard.
    fn total_active(&self) -> usize {
        self.shards.iter().map(|s| s.lock().active()).sum()
    }

    /// Blocks until every admitted session is terminal or `timeout`
    /// passes; returns whether the registry went fully terminal.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.total_active() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(2));
        }
    }

    /// Gracefully shuts down: sweeps queued sessions (classified
    /// [`TerminalClass::Drained`]), forbids further retries, gives
    /// running sessions `grace` to finish their current attempt, and
    /// joins the workers.
    pub fn shutdown(mut self, grace: Duration) -> DrainReport {
        let start = Instant::now();
        self.draining.store(true, Ordering::SeqCst);
        let mut swept = 0u64;
        let mut running_at_drain = 0u64;
        for shard in self.shards.iter() {
            let mut reg = shard.lock();
            for e in reg.snapshot() {
                match e.state {
                    SessionState::Gathering
                        if reg
                            .transition(e.id, SessionState::Aborted, Some(TerminalClass::Drained))
                            .is_ok() =>
                    {
                        swept += 1;
                    }
                    SessionState::Running => {
                        let _ = reg.transition(e.id, SessionState::Draining, None);
                        running_at_drain += 1;
                    }
                    _ => {}
                }
            }
        }
        // Dropping the senders lets idle workers exit; busy workers exit
        // after their in-flight session terminates.
        self.queues.clear();
        let deadline = start + grace;
        while self.total_active() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        let leaked = self.total_active() as u64;
        if leaked == 0 {
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        }
        DrainReport {
            swept_from_queue: swept,
            finished_in_grace: running_at_drain.saturating_sub(leaked),
            leaked,
            backpressure_dropped: self.stats().backpressure_dropped,
            elapsed: start.elapsed(),
        }
    }

    /// Aggregate registry counters: the field-wise sum over every shard.
    pub fn stats(&self) -> RegistryStats {
        let mut total = RegistryStats::default();
        for shard in self.shards.iter() {
            total.absorb(&shard.lock().stats());
        }
        total
    }

    /// A clone of one registry entry (looked up in its pinned shard).
    pub fn entry(&self, id: SessionId) -> Option<SessionEntry> {
        self.shards[(id % self.shards.len() as u64) as usize]
            .lock()
            .entry(id)
    }

    /// Clones of every registry entry across all shards, in id order.
    pub fn snapshot(&self) -> Vec<SessionEntry> {
        let mut all: Vec<SessionEntry> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().snapshot())
            .collect();
        all.sort_unstable_by_key(|e| e.id);
        all
    }

    /// Ids of non-terminal sessions across all shards (the leak check).
    pub fn leaks(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self.shards.iter().flat_map(|s| s.lock().leaks()).collect();
        ids.sort_unstable();
        ids
    }

    /// Roster sizes the shape book can already imitate.
    pub fn known_decoy_sizes(&self) -> Vec<usize> {
        self.shapes.lock().known_sizes()
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A job that sleeps briefly, then succeeds with uniform traffic.
    struct SleepyJob {
        len: usize,
        sleep: Duration,
    }

    impl SessionJob for SleepyJob {
        fn roster_len(&self) -> usize {
            self.len
        }
        fn run_attempt(&mut self, _ctx: &AttemptContext) -> AttemptOutcome {
            thread::sleep(self.sleep);
            let mut traffic = TrafficLog::new();
            for round in ["p1", "p2"] {
                for slot in 0..self.len {
                    traffic.record(round, slot, b"payload");
                }
            }
            AttemptOutcome {
                verdict: AttemptVerdict::Success,
                traffic,
            }
        }
    }

    fn sleepy(len: usize, ms: u64) -> SessionSpec {
        SessionSpec::new(Box::new(SleepyJob {
            len,
            sleep: Duration::from_millis(ms),
        }))
    }

    #[test]
    fn sessions_complete_and_registry_stays_leak_free() {
        let svc = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let ids: Vec<_> = (0..6).map(|_| svc.submit(sleepy(3, 1)).id()).collect();
        assert!(svc.wait_idle(Duration::from_secs(10)));
        for id in ids {
            let e = svc.entry(id).unwrap();
            assert_eq!(e.class, Some(TerminalClass::Accepted));
            assert!(e.latency().is_some());
        }
        let report = svc.shutdown(Duration::from_secs(5));
        assert!(report.clean());
    }

    #[test]
    fn full_queue_sheds_with_decoy_after_learning() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        // Teach the shape book with one clean session first.
        let first = svc.submit(sleepy(2, 0)).id();
        assert!(svc.wait_idle(Duration::from_secs(10)));
        assert_eq!(svc.known_decoy_sizes(), vec![2]);
        // Saturate: one long session occupies the worker, one fills the
        // queue; everything beyond must shed.
        let _busy = svc.submit(sleepy(2, 300));
        thread::sleep(Duration::from_millis(50)); // let the worker claim it
        let _queued = svc.submit(sleepy(2, 0));
        let shed = svc.submit(sleepy(2, 0));
        assert!(!shed.queued(), "third submission should be shed");
        let Submitted::Shed { id, decoy } = shed else {
            unreachable!()
        };
        let decoy = decoy.expect("shape was learned, decoy must exist");
        let real = svc.entry(first).unwrap().attempts[0].traffic.clone();
        assert_eq!(decoy.shape(), real.shape(), "shedding is unobservable");
        assert_ne!(decoy, real, "decoy bits are fresh");
        assert_eq!(svc.entry(id).unwrap().class, Some(TerminalClass::Shed));
        assert!(svc.wait_idle(Duration::from_secs(10)));
        assert!(svc.shutdown(Duration::from_secs(5)).clean());
    }

    #[test]
    fn shutdown_sweeps_queue_and_reports() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServiceConfig::default()
        });
        let _busy = svc.submit(sleepy(2, 100));
        thread::sleep(Duration::from_millis(30));
        let queued: Vec<_> = (0..3).map(|_| svc.submit(sleepy(2, 0)).id()).collect();
        let report = svc.shutdown(Duration::from_secs(5));
        assert!(report.clean(), "no leaks: {report:?}");
        assert_eq!(report.swept_from_queue, 3);
        // Swept sessions must be classified Drained, not left dangling.
        // (The service is gone; inspect via the report only.)
        let _ = queued;
    }

    #[test]
    fn stats_and_snapshot_aggregate_across_shards() {
        let svc = Service::start(ServiceConfig {
            workers: 3,
            ..ServiceConfig::default()
        });
        let ids: Vec<_> = (0..7).map(|_| svc.submit(sleepy(2, 1)).id()).collect();
        assert!(svc.wait_idle(Duration::from_secs(10)));
        let stats = svc.stats();
        assert_eq!(stats.submitted, 7, "per-shard admissions must sum");
        assert_eq!(stats.completed, 7);
        // Every id resolves through its pinned shard, and the snapshot
        // is globally id-ordered despite being stored shard-wise.
        for id in &ids {
            assert!(svc.entry(*id).is_some());
        }
        let snap_ids: Vec<_> = svc.snapshot().iter().map(|e| e.id).collect();
        assert_eq!(snap_ids, ids);
        assert!(svc.leaks().is_empty());
        assert!(svc.shutdown(Duration::from_secs(5)).clean());
    }

    #[test]
    fn full_pinned_queue_steals_to_sibling_instead_of_shedding() {
        // Two workers, one slot per queue. Occupy worker 0 with a long
        // session and park another item in its queue; the next session
        // pinned to shard 0 must then be stolen onto queue 1 (queued,
        // not shed) while still registering in shard 0.
        let svc = Service::start(ServiceConfig {
            workers: 2,
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        let long = svc.submit(sleepy(2, 400)).id(); // id 0 → shard 0
        thread::sleep(Duration::from_millis(60)); // worker 0 claims it
        let short = svc.submit(sleepy(2, 0)).id(); // id 1 → shard 1

        // Wait for worker 1 to finish id 1 so its queue has room.
        let deadline = Instant::now() + Duration::from_secs(5);
        while svc.entry(short).unwrap().class.is_none() {
            assert!(Instant::now() < deadline, "short session never finished");
            thread::sleep(Duration::from_millis(2));
        }
        let parked = svc.submit(sleepy(2, 0)); // id 2 → shard 0, fills queue 0
        assert!(parked.queued());
        let stolen = svc.submit(sleepy(2, 0)); // id 3 → shard 1 → queue 1
        assert!(stolen.queued());
        // Let worker 1 drain id 3 so queue 1 has a free slot again.
        while svc.entry(stolen.id()).unwrap().class.is_none() {
            assert!(Instant::now() < deadline, "queue-1 session never finished");
            thread::sleep(Duration::from_millis(2));
        }
        let stolen2 = svc.submit(sleepy(2, 0)); // id 4 → shard 0: queue 0 full → steal
        assert!(
            stolen2.queued(),
            "submission with a full pinned queue must steal, not shed"
        );
        assert!(svc.wait_idle(Duration::from_secs(10)));
        for id in [long, parked.id(), stolen.id(), stolen2.id()] {
            assert_eq!(svc.entry(id).unwrap().class, Some(TerminalClass::Accepted));
        }
        assert_eq!(svc.stats().submitted, 5);
        assert!(svc.shutdown(Duration::from_secs(5)).clean());
    }
}
