//! The session registry: one entry per submitted session, with an
//! explicit lifecycle state machine.
//!
//! Every session moves through
//!
//! ```text
//! Gathering ──► Running ──► Completed   (Accepted | Rejected)
//!     │            │   ╲
//!     │            │    ► Aborted      (Exhausted | DeadlineExceeded |
//!     │            ▼              TooFewSurvivors | Drained)
//!     │        Draining ──► Completed | Aborted
//!     └──► Aborted (Shed | Drained)
//! ```
//!
//! and *only* through those edges: [`SessionRegistry::transition`]
//! rejects every other move and counts it, so a chaos soak can assert
//! that no session ever took an illegal shortcut. Terminal entries stay
//! in the registry (with their per-attempt records) until explicitly
//! evicted — the leak check is "every entry is terminal", not "the map
//! is empty".

use super::session::AttemptRecord;
use crate::observe::TrafficLog;
use std::collections::BTreeMap;
use std::time::Instant;

/// Registry-unique session identifier.
pub type SessionId = u64;

/// Lifecycle state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted and queued; no worker has picked it up yet.
    Gathering,
    /// A worker is executing attempts.
    Running,
    /// Still executing, but the service is shutting down: the current
    /// attempt finishes, no further re-formation retries are scheduled.
    Draining,
    /// Terminal: the protocol ran to completion (successfully or as an
    /// ordinary failure — both are completions, not aborts).
    Completed,
    /// Terminal: the session was turned away or gave up.
    Aborted,
}

impl SessionState {
    /// Is this a terminal state?
    pub fn terminal(self) -> bool {
        matches!(self, SessionState::Completed | SessionState::Aborted)
    }
}

/// Why a session reached its terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminalClass {
    /// Completed with the job reporting success (full or partial
    /// handshake, per the job's policy).
    Accepted,
    /// Completed as an ordinary protocol failure (e.g. membership
    /// mismatch) — a completion, not an abort.
    Rejected,
    /// Turned away by admission control; a decoy traffic shape was
    /// emitted so outsiders cannot tell shedding from a served session.
    Shed,
    /// Aborted: the attempt/re-formation budget ran out.
    Exhausted,
    /// Aborted: the per-session deadline passed.
    DeadlineExceeded,
    /// Aborted: fewer than two live slots remained, so no re-formed
    /// session is possible (a handshake needs `m ≥ 2`).
    TooFewSurvivors,
    /// Aborted because the service shut down before (or while) the
    /// session could finish.
    Drained,
}

impl TerminalClass {
    /// The terminal [`SessionState`] this class belongs to.
    pub fn state(self) -> SessionState {
        match self {
            TerminalClass::Accepted | TerminalClass::Rejected => SessionState::Completed,
            _ => SessionState::Aborted,
        }
    }
}

impl std::fmt::Display for TerminalClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TerminalClass::Accepted => "accepted",
            TerminalClass::Rejected => "rejected",
            TerminalClass::Shed => "shed",
            TerminalClass::Exhausted => "exhausted",
            TerminalClass::DeadlineExceeded => "deadline-exceeded",
            TerminalClass::TooFewSurvivors => "too-few-survivors",
            TerminalClass::Drained => "drained",
        };
        write!(f, "{s}")
    }
}

/// Error from an attempted registry operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// The session id is not in the registry.
    UnknownSession,
    /// The requested lifecycle edge does not exist.
    IllegalTransition {
        /// State the session was in.
        from: SessionState,
        /// State the caller asked for.
        to: SessionState,
    },
    /// A terminal state was requested without a class, or a class whose
    /// terminal state disagrees with the requested state.
    ClassMismatch,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownSession => write!(f, "unknown session id"),
            RegistryError::IllegalTransition { from, to } => {
                write!(f, "illegal lifecycle transition {from:?} -> {to:?}")
            }
            RegistryError::ClassMismatch => write!(f, "terminal class/state mismatch"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One registry entry: lifecycle, deadline, and the full attempt
/// history (roster, verdict, liveness, traffic) of a session.
#[derive(Debug, Clone)]
pub struct SessionEntry {
    /// Registry-unique id.
    pub id: SessionId,
    /// Current lifecycle state.
    pub state: SessionState,
    /// Terminal classification, set exactly when `state` is terminal.
    pub class: Option<TerminalClass>,
    /// Size of the originally requested roster.
    pub roster_len: usize,
    /// Per-attempt records, in attempt order.
    pub attempts: Vec<AttemptRecord>,
    /// How many times the roster was re-formed to the survivor set.
    pub reformations: u32,
    /// Decoy traffic emitted if this session was shed (admission
    /// control): shaped like an ordinary session so shedding is
    /// unobservable to outsiders.
    pub decoy_traffic: Option<TrafficLog>,
    /// When the session was admitted.
    pub queued_at: Instant,
    /// When a worker first picked it up.
    pub started_at: Option<Instant>,
    /// When it reached a terminal state.
    pub finished_at: Option<Instant>,
    /// Absolute per-session deadline.
    pub deadline: Instant,
}

impl SessionEntry {
    /// Queue + execution latency, if the session already terminated.
    pub fn latency(&self) -> Option<std::time::Duration> {
        self.finished_at.map(|f| f.duration_since(self.queued_at))
    }
}

/// Aggregate registry counters (derived, cheap to snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Sessions ever admitted (including shed ones).
    pub submitted: u64,
    /// Entries not yet in a terminal state.
    pub active: u64,
    /// Entries in [`SessionState::Completed`].
    pub completed: u64,
    /// Entries in [`SessionState::Aborted`] (including shed).
    pub aborted: u64,
    /// Entries classified [`TerminalClass::Shed`].
    pub shed: u64,
    /// Total attempts recorded across all sessions.
    pub attempts: u64,
    /// Total survivor re-formations across all sessions.
    pub reformations: u64,
    /// Illegal lifecycle transitions that were requested (and refused).
    pub illegal_transitions: u64,
    /// Messages lost to backpressure across every recorded attempt
    /// (bounded-queue sheds in the hub, outbox sheds at the TCP relay).
    pub backpressure_dropped: u64,
}

impl RegistryStats {
    /// Adds another registry's counters into this one — every field is
    /// additive, so the sharded service's aggregate view is the
    /// field-wise sum of its per-shard registries.
    pub fn absorb(&mut self, other: &RegistryStats) {
        self.submitted += other.submitted;
        self.active += other.active;
        self.completed += other.completed;
        self.aborted += other.aborted;
        self.shed += other.shed;
        self.attempts += other.attempts;
        self.reformations += other.reformations;
        self.illegal_transitions += other.illegal_transitions;
        self.backpressure_dropped += other.backpressure_dropped;
    }
}

/// The session registry (interior mutability is the caller's concern;
/// the service wraps it in a mutex — one mutex per shard when sharded).
#[derive(Debug, Default)]
pub struct SessionRegistry {
    entries: BTreeMap<SessionId, SessionEntry>,
    next_id: SessionId,
    /// Sessions ever admitted here. Distinct from `entries.len()`:
    /// eviction removes entries but admission history stands.
    admitted: u64,
    illegal_transitions: u64,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Admits a new session in [`SessionState::Gathering`], returning
    /// its id.
    pub fn admit(&mut self, roster_len: usize, deadline: Instant) -> SessionId {
        let id = self.next_id;
        self.admit_with_id(id, roster_len, deadline);
        id
    }

    /// Admits a new session under a caller-chosen id — the sharded
    /// service allocates ids from one global counter and pins each
    /// session to a shard registry by id, so the id arrives from
    /// outside. Self-allocation stays collision-free afterwards.
    pub fn admit_with_id(&mut self, id: SessionId, roster_len: usize, deadline: Instant) {
        self.next_id = self.next_id.max(id + 1);
        self.admitted += 1;
        let now = Instant::now();
        self.entries.insert(
            id,
            SessionEntry {
                id,
                state: SessionState::Gathering,
                class: None,
                roster_len,
                attempts: Vec::new(),
                reformations: 0,
                decoy_traffic: None,
                queued_at: now,
                started_at: None,
                finished_at: None,
                deadline,
            },
        );
    }

    /// Moves a session along a lifecycle edge. Terminal targets require
    /// a [`TerminalClass`] whose own terminal state matches; illegal
    /// edges are refused and counted.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownSession`], [`RegistryError::ClassMismatch`]
    /// or [`RegistryError::IllegalTransition`].
    pub fn transition(
        &mut self,
        id: SessionId,
        to: SessionState,
        class: Option<TerminalClass>,
    ) -> Result<(), RegistryError> {
        let entry = match self.entries.get_mut(&id) {
            Some(e) => e,
            None => return Err(RegistryError::UnknownSession),
        };
        if to.terminal() != class.is_some() || class.is_some_and(|c| c.state() != to) {
            return Err(RegistryError::ClassMismatch);
        }
        let legal = matches!(
            (entry.state, to),
            (SessionState::Gathering, SessionState::Running)
                | (SessionState::Gathering, SessionState::Aborted)
                | (SessionState::Running, SessionState::Draining)
                | (SessionState::Running, SessionState::Completed)
                | (SessionState::Running, SessionState::Aborted)
                | (SessionState::Draining, SessionState::Completed)
                | (SessionState::Draining, SessionState::Aborted)
        );
        if !legal {
            self.illegal_transitions += 1;
            return Err(RegistryError::IllegalTransition {
                from: entry.state,
                to,
            });
        }
        let now = Instant::now();
        if to == SessionState::Running {
            entry.started_at = Some(now);
        }
        if to.terminal() {
            entry.finished_at = Some(now);
            entry.class = class;
        }
        entry.state = to;
        Ok(())
    }

    /// Appends an attempt record to a session's history.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownSession`].
    pub fn record_attempt(
        &mut self,
        id: SessionId,
        record: AttemptRecord,
    ) -> Result<(), RegistryError> {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.attempts.push(record);
                Ok(())
            }
            None => Err(RegistryError::UnknownSession),
        }
    }

    /// Counts one survivor re-formation on a session.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownSession`].
    pub fn note_reformation(&mut self, id: SessionId) -> Result<(), RegistryError> {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.reformations += 1;
                Ok(())
            }
            None => Err(RegistryError::UnknownSession),
        }
    }

    /// Attaches the decoy traffic emitted for a shed session.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownSession`].
    pub fn set_decoy_traffic(
        &mut self,
        id: SessionId,
        traffic: TrafficLog,
    ) -> Result<(), RegistryError> {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.decoy_traffic = Some(traffic);
                Ok(())
            }
            None => Err(RegistryError::UnknownSession),
        }
    }

    /// A clone of one entry.
    pub fn entry(&self, id: SessionId) -> Option<SessionEntry> {
        self.entries.get(&id).cloned()
    }

    /// The per-session deadline, if the session exists.
    pub fn deadline(&self, id: SessionId) -> Option<Instant> {
        self.entries.get(&id).map(|e| e.deadline)
    }

    /// Clones every entry, in id order.
    pub fn snapshot(&self) -> Vec<SessionEntry> {
        self.entries.values().cloned().collect()
    }

    /// Ids of every non-terminal session — the leak check: after a full
    /// drain this must be empty.
    pub fn leaks(&self) -> Vec<SessionId> {
        self.entries
            .values()
            .filter(|e| !e.state.terminal())
            .map(|e| e.id)
            .collect()
    }

    /// Number of non-terminal sessions.
    pub fn active(&self) -> usize {
        self.entries
            .values()
            .filter(|e| !e.state.terminal())
            .count()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RegistryStats {
        let mut s = RegistryStats {
            submitted: self.admitted,
            illegal_transitions: self.illegal_transitions,
            ..RegistryStats::default()
        };
        for e in self.entries.values() {
            match e.state {
                SessionState::Completed => s.completed += 1,
                SessionState::Aborted => s.aborted += 1,
                _ => s.active += 1,
            }
            if e.class == Some(TerminalClass::Shed) {
                s.shed += 1;
            }
            s.attempts += e.attempts.len() as u64;
            s.reformations += u64::from(e.reformations);
            s.backpressure_dropped += e
                .attempts
                .iter()
                .map(|a| a.traffic.faults().backpressure_dropped)
                .sum::<u64>();
        }
        s
    }

    /// Removes terminal entries (a long-lived deployment would do this
    /// periodically; tests keep them for inspection). Returns how many
    /// were evicted.
    pub fn evict_terminal(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| !e.state.terminal());
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn soon() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut r = SessionRegistry::new();
        let id = r.admit(3, soon());
        assert_eq!(r.active(), 1);
        r.transition(id, SessionState::Running, None).unwrap();
        r.transition(id, SessionState::Completed, Some(TerminalClass::Accepted))
            .unwrap();
        assert_eq!(r.active(), 0);
        assert!(r.leaks().is_empty());
        let e = r.entry(id).unwrap();
        assert_eq!(e.class, Some(TerminalClass::Accepted));
        assert!(e.latency().is_some());
    }

    #[test]
    fn illegal_edges_are_refused_and_counted() {
        let mut r = SessionRegistry::new();
        let id = r.admit(2, soon());
        // Gathering -> Completed is not an edge.
        let err = r
            .transition(id, SessionState::Completed, Some(TerminalClass::Accepted))
            .unwrap_err();
        assert!(matches!(err, RegistryError::IllegalTransition { .. }));
        // Terminal without class / class mismatch.
        assert_eq!(
            r.transition(id, SessionState::Aborted, None),
            Err(RegistryError::ClassMismatch)
        );
        assert_eq!(
            r.transition(id, SessionState::Aborted, Some(TerminalClass::Accepted)),
            Err(RegistryError::ClassMismatch)
        );
        // Terminal is sticky.
        r.transition(id, SessionState::Aborted, Some(TerminalClass::Shed))
            .unwrap();
        assert!(r.transition(id, SessionState::Running, None).is_err());
        assert_eq!(r.stats().illegal_transitions, 2);
        assert_eq!(r.stats().shed, 1);
    }

    #[test]
    fn drain_edges() {
        let mut r = SessionRegistry::new();
        let id = r.admit(4, soon());
        r.transition(id, SessionState::Running, None).unwrap();
        r.transition(id, SessionState::Draining, None).unwrap();
        r.transition(id, SessionState::Aborted, Some(TerminalClass::Drained))
            .unwrap();
        assert!(r.leaks().is_empty());
    }

    #[test]
    fn eviction_keeps_live_sessions() {
        let mut r = SessionRegistry::new();
        let a = r.admit(2, soon());
        let b = r.admit(2, soon());
        r.transition(a, SessionState::Running, None).unwrap();
        r.transition(a, SessionState::Completed, Some(TerminalClass::Rejected))
            .unwrap();
        assert_eq!(r.evict_terminal(), 1);
        assert!(r.entry(a).is_none());
        assert!(r.entry(b).is_some());
        assert_eq!(r.stats().submitted, 2);
    }
}
