//! Per-session execution: the attempt loop, slot-liveness analysis and
//! survivor re-formation.
//!
//! A [`SessionJob`] is one logical handshake session, abstracted from
//! the protocol it runs: the service hands it an [`AttemptContext`]
//! (attempt number, current roster, derived seed) and gets back an
//! [`AttemptOutcome`] — a verdict plus the attempt's [`TrafficLog`].
//! Everything the service decides — who is still alive, whether to
//! re-form, when to give up — is driven by that log's counters, exactly
//! the information a deployment's traffic accounting would have.
//!
//! **Survivor re-formation** leans on the §7 partially-successful-
//! handshake semantics: survivors of the same group still succeed among
//! themselves, so when an attempt aborts, the service re-forms the
//! session from the slots the traffic log shows to be live and retries
//! under jittered exponential backoff, a bounded attempt count and the
//! per-session deadline. Fewer than two live slots means no session is
//! possible and the retry loop stops immediately (no retry storm).

use super::registry::{RegistryError, SessionId, SessionRegistry, SessionState, TerminalClass};
use super::shed::backoff_delay;
use crate::clock::SharedClock;
use crate::observe::TrafficLog;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// What the service tells a job about the attempt it is asking for.
#[derive(Debug, Clone)]
pub struct AttemptContext {
    /// The registry id of the session.
    pub session_id: SessionId,
    /// 0-based attempt number (attempt 0 is the original roster).
    pub attempt: u32,
    /// Original-roster indices participating in this attempt; the
    /// attempt's wire slots are `0..roster.len()` in this order.
    pub roster: Vec<usize>,
    /// Deterministic per-attempt seed (fresh randomness every retry, so
    /// a re-formed session never reuses nonces or transcripts).
    pub seed: u64,
}

/// A job's summary judgement of one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptVerdict {
    /// The protocol completed and the job's success policy is met.
    Success,
    /// The protocol completed as an ordinary failure (e.g. membership
    /// mismatch). Terminal: retrying would not change the outcome.
    Failure,
    /// Some slot aborted (faults, budget exhaustion): the service may
    /// re-form among survivors and retry.
    Abort,
}

/// Everything one attempt produced.
#[derive(Debug, Clone)]
pub struct AttemptOutcome {
    /// The job's verdict.
    pub verdict: AttemptVerdict,
    /// The attempt's eavesdropper log (liveness analysis input).
    pub traffic: TrafficLog,
}

/// One logical session, abstracted from its protocol. Implementations
/// run one attempt per call; the service owns scheduling, liveness,
/// re-formation and classification.
pub trait SessionJob: Send {
    /// Size of the original roster (wire slots of attempt 0).
    fn roster_len(&self) -> usize;
    /// Runs one attempt among `ctx.roster` and reports what happened.
    fn run_attempt(&mut self, ctx: &AttemptContext) -> AttemptOutcome;
}

/// A recorded attempt, kept in the session's registry entry.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// 0-based attempt number.
    pub attempt: u32,
    /// Original-roster indices that participated.
    pub roster: Vec<usize>,
    /// The job's verdict.
    pub verdict: AttemptVerdict,
    /// Original-roster indices the traffic log showed to be live.
    pub live_slots: Vec<usize>,
    /// The attempt's traffic log.
    pub traffic: TrafficLog,
}

/// A session submission: the job plus its service-level budget.
pub struct SessionSpec {
    /// The job to run.
    pub job: Box<dyn SessionJob>,
    /// Attempts allowed (including the first); at least 1 is assumed.
    pub max_attempts: u32,
    /// Per-session deadline, measured from admission.
    pub deadline: Duration,
}

impl SessionSpec {
    /// A spec with the service defaults filled in at submission time.
    pub fn new(job: Box<dyn SessionJob>) -> SessionSpec {
        SessionSpec {
            job,
            max_attempts: 4,
            deadline: Duration::from_secs(30),
        }
    }

    /// Overrides the attempt budget.
    pub fn with_max_attempts(mut self, n: u32) -> SessionSpec {
        self.max_attempts = n.max(1);
        self
    }

    /// Overrides the per-session deadline.
    pub fn with_deadline(mut self, d: Duration) -> SessionSpec {
        self.deadline = d;
        self
    }
}

/// Liveness analysis: which roster members does this attempt's traffic
/// show to be alive?
///
/// A slot is **live** iff it transmitted as many messages as the most
/// talkative slot of the attempt: the session protocols are uniform
/// (every live party broadcasts once per exchange, aborting parties
/// included — they send decoys), so a lower count is exactly the
/// signature of a crash-stopped or silenced sender. A partition, by
/// contrast, leaves all counts equal (everyone kept transmitting), so
/// every slot stays live and a retry keeps the full roster — which is
/// the right call, since partitions heal.
///
/// `roster` maps the attempt's wire slots back to original-roster
/// indices; the returned vector contains original indices, sorted.
pub fn live_slots(roster: &[usize], traffic: &TrafficLog) -> Vec<usize> {
    let counts: Vec<usize> = (0..roster.len())
        .map(|s| traffic.messages_from(s))
        .collect();
    let max = counts.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return Vec::new();
    }
    roster
        .iter()
        .enumerate()
        .filter(|(s, _)| counts[*s] == max)
        .map(|(_, orig)| *orig)
        .collect()
}

/// Service-side knobs the attempt loop needs (a copy of the relevant
/// [`super::ServiceConfig`] fields, so this module stays decoupled).
#[derive(Clone)]
pub(crate) struct DriveConfig {
    pub(crate) backoff_base: Duration,
    pub(crate) backoff_cap: Duration,
    pub(crate) seed: u64,
    /// Time source of the backoff sleeps: wall time in production, a
    /// virtual clock under the discrete-event simulator so backoff
    /// schedules cost no real time.
    pub(crate) clock: SharedClock,
}

/// Outcome summary handed back to the worker for shape learning.
pub(crate) struct DriveSummary {
    /// Traffic of the first attempt, if it completed fault-free (the
    /// template admission control imitates when shedding).
    pub(crate) clean_traffic: Option<TrafficLog>,
}

fn classify(
    registry: &Mutex<SessionRegistry>,
    id: SessionId,
    class: TerminalClass,
) -> Result<(), RegistryError> {
    registry.lock().transition(id, class.state(), Some(class))
}

/// Runs one session to a terminal state: the attempt loop with deadline
/// checks, liveness analysis, survivor re-formation and jittered
/// backoff. Every path out of this function leaves the registry entry
/// terminal; registry errors (which cannot occur while the service owns
/// the entry exclusively) surface as the entry simply keeping its last
/// legal state, never as a panic.
pub(crate) fn drive(
    registry: &Mutex<SessionRegistry>,
    draining: &AtomicBool,
    config: DriveConfig,
    id: SessionId,
    mut spec: SessionSpec,
) -> DriveSummary {
    let mut summary = DriveSummary {
        clean_traffic: None,
    };
    if registry
        .lock()
        .transition(id, SessionState::Running, None)
        .is_err()
    {
        // The session was classified before a worker reached it (e.g. a
        // drain swept the queue); nothing to run.
        return summary;
    }
    let deadline = registry
        .lock()
        .deadline(id)
        .unwrap_or_else(|| Instant::now() + spec.deadline);
    let mut roster: Vec<usize> = (0..spec.job.roster_len()).collect();
    let mut attempt: u32 = 0;
    loop {
        if Instant::now() >= deadline {
            let _ = classify(registry, id, TerminalClass::DeadlineExceeded);
            return summary;
        }
        let ctx = AttemptContext {
            session_id: id,
            attempt,
            roster: roster.clone(),
            seed: config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(id)
                .wrapping_add(u64::from(attempt) << 32),
        };
        let outcome = spec.job.run_attempt(&ctx);
        let live = live_slots(&roster, &outcome.traffic);
        if attempt == 0 && outcome.traffic.faults().total() == 0 {
            summary.clean_traffic = Some(outcome.traffic.clone());
        }
        let verdict = outcome.verdict;
        let _ = registry.lock().record_attempt(
            id,
            AttemptRecord {
                attempt,
                roster: roster.clone(),
                verdict,
                live_slots: live.clone(),
                traffic: outcome.traffic,
            },
        );
        match verdict {
            AttemptVerdict::Success => {
                let _ = classify(registry, id, TerminalClass::Accepted);
                return summary;
            }
            AttemptVerdict::Failure => {
                let _ = classify(registry, id, TerminalClass::Rejected);
                return summary;
            }
            AttemptVerdict::Abort => {
                if draining.load(Ordering::SeqCst) {
                    let _ = classify(registry, id, TerminalClass::Drained);
                    return summary;
                }
                if live.len() < 2 {
                    let _ = classify(registry, id, TerminalClass::TooFewSurvivors);
                    return summary;
                }
                if attempt + 1 >= spec.max_attempts {
                    let _ = classify(registry, id, TerminalClass::Exhausted);
                    return summary;
                }
                if live.len() < roster.len() {
                    // Survivor re-formation: retry among the live slots.
                    let _ = registry.lock().note_reformation(id);
                    roster = live;
                }
                attempt += 1;
                // Jittered exponential backoff, clipped to what the
                // deadline leaves and polled against drain so shutdown
                // is never stuck behind a sleep. The wait runs on the
                // configured clock: a virtual clock advances instead of
                // blocking, so simulated retries are free.
                let mut wait =
                    backoff_delay(attempt, config.backoff_base, config.backoff_cap, ctx.seed);
                wait = wait.min(deadline.saturating_duration_since(Instant::now()));
                let slept_until = config.clock.now() + wait;
                while config.clock.now() < slept_until && !draining.load(Ordering::SeqCst) {
                    config.clock.sleep(Duration::from_millis(1).min(wait));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with_counts(counts: &[usize]) -> TrafficLog {
        let mut log = TrafficLog::new();
        for (slot, n) in counts.iter().enumerate() {
            for i in 0..*n {
                log.record(&format!("r{i}"), slot, b"x");
            }
        }
        log
    }

    #[test]
    fn liveness_flags_quieter_slots() {
        let roster = vec![0, 1, 2, 3];
        let log = log_with_counts(&[4, 4, 2, 4]);
        assert_eq!(live_slots(&roster, &log), vec![0, 1, 3]);
    }

    #[test]
    fn liveness_keeps_everyone_when_uniform() {
        let roster = vec![5, 7, 9];
        let log = log_with_counts(&[3, 3, 3]);
        assert_eq!(live_slots(&roster, &log), vec![5, 7, 9]);
    }

    #[test]
    fn liveness_of_silence_is_empty() {
        assert!(live_slots(&[0, 1], &TrafficLog::new()).is_empty());
    }

    #[test]
    fn liveness_maps_to_original_indices() {
        // A re-formed attempt among original slots {0, 2, 3}: wire slot 1
        // (original 2) went quiet.
        let roster = vec![0, 2, 3];
        let log = log_with_counts(&[2, 1, 2]);
        assert_eq!(live_slots(&roster, &log), vec![0, 3]);
    }

    struct ScriptedJob {
        len: usize,
        verdicts: Vec<AttemptVerdict>,
        counts: Vec<Vec<usize>>,
        seen: Vec<AttemptContext>,
    }

    impl SessionJob for ScriptedJob {
        fn roster_len(&self) -> usize {
            self.len
        }
        fn run_attempt(&mut self, ctx: &AttemptContext) -> AttemptOutcome {
            let i = ctx.attempt as usize;
            self.seen.push(ctx.clone());
            AttemptOutcome {
                verdict: self.verdicts[i],
                traffic: log_with_counts(&self.counts[i]),
            }
        }
    }

    fn run_scripted(
        verdicts: Vec<AttemptVerdict>,
        counts: Vec<Vec<usize>>,
        max_attempts: u32,
    ) -> (SessionRegistry, SessionId) {
        let len = counts[0].len();
        let registry = Mutex::new(SessionRegistry::new());
        let id = registry
            .lock()
            .admit(len, Instant::now() + Duration::from_secs(10));
        let job = ScriptedJob {
            len,
            verdicts,
            counts,
            seen: Vec::new(),
        };
        let spec = SessionSpec::new(Box::new(job)).with_max_attempts(max_attempts);
        let draining = AtomicBool::new(false);
        let cfg = DriveConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            seed: 7,
            clock: crate::clock::wall(),
        };
        drive(&registry, &draining, cfg, id, spec);
        (registry.into_inner(), id)
    }

    #[test]
    fn abort_then_reformed_success() {
        let (reg, id) = run_scripted(
            vec![AttemptVerdict::Abort, AttemptVerdict::Success],
            vec![vec![3, 3, 1], vec![2, 2]],
            4,
        );
        let e = reg.entry(id).unwrap();
        assert_eq!(e.state, SessionState::Completed);
        assert_eq!(e.class, Some(TerminalClass::Accepted));
        assert_eq!(e.reformations, 1);
        assert_eq!(e.attempts.len(), 2);
        assert_eq!(e.attempts[1].roster, vec![0, 1], "re-formed to survivors");
    }

    #[test]
    fn lone_survivor_stops_immediately() {
        let (reg, id) = run_scripted(
            vec![AttemptVerdict::Abort],
            vec![vec![1, 4, 1]], // only slot 1 fully live
            8,
        );
        let e = reg.entry(id).unwrap();
        assert_eq!(e.class, Some(TerminalClass::TooFewSurvivors));
        assert_eq!(e.attempts.len(), 1, "no retry storm");
    }

    #[test]
    fn attempt_budget_bounds_retries() {
        let (reg, id) = run_scripted(
            vec![AttemptVerdict::Abort, AttemptVerdict::Abort],
            vec![vec![2, 2, 2], vec![2, 2, 2]], // uniform: partition-like
            2,
        );
        let e = reg.entry(id).unwrap();
        assert_eq!(e.class, Some(TerminalClass::Exhausted));
        assert_eq!(e.attempts.len(), 2);
        assert_eq!(e.reformations, 0, "uniform liveness keeps the roster");
    }

    #[test]
    fn ordinary_failure_is_a_completion() {
        let (reg, id) = run_scripted(vec![AttemptVerdict::Failure], vec![vec![2, 2]], 4);
        let e = reg.entry(id).unwrap();
        assert_eq!(e.state, SessionState::Completed);
        assert_eq!(e.class, Some(TerminalClass::Rejected));
    }
}
