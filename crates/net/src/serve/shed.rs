//! Load shedding that outsiders cannot observe, plus retry backoff.
//!
//! When the service is saturated, admission control must refuse work —
//! but a refusal that *looks different on the wire* from a failed
//! handshake would tell an eavesdropper the service is under load, and
//! would tell a prober which submissions even reached a roster. So a
//! shed session is answered with **decoy traffic**: a synthetic
//! [`TrafficLog`] with the same rounds, slots and payload sizes as a
//! real handshake of that roster size, filled with fresh pseudorandom
//! bytes. Shape-wise (the eavesdropper's whole view, see
//! [`TrafficShape`]) a shed session and a failed session are identical;
//! only the registry — an insider — knows the difference.
//!
//! The [`ShapeBook`] learns wire shapes from real fault-free attempts as
//! they complete, one template per roster size. Until a template exists
//! the service cannot shed indistinguishably, so early submissions are
//! queued rather than shed (the queue is empty at startup anyway).

use crate::observe::{TrafficLog, TrafficShape};
use std::collections::BTreeMap;
use std::time::Duration;

/// A learned wire shape for one roster size: the template decoys copy.
#[derive(Debug, Clone)]
pub struct DecoyShape {
    roster_len: usize,
    shape: TrafficShape,
}

impl DecoyShape {
    /// Captures the shape of a real session's traffic.
    pub fn from_traffic(roster_len: usize, traffic: &TrafficLog) -> DecoyShape {
        DecoyShape {
            roster_len,
            shape: traffic.shape(),
        }
    }

    /// The roster size this template imitates.
    pub fn roster_len(&self) -> usize {
        self.roster_len
    }

    /// Synthesizes a decoy log: the template's shape, fresh payload
    /// bits. `seed` keeps the decoy deterministic per session.
    pub fn synthesize(&self, seed: u64) -> TrafficLog {
        let mut log = TrafficLog::new();
        let mut state = seed ^ 0xdecc_0f17_5eed_0bad;
        for (round, slot, len) in &self.shape.entries {
            let mut payload = Vec::with_capacity(*len);
            while payload.len() < *len {
                state = splitmix64(state);
                payload.extend_from_slice(&state.to_le_bytes());
            }
            payload.truncate(*len);
            log.record(round, *slot, &payload);
        }
        log
    }
}

/// Per-roster-size shape templates, learned from live traffic.
#[derive(Debug, Default)]
pub struct ShapeBook {
    shapes: BTreeMap<usize, DecoyShape>,
}

impl ShapeBook {
    /// An empty book.
    pub fn new() -> ShapeBook {
        ShapeBook::default()
    }

    /// Learns from a **fault-free** attempt (faulty traffic would bake
    /// an injected anomaly into every future decoy). First template per
    /// roster size wins; shapes are deterministic per size, so later
    /// sessions would teach the same thing.
    pub fn learn(&mut self, roster_len: usize, traffic: &TrafficLog) {
        if traffic.faults().total() != 0 {
            return;
        }
        self.shapes
            .entry(roster_len)
            .or_insert_with(|| DecoyShape::from_traffic(roster_len, traffic));
    }

    /// The template for a roster size, if one has been learned.
    pub fn template(&self, roster_len: usize) -> Option<&DecoyShape> {
        self.shapes.get(&roster_len)
    }

    /// Roster sizes with templates.
    pub fn known_sizes(&self) -> Vec<usize> {
        self.shapes.keys().copied().collect()
    }
}

/// Jittered exponential backoff: `base * 2^(attempt-1)` clipped to
/// `cap`, then jittered to 50–100 % of that value so simultaneous
/// re-formations don't retry in lockstep. Deterministic in `seed`.
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration, seed: u64) -> Duration {
    let shift = attempt.saturating_sub(1).min(16);
    let nominal = base.saturating_mul(1u32 << shift).min(cap);
    let jitter = splitmix64(seed.wrapping_add(u64::from(attempt)));
    // Map jitter into [1/2, 1] of nominal.
    let half = nominal / 2;
    half + Duration::from_nanos(jitter % (half.as_nanos().max(1) as u64 + 1))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TrafficLog {
        let mut log = TrafficLog::new();
        log.record("p1", 0, b"aaaa");
        log.record("p1", 1, b"bbbb");
        log.record("p2", 0, b"cc");
        log.record("p2", 1, b"dd");
        log
    }

    #[test]
    fn decoy_matches_shape_not_bits() {
        let real = sample_log();
        let decoy = DecoyShape::from_traffic(2, &real).synthesize(7);
        assert_eq!(decoy.shape(), real.shape());
        assert_ne!(decoy, real, "payload bits must be fresh");
    }

    #[test]
    fn decoys_differ_across_sessions() {
        let real = sample_log();
        let shape = DecoyShape::from_traffic(2, &real);
        assert_ne!(shape.synthesize(1), shape.synthesize(2));
        assert_eq!(shape.synthesize(1).shape(), shape.synthesize(2).shape());
    }

    #[test]
    fn book_refuses_faulty_teachers() {
        let mut book = ShapeBook::new();
        let mut faulty = sample_log();
        let counters = crate::observe::FaultCounters {
            dropped: 1,
            ..Default::default()
        };
        faulty.set_faults(counters);
        book.learn(2, &faulty);
        assert!(book.template(2).is_none());
        book.learn(2, &sample_log());
        assert!(book.template(2).is_some());
        assert_eq!(book.known_sizes(), vec![2]);
    }

    #[test]
    fn backoff_grows_caps_and_jitters() {
        let base = Duration::from_millis(4);
        let cap = Duration::from_millis(20);
        let d1 = backoff_delay(1, base, cap, 9);
        let d4 = backoff_delay(4, base, cap, 9);
        assert!(d1 >= base / 2 && d1 <= base, "{d1:?}");
        assert!(d4 >= cap / 2 && d4 <= cap, "{d4:?}");
        // Different seeds → (almost surely) different jitter.
        assert_ne!(
            backoff_delay(3, base, cap, 1),
            backoff_delay(3, base, cap, 2)
        );
    }
}
