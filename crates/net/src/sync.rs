//! The round-based anonymous broadcast medium.
//!
//! Protocol drivers hand a full round of per-slot broadcast payloads to
//! [`BroadcastNet::exchange`]; the medium logs them for the eavesdropper,
//! lets an optional man-in-the-middle rewrite what each receiver sees, and
//! returns every receiver's inbox in policy order. Delivery is guaranteed
//! (the paper's asynchronous model assumes guaranteed delivery; Fig. 5)
//! *unless* a [`FaultPlan`] is installed, in which case deliveries may be
//! dropped, duplicated, corrupted, truncated, delayed or partitioned, and
//! crash-stopped senders go silent — see [`crate::fault`].

use crate::fault::FaultPlan;
use crate::observe::TrafficLog;
use crate::{DeliveryPolicy, Medium, NetError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A received message: the sender's anonymous slot and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received {
    /// Sender slot.
    pub from_slot: usize,
    /// Payload bytes (possibly rewritten by the interceptor).
    pub payload: Vec<u8>,
}

/// Context handed to the man-in-the-middle hook for each (sender,
/// receiver) delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterceptCtx<'a> {
    /// Round label.
    pub round: &'a str,
    /// Sender slot.
    pub from_slot: usize,
    /// Receiver slot.
    pub to_slot: usize,
}

/// The interception hook type: may rewrite the payload a specific receiver
/// sees (active attack). Delivery itself cannot be suppressed.
pub type Interceptor<'a> = Box<dyn FnMut(InterceptCtx<'_>, &mut Vec<u8>) + 'a>;

/// A deterministic round-based broadcast medium between `slots` anonymous
/// parties.
pub struct BroadcastNet<'a> {
    slots: usize,
    policy: DeliveryPolicy,
    log: TrafficLog,
    interceptor: Option<Interceptor<'a>>,
    fault_plan: Option<FaultPlan>,
    reorder_rng: Option<StdRng>,
}

impl std::fmt::Debug for BroadcastNet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BroadcastNet {{ slots: {}, policy: {:?}, observed: {} msgs }}",
            self.slots,
            self.policy,
            self.log.len()
        )
    }
}

impl<'a> BroadcastNet<'a> {
    /// Creates a medium connecting `slots` parties.
    pub fn new(slots: usize, policy: DeliveryPolicy) -> BroadcastNet<'a> {
        let reorder_rng = match policy {
            DeliveryPolicy::Synchronous => None,
            DeliveryPolicy::AdversarialReorder { seed } => Some(StdRng::seed_from_u64(seed)),
        };
        BroadcastNet {
            slots,
            policy,
            log: TrafficLog::new(),
            interceptor: None,
            fault_plan: None,
            reorder_rng,
        }
    }

    /// Installs a man-in-the-middle hook.
    pub fn set_interceptor(&mut self, interceptor: Interceptor<'a>) {
        self.interceptor = Some(interceptor);
    }

    /// Installs a fault schedule; delivery is no longer guaranteed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The installed fault schedule, if any (e.g. to query
    /// [`FaultPlan::crashed_slots`] or inspect counters mid-session).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Number of party slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The eavesdropper's log so far.
    pub fn traffic(&self) -> &TrafficLog {
        &self.log
    }

    /// Performs one broadcast round: `outgoing[i]` is slot `i`'s broadcast
    /// payload; the result's entry `i` is slot `i`'s inbox containing all
    /// `slots` messages (including its own echo, as on a radio medium) in
    /// delivery order.
    ///
    /// # Errors
    ///
    /// [`NetError::IncompleteRound`] unless exactly one payload per slot is
    /// supplied.
    pub fn exchange(
        &mut self,
        round: &str,
        outgoing: Vec<Vec<u8>>,
    ) -> Result<Vec<Vec<Received>>, NetError> {
        if outgoing.len() != self.slots {
            return Err(NetError::IncompleteRound);
        }
        // Advance the fault clock: release deliveries delayed until this
        // (retransmission) exchange and decide which senders are dead.
        let mut due = Vec::new();
        let mut silent = vec![false; self.slots];
        if let Some(plan) = self.fault_plan.as_mut() {
            due = plan.begin_exchange(round);
            for (slot, muted) in silent.iter_mut().enumerate() {
                *muted = plan.suppress_send(slot);
            }
        }
        // The eavesdropper logs what actually hit the wire: everything a
        // live sender broadcast (per-receiver faults happen downstream of
        // the observer), nothing from a crash-stopped sender.
        for (slot, payload) in outgoing.iter().enumerate() {
            if !silent[slot] {
                self.log.record(round, slot, payload);
            }
        }
        let mut inboxes = Vec::with_capacity(self.slots);
        for to_slot in 0..self.slots {
            let mut inbox: Vec<Received> = Vec::with_capacity(self.slots);
            for (from_slot, payload) in outgoing.iter().enumerate() {
                if silent[from_slot] {
                    continue;
                }
                let mut payload = payload.clone();
                if let Some(hook) = self.interceptor.as_mut() {
                    hook(
                        InterceptCtx {
                            round,
                            from_slot,
                            to_slot,
                        },
                        &mut payload,
                    );
                }
                match self.fault_plan.as_mut() {
                    Some(plan) => {
                        for copy in plan.deliver(round, from_slot, to_slot, payload) {
                            inbox.push(Received {
                                from_slot,
                                payload: copy,
                            });
                        }
                    }
                    None => inbox.push(Received { from_slot, payload }),
                }
            }
            for r in due.iter().filter(|r| r.to_slot == to_slot) {
                inbox.push(Received {
                    from_slot: r.from_slot,
                    payload: r.payload.clone(),
                });
            }
            if let Some(rng) = self.reorder_rng.as_mut() {
                // Fisher–Yates with the adversary's coins.
                for i in (1..inbox.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    inbox.swap(i, j);
                }
            }
            inboxes.push(inbox);
        }
        if let Some(plan) = self.fault_plan.as_ref() {
            self.log.set_faults(plan.counters().clone());
        }
        Ok(inboxes)
    }
}

impl Medium for BroadcastNet<'_> {
    fn slots(&self) -> usize {
        BroadcastNet::slots(self)
    }

    fn exchange(
        &mut self,
        round: &str,
        outgoing: Vec<Vec<u8>>,
    ) -> Result<Vec<Vec<Received>>, NetError> {
        BroadcastNet::exchange(self, round, outgoing)
    }

    fn traffic_snapshot(&self) -> TrafficLog {
        self.log.clone()
    }

    fn crashed_slots(&self) -> Vec<usize> {
        self.fault_plan
            .as_ref()
            .map_or_else(Vec::new, |p| p.crashed_slots(self.slots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; i + 1]).collect()
    }

    #[test]
    fn synchronous_delivery_in_slot_order() {
        let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
        let inboxes = net.exchange("r1", payloads(3)).unwrap();
        for inbox in &inboxes {
            let order: Vec<usize> = inbox.iter().map(|r| r.from_slot).collect();
            assert_eq!(order, vec![0, 1, 2]);
        }
        assert_eq!(net.traffic().len(), 3);
    }

    #[test]
    fn reordering_preserves_content() {
        let mut net = BroadcastNet::new(5, DeliveryPolicy::AdversarialReorder { seed: 7 });
        let inboxes = net.exchange("r1", payloads(5)).unwrap();
        let mut any_reordered = false;
        for inbox in &inboxes {
            assert_eq!(inbox.len(), 5, "guaranteed delivery");
            let mut slots: Vec<usize> = inbox.iter().map(|r| r.from_slot).collect();
            if slots != vec![0, 1, 2, 3, 4] {
                any_reordered = true;
            }
            slots.sort();
            assert_eq!(slots, vec![0, 1, 2, 3, 4], "nothing lost or duplicated");
        }
        assert!(any_reordered, "adversary should actually reorder");
    }

    #[test]
    fn incomplete_round_rejected() {
        let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
        assert_eq!(
            net.exchange("r1", payloads(2)).err(),
            Some(NetError::IncompleteRound)
        );
    }

    #[test]
    fn interceptor_rewrites_for_specific_receiver() {
        let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
        net.set_interceptor(Box::new(|ctx, payload| {
            if ctx.from_slot == 1 && ctx.to_slot == 0 {
                payload.clear();
                payload.extend_from_slice(b"evil");
            }
        }));
        let inboxes = net.exchange("r1", payloads(3)).unwrap();
        assert_eq!(inboxes[0][1].payload, b"evil");
        // Other receivers see the genuine payload.
        assert_eq!(inboxes[2][1].payload, vec![1u8, 1]);
    }

    #[test]
    fn dropped_delivery_vanishes_from_inbox_not_from_log() {
        use crate::fault::{FaultPlan, FaultRule};
        let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
        net.set_fault_plan(FaultPlan::new(1).with(FaultRule::drop().from(1).to(0)));
        let inboxes = net.exchange("r1", payloads(3)).unwrap();
        let senders: Vec<usize> = inboxes[0].iter().map(|r| r.from_slot).collect();
        assert_eq!(senders, vec![0, 2], "slot 0 lost slot 1's message");
        assert_eq!(inboxes[2].len(), 3, "other receivers unaffected");
        // The eavesdropper still saw the broadcast.
        assert_eq!(net.traffic().len(), 3);
        assert_eq!(net.traffic().faults().dropped, 1);
    }

    #[test]
    fn crashed_sender_disappears_from_wire_and_log() {
        use crate::fault::{FaultPlan, FaultRule};
        let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
        net.set_fault_plan(FaultPlan::new(1).with(FaultRule::crash_stop(2, 1)));
        let first = net.exchange("r1", payloads(3)).unwrap();
        assert_eq!(first[0].len(), 3, "alive in its first exchange");
        let second = net.exchange("r2", payloads(3)).unwrap();
        assert!(second.iter().all(|inbox| inbox.len() == 2));
        assert_eq!(net.traffic().len(), 3 + 2, "dead sender logs nothing");
        assert_eq!(net.traffic().faults().crash_silenced, 1);
        assert_eq!(net.fault_plan().unwrap().crashed_slots(3), vec![2]);
    }

    #[test]
    fn delayed_delivery_arrives_on_retransmission() {
        use crate::fault::{FaultPlan, FaultRule};
        let mut net = BroadcastNet::new(2, DeliveryPolicy::Synchronous);
        net.set_fault_plan(FaultPlan::new(1).with(FaultRule::delay(1).from(1).to(0).at_most(1)));
        let first = net.exchange("r1", payloads(2)).unwrap();
        assert_eq!(first[0].len(), 1, "delayed copy missing");
        // The driver retransmits the round; the stale copy arrives too.
        let second = net.exchange("r1", payloads(2)).unwrap();
        assert_eq!(second[0].len(), 3, "retransmission plus released copy");
        assert_eq!(net.traffic().faults().redelivered, 1);
    }

    #[test]
    fn eavesdropper_sees_original_traffic() {
        // The observer logs what senders put on the wire, before MITM
        // rewriting (the attacker is between sender and receiver, not
        // inside the sender).
        let mut net = BroadcastNet::new(2, DeliveryPolicy::Synchronous);
        net.set_interceptor(Box::new(|_, p| p.clear()));
        net.exchange("r1", payloads(2)).unwrap();
        assert_eq!(net.traffic().total_bytes(), 1 + 2);
    }
}
