//! A framed TCP connection with read/write deadlines.
//!
//! [`FramedConn`] wraps one `TcpStream` in the frame codec of
//! [`crate::tcp::frame`] and maps every socket failure onto the
//! structured [`NetError`] classes the handshake runtime already
//! understands:
//!
//! * a read/write deadline expiring on a live socket →
//!   [`NetError::Timeout`] (counted in
//!   [`crate::TransportCounters::deadline_timeouts`]),
//! * EOF or a reset peer → [`NetError::Disconnected`],
//! * a malformed frame → [`NetError::Frame`] with the codec's reason.
//!
//! The drivers map these onward: a timeout is an incomplete round
//! (retransmission budget), a disconnect beyond the reconnect budget
//! becomes a structured abort — never a hang, never a panic.

use crate::tcp::frame::{self, Frame, HEADER_LEN};
use crate::{NetError, TransportCounters};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// Deadline configuration of one framed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnConfig {
    /// Deadline of one blocking frame read (also the idle-detection
    /// window: a peer silent for this long with no heartbeat is
    /// considered gone by readers that choose to treat it so).
    pub read_deadline: Duration,
    /// Deadline of one frame write (a peer that stops draining its
    /// receive window for this long is treated as stalled).
    pub write_deadline: Duration,
    /// How long [`FramedConn::goodbye`] waits for the peer's remaining
    /// frames (and its own `Bye`) before giving up the drain.
    pub drain_deadline: Duration,
}

impl Default for ConnConfig {
    fn default() -> ConnConfig {
        ConnConfig {
            read_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(2),
        }
    }
}

/// One framed, deadline-supervised TCP connection.
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    config: ConnConfig,
    counters: TransportCounters,
}

impl FramedConn {
    /// Wraps `stream`, arming its read/write deadlines.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the socket rejects configuration
    /// (it is already dead).
    pub fn new(stream: TcpStream, config: ConnConfig) -> Result<FramedConn, NetError> {
        stream
            .set_read_timeout(Some(config.read_deadline))
            .map_err(|_| NetError::Disconnected)?;
        stream
            .set_write_timeout(Some(config.write_deadline))
            .map_err(|_| NetError::Disconnected)?;
        stream
            .set_nodelay(true)
            .map_err(|_| NetError::Disconnected)?;
        Ok(FramedConn {
            stream,
            config,
            counters: TransportCounters::default(),
        })
    }

    /// The deadline configuration this connection was armed with.
    pub fn config(&self) -> ConnConfig {
        self.config
    }

    /// Robustness counters accumulated so far.
    pub fn counters(&self) -> TransportCounters {
        self.counters
    }

    /// Clones the underlying socket (e.g. to split reading and writing
    /// across threads). The clone shares deadlines but counts its own
    /// transport events.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the socket cannot be duplicated.
    pub fn try_clone(&self) -> Result<FramedConn, NetError> {
        let stream = self
            .stream
            .try_clone()
            .map_err(|_| NetError::Disconnected)?;
        Ok(FramedConn {
            stream,
            config: self.config,
            counters: TransportCounters::default(),
        })
    }

    /// Sends one frame within the write deadline.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on a stalled peer, otherwise
    /// [`NetError::Disconnected`].
    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        let bytes = frame.encode();
        match self.stream.write_all(&bytes) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.map_io(&e)),
        }
    }

    /// Sends a [`Frame::Heartbeat`], counting it.
    ///
    /// # Errors
    ///
    /// See [`FramedConn::send`].
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.counters.heartbeats += 1;
        self.send(&Frame::Heartbeat)
    }

    /// Receives one frame within the configured read deadline.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline expires,
    /// [`NetError::Disconnected`] on EOF/reset, [`NetError::Frame`] on a
    /// malformed frame (the stream is then desynchronized and should be
    /// abandoned).
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        self.recv_within(self.config.read_deadline)
    }

    /// Receives one frame within `timeout` (restores the configured
    /// deadline afterwards).
    ///
    /// # Errors
    ///
    /// See [`FramedConn::recv`].
    pub fn recv_within(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        // A zero timeout would mean "block forever" to the socket API;
        // clamp to the shortest real deadline instead.
        let timeout = timeout.max(Duration::from_millis(1));
        let _ = self.stream.set_read_timeout(Some(timeout));
        let out = self.recv_inner();
        let _ = self
            .stream
            .set_read_timeout(Some(self.config.read_deadline));
        out
    }

    fn recv_inner(&mut self) -> Result<Frame, NetError> {
        let mut header = [0u8; HEADER_LEN];
        self.read_exact_mapped(&mut header)?;
        let h = frame::decode_header(&header).map_err(NetError::Frame)?;
        // The header's length bound has been validated, so this
        // allocation is capped at MAX_BODY_LEN.
        let mut body = vec![0u8; h.len as usize];
        self.read_exact_mapped(&mut body)?;
        frame::decode_body(h.ftype, &body).map_err(NetError::Frame)
    }

    fn read_exact_mapped(&mut self, buf: &mut [u8]) -> Result<(), NetError> {
        match self.stream.read_exact(buf) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.map_io(&e)),
        }
    }

    fn map_io(&mut self, e: &std::io::Error) -> NetError {
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                self.counters.deadline_timeouts += 1;
                NetError::Timeout
            }
            _ => NetError::Disconnected,
        }
    }

    /// Graceful half-close: sends [`Frame::Bye`], shuts down the write
    /// half, then drains the read half (bounded by the drain deadline)
    /// so in-flight deliveries and the peer's own `Bye` are consumed
    /// rather than resetting the connection. Errors are swallowed — the
    /// connection is being abandoned either way.
    pub fn goodbye(mut self) {
        let _ = self.send(&Frame::Bye);
        let _ = self.stream.shutdown(Shutdown::Write);
        let deadline = Instant::now() + self.config.drain_deadline;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.recv_within(left) {
                Ok(Frame::Bye) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Hard shutdown of both halves (supervisor teardown on errors).
    pub fn abort(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn pair(config: ConnConfig) -> (FramedConn, FramedConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        let client = client.join().unwrap();
        (
            FramedConn::new(server, config).unwrap(),
            FramedConn::new(client, config).unwrap(),
        )
    }

    #[test]
    fn frames_cross_the_socket() {
        let (mut a, mut b) = pair(ConnConfig::default());
        a.send(&Frame::Broadcast {
            round: "r1".to_string(),
            from_slot: 2,
            payload: vec![9; 100],
        })
        .unwrap();
        let got = b.recv().unwrap();
        assert_eq!(
            got,
            Frame::Broadcast {
                round: "r1".to_string(),
                from_slot: 2,
                payload: vec![9; 100],
            }
        );
    }

    #[test]
    fn read_deadline_maps_to_timeout_and_is_counted() {
        let config = ConnConfig {
            read_deadline: Duration::from_millis(50),
            ..Default::default()
        };
        let (_a, mut b) = pair(config);
        assert_eq!(b.recv().unwrap_err(), NetError::Timeout);
        assert_eq!(b.counters().deadline_timeouts, 1);
    }

    #[test]
    fn eof_maps_to_disconnected() {
        let (a, mut b) = pair(ConnConfig {
            drain_deadline: Duration::from_millis(50),
            ..Default::default()
        });
        a.goodbye();
        assert_eq!(b.recv().unwrap(), Frame::Bye);
        assert_eq!(b.recv().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn garbage_on_the_wire_is_a_structured_frame_error() {
        let (mut a, mut b) = pair(ConnConfig::default());
        // Write raw garbage past the codec.
        a.stream.write_all(b"XXGARBAGE").unwrap();
        assert!(matches!(b.recv().unwrap_err(), NetError::Frame(_)));
    }

    #[test]
    fn heartbeats_count() {
        let (mut a, mut b) = pair(ConnConfig::default());
        a.ping().unwrap();
        assert_eq!(b.recv().unwrap(), Frame::Heartbeat);
        assert_eq!(a.counters().heartbeats, 1);
    }
}
