//! The versioned, length-framed wire codec of the TCP transport.
//!
//! Every frame is `MAGIC ‖ version ‖ type ‖ len₃₂ ‖ body` — an 8-byte
//! header followed by `len` body bytes. The header is validated (magic,
//! version, type, length bound) **before any allocation for the body**,
//! so an adversarial length prefix cannot balloon memory, and every
//! decode failure is a structured [`FrameError`], never a panic: this
//! file sits on the `index-path`/`panic-path` lints and uses checked
//! access exclusively.
//!
//! Body layouts (all integers big-endian):
//!
//! * `Hello` — `version:u8 ‖ want_slot:u32` (`want_slot = u32::MAX`
//!   means "any free slot").
//! * `Welcome` — `slot:u32 ‖ slots:u32`.
//! * `Broadcast` — `label_len:u16 ‖ label ‖ from_slot:u32 ‖
//!   payload_len:u32 ‖ payload`.
//! * `RoundEnd` — `label_len:u16 ‖ label`.
//! * `Heartbeat`, `Bye` — empty bodies.

use std::fmt;

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"SH";

/// Wire-protocol version this build speaks.
///
/// History: v1 — initial framing. v2 — group signatures grew their
/// transmitted PoK commitment vectors (`B1..B4` ACJT, `B1..B6` KY), so
/// every σ-bearing body changed width; bumping here makes a v1 peer
/// fail fast with [`FrameError::UnsupportedVersion`] at the handshake
/// instead of silently mis-decoding mixed-version signatures.
pub const VERSION: u8 = 2;

/// Header length in bytes: magic (2) + version (1) + type (1) + len (4).
pub const HEADER_LEN: usize = 8;

/// Hard cap on a frame body. Handshake payloads are a few KiB even at
/// production parameters; anything above this is an attack or a
/// desynchronized stream, rejected before allocation.
pub const MAX_BODY_LEN: u32 = 1 << 20;

/// Round labels are short protocol constants; a longer one is garbage.
const MAX_LABEL_LEN: usize = 64;

const TYPE_HELLO: u8 = 1;
const TYPE_WELCOME: u8 = 2;
const TYPE_BROADCAST: u8 = 3;
const TYPE_ROUND_END: u8 = 4;
const TYPE_HEARTBEAT: u8 = 5;
const TYPE_BYE: u8 = 6;

/// Structured decode failures of the frame codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic,
    /// The header named a protocol version this build does not speak.
    UnsupportedVersion {
        /// The version byte received.
        got: u8,
    },
    /// The header named an unknown frame type.
    UnknownType {
        /// The type byte received.
        got: u8,
    },
    /// The length prefix exceeded [`MAX_BODY_LEN`]; rejected before any
    /// body allocation.
    Oversize {
        /// The claimed body length.
        len: u32,
    },
    /// The bytes ended before the structure did.
    Truncated,
    /// The body had bytes left over after its structure was consumed.
    TrailingBytes,
    /// A round label was over-long or not valid UTF-8.
    BadLabel,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got} (speaking {VERSION})")
            }
            FrameError::UnknownType { got } => write!(f, "unknown frame type {got}"),
            FrameError::Oversize { len } => {
                write!(f, "frame body of {len} bytes exceeds cap {MAX_BODY_LEN}")
            }
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::TrailingBytes => write!(f, "frame body has trailing bytes"),
            FrameError::BadLabel => write!(f, "malformed round label"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One frame of the TCP transport protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → relay: request attachment.
    Hello {
        /// The client's protocol version.
        version: u8,
        /// Requested slot, or `u32::MAX` for any free one.
        want_slot: u32,
    },
    /// Relay → client: attachment granted.
    Welcome {
        /// The assigned slot.
        slot: u32,
        /// Total slots in the session.
        slots: u32,
    },
    /// A broadcast payload (client → relay: own send; relay → client:
    /// a delivery attributed to `from_slot`).
    Broadcast {
        /// Round label.
        round: String,
        /// Sender slot.
        from_slot: u32,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// Relay → client: the current exchange of `round` is complete.
    RoundEnd {
        /// Round label.
        round: String,
    },
    /// Keep-alive; carries nothing and is never forwarded.
    Heartbeat,
    /// Graceful half-close: the sender is done transmitting.
    Bye,
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TYPE_HELLO,
            Frame::Welcome { .. } => TYPE_WELCOME,
            Frame::Broadcast { .. } => TYPE_BROADCAST,
            Frame::RoundEnd { .. } => TYPE_ROUND_END,
            Frame::Heartbeat => TYPE_HEARTBEAT,
            Frame::Bye => TYPE_BYE,
        }
    }

    /// Encodes the frame as header + body.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.type_byte());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Frame::Hello { version, want_slot } => {
                b.push(*version);
                b.extend_from_slice(&want_slot.to_be_bytes());
            }
            Frame::Welcome { slot, slots } => {
                b.extend_from_slice(&slot.to_be_bytes());
                b.extend_from_slice(&slots.to_be_bytes());
            }
            Frame::Broadcast {
                round,
                from_slot,
                payload,
            } => {
                b.extend_from_slice(&(round.len() as u16).to_be_bytes());
                b.extend_from_slice(round.as_bytes());
                b.extend_from_slice(&from_slot.to_be_bytes());
                b.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                b.extend_from_slice(payload);
            }
            Frame::RoundEnd { round } => {
                b.extend_from_slice(&(round.len() as u16).to_be_bytes());
                b.extend_from_slice(round.as_bytes());
            }
            Frame::Heartbeat | Frame::Bye => {}
        }
        b
    }
}

/// A decoded header: the frame type byte and the body length. The
/// version and length bound have already been checked, so the caller
/// may allocate `len` bytes for the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Validated frame type byte.
    pub ftype: u8,
    /// Body length (≤ [`MAX_BODY_LEN`]).
    pub len: u32,
}

/// Validates an 8-byte header: magic, version, known type, length cap.
/// Rejecting the length here is what guarantees no oversize allocation
/// ever happens downstream.
///
/// # Errors
///
/// Every malformed header maps to a specific [`FrameError`].
pub fn decode_header(bytes: &[u8]) -> Result<Header, FrameError> {
    let mut c = Cursor::new(bytes);
    let magic0 = c.take_u8()?;
    let magic1 = c.take_u8()?;
    if [magic0, magic1] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = c.take_u8()?;
    if version != VERSION {
        return Err(FrameError::UnsupportedVersion { got: version });
    }
    let ftype = c.take_u8()?;
    if !(TYPE_HELLO..=TYPE_BYE).contains(&ftype) {
        return Err(FrameError::UnknownType { got: ftype });
    }
    let len = c.take_u32()?;
    if len > MAX_BODY_LEN {
        return Err(FrameError::Oversize { len });
    }
    Ok(Header { ftype, len })
}

/// Decodes a frame body whose header already validated as `ftype`.
///
/// # Errors
///
/// [`FrameError::Truncated`] / [`FrameError::TrailingBytes`] /
/// [`FrameError::BadLabel`] on malformed bodies.
pub fn decode_body(ftype: u8, body: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor::new(body);
    let frame = match ftype {
        TYPE_HELLO => Frame::Hello {
            version: c.take_u8()?,
            want_slot: c.take_u32()?,
        },
        TYPE_WELCOME => Frame::Welcome {
            slot: c.take_u32()?,
            slots: c.take_u32()?,
        },
        TYPE_BROADCAST => {
            let round = c.take_label()?;
            let from_slot = c.take_u32()?;
            let payload_len = c.take_u32()?;
            if payload_len > MAX_BODY_LEN {
                return Err(FrameError::Oversize { len: payload_len });
            }
            let payload = c.take(payload_len as usize)?.to_vec();
            Frame::Broadcast {
                round,
                from_slot,
                payload,
            }
        }
        TYPE_ROUND_END => Frame::RoundEnd {
            round: c.take_label()?,
        },
        TYPE_HEARTBEAT => Frame::Heartbeat,
        TYPE_BYE => Frame::Bye,
        got => return Err(FrameError::UnknownType { got }),
    };
    c.finish()?;
    Ok(frame)
}

/// Decodes one whole frame from the front of `bytes`, returning it and
/// the number of bytes consumed. Streaming readers should use
/// [`decode_header`] + [`decode_body`] instead so the body read is
/// bounded *before* buffering; this entry point serves parsers that
/// already hold the bytes (tests, fuzzing).
///
/// # Errors
///
/// See [`decode_header`] and [`decode_body`].
pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    let header = decode_header(bytes)?;
    let total = HEADER_LEN + header.len as usize;
    let body = bytes.get(HEADER_LEN..total).ok_or(FrameError::Truncated)?;
    Ok((decode_body(header.ftype, body)?, total))
}

/// A checked byte cursor: every access is bounds-checked and returns
/// [`FrameError::Truncated`] instead of panicking.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(FrameError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8, FrameError> {
        self.take(1)?.first().copied().ok_or(FrameError::Truncated)
    }

    fn take_u16(&mut self) -> Result<u16, FrameError> {
        let raw = self.take(2)?;
        let arr: [u8; 2] = raw.try_into().map_err(|_| FrameError::Truncated)?;
        Ok(u16::from_be_bytes(arr))
    }

    fn take_u32(&mut self) -> Result<u32, FrameError> {
        let raw = self.take(4)?;
        let arr: [u8; 4] = raw.try_into().map_err(|_| FrameError::Truncated)?;
        Ok(u32::from_be_bytes(arr))
    }

    fn take_label(&mut self) -> Result<String, FrameError> {
        let len = self.take_u16()? as usize;
        if len > MAX_LABEL_LEN {
            return Err(FrameError::BadLabel);
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| FrameError::BadLabel)
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let (back, used) = decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn all_frame_kinds_roundtrip() {
        roundtrip(Frame::Hello {
            version: VERSION,
            want_slot: u32::MAX,
        });
        roundtrip(Frame::Welcome { slot: 2, slots: 3 });
        roundtrip(Frame::Broadcast {
            round: "dgka-r1".to_string(),
            from_slot: 1,
            payload: vec![0xAB; 300],
        });
        roundtrip(Frame::RoundEnd {
            round: "phase2-mac".to_string(),
        });
        roundtrip(Frame::Heartbeat);
        roundtrip(Frame::Bye);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Frame::Heartbeat.encode();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes).unwrap_err(), FrameError::BadMagic);
    }

    #[test]
    fn version_mismatch_is_structured() {
        let mut bytes = Frame::Heartbeat.encode();
        bytes[2] = VERSION + 1;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            FrameError::UnsupportedVersion { got: VERSION + 1 }
        );
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = Frame::Heartbeat.encode();
        bytes[3] = 0x77;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            FrameError::UnknownType { got: 0x77 }
        );
    }

    #[test]
    fn oversize_length_rejected_in_header() {
        let mut bytes = Frame::Heartbeat.encode();
        bytes[4..8].copy_from_slice(&(MAX_BODY_LEN + 1).to_be_bytes());
        assert_eq!(
            decode_header(&bytes).unwrap_err(),
            FrameError::Oversize {
                len: MAX_BODY_LEN + 1
            }
        );
    }

    #[test]
    fn truncation_anywhere_is_structured() {
        let bytes = Frame::Broadcast {
            round: "r".to_string(),
            from_slot: 0,
            payload: vec![1, 2, 3],
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Vec::new();
        body.extend_from_slice(&0u16.to_be_bytes()); // empty label
        body.push(0xFF); // junk
        assert_eq!(
            decode_body(TYPE_ROUND_END, &body).unwrap_err(),
            FrameError::TrailingBytes
        );
    }

    #[test]
    fn overlong_label_rejected() {
        let mut body = Vec::new();
        body.extend_from_slice(&(MAX_LABEL_LEN as u16 + 1).to_be_bytes());
        body.extend_from_slice(&[b'a'; MAX_LABEL_LEN + 1]);
        assert_eq!(
            decode_body(TYPE_ROUND_END, &body).unwrap_err(),
            FrameError::BadLabel
        );
    }
}
