//! Framed TCP transport: real-network sessions behind the existing
//! net traits.
//!
//! The wire format is a minimal length-framed, versioned protocol
//! (see [`frame`]): an 8-byte header `"SH" ‖ version ‖ type ‖ len` and
//! a type-specific body, with oversize lengths rejected before any
//! allocation. On top of it:
//!
//! * [`conn::FramedConn`] — one deadline-supervised connection mapping
//!   socket failures onto the structured [`NetError`] classes,
//! * [`supervisor`] — budgeted, jitter-backoff dialing and the
//!   `Hello`/`Welcome` attachment handshake,
//! * [`relay::RelayHandle`] — the broadcast relay bridging connections
//!   into lockstep exchanges, with the [`FaultPlan`] injected at the
//!   framing boundary so the chaos suite runs unchanged over TCP,
//! * [`TcpSession`] — a [`Medium`]: the lockstep engine drives all
//!   slots through one relay over real sockets,
//! * [`TcpParty`] — a [`PartyLink`]: one party's endpoint for
//!   multi-process sessions (the `shs-node` daemon builds on this).
//!
//! Everything above the transport — the handshake engine, session
//! budgets, decoy machinery, abort taxonomy — is unchanged; this module
//! only swaps the medium underneath it.

pub mod conn;
pub mod frame;
pub mod relay;
pub mod supervisor;

pub use conn::{ConnConfig, FramedConn};
pub use relay::{RelayConfig, RelayHandle};
pub use supervisor::{attach, connect_supervised, Attachment, SupervisorConfig};

use crate::fault::FaultPlan;
use crate::observe::TrafficLog;
use crate::sync::Received;
use crate::tcp::frame::Frame;
use crate::{Medium, NetError, PartyLink, TransportCounters};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A lockstep broadcast session over real TCP sockets: one in-process
/// relay plus one framed connection per slot, all on loopback.
///
/// Implements [`Medium`], so `run_handshake_with_net` drives it exactly
/// like the in-process [`crate::sync::BroadcastNet`] — same rounds, same
/// retransmission budget, same fault semantics — but every byte crosses
/// the kernel's TCP stack and faults are injected at the framing
/// boundary by the relay.
pub struct TcpSession {
    relay: RelayHandle,
    conns: Vec<Option<FramedConn>>,
    m: usize,
}

impl std::fmt::Debug for TcpSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TcpSession {{ slots: {}, relay: {} }}",
            self.m,
            self.relay.addr()
        )
    }
}

impl TcpSession {
    /// Binds a relay on `127.0.0.1:0`, installs `plan` at its framing
    /// boundary, and attaches one connection per slot.
    ///
    /// # Errors
    ///
    /// Propagates bind/attach failures ([`NetError::Disconnected`],
    /// [`NetError::ConnectFailed`], [`NetError::Refused`]).
    pub fn over_loopback(m: usize, plan: Option<FaultPlan>) -> Result<TcpSession, NetError> {
        let config = RelayConfig {
            gather_deadline: Duration::from_secs(10),
            ..RelayConfig::new(m)
        };
        let relay = RelayHandle::bind("127.0.0.1:0", config, plan)?;
        let addr = relay.addr();
        let sup = SupervisorConfig::default();
        let mut conns = Vec::with_capacity(m);
        for i in 0..m {
            let at = attach(addr, &sup, Some(i))?;
            conns.push(Some(at.conn));
        }
        Ok(TcpSession { relay, conns, m })
    }

    /// The relay's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.relay.addr()
    }

    /// Graceful teardown: every connection says `Bye` and drains, then
    /// the relay stops. Prefer this over plain dropping (which aborts
    /// the sockets hard).
    pub fn finish(mut self) {
        for slot in self.conns.iter_mut() {
            if let Some(conn) = slot.take() {
                conn.goodbye();
            }
        }
        self.relay.wait_done(Duration::from_secs(2));
    }
}

impl Drop for TcpSession {
    fn drop(&mut self) {
        for slot in self.conns.iter_mut() {
            if let Some(conn) = slot.as_mut() {
                conn.abort();
            }
        }
    }
}

impl Medium for TcpSession {
    fn slots(&self) -> usize {
        self.m
    }

    fn exchange(
        &mut self,
        round: &str,
        outgoing: Vec<Vec<u8>>,
    ) -> Result<Vec<Vec<Received>>, NetError> {
        if outgoing.len() != self.m {
            return Err(NetError::IncompleteRound);
        }
        for (i, payload) in outgoing.into_iter().enumerate() {
            let conn = self
                .conns
                .get_mut(i)
                .and_then(Option::as_mut)
                .ok_or(NetError::Disconnected)?;
            conn.send(&Frame::Broadcast {
                round: round.to_string(),
                from_slot: i as u32,
                payload,
            })?;
        }
        let mut views = Vec::with_capacity(self.m);
        for i in 0..self.m {
            let conn = self
                .conns
                .get_mut(i)
                .and_then(Option::as_mut)
                .ok_or(NetError::Disconnected)?;
            let mut inbox = Vec::new();
            loop {
                match conn.recv()? {
                    Frame::Broadcast {
                        round: r,
                        from_slot,
                        payload,
                    } if r == round => {
                        inbox.push(Received {
                            from_slot: from_slot as usize,
                            payload,
                        });
                    }
                    Frame::RoundEnd { round: r } if r == round => break,
                    Frame::Bye => return Err(NetError::Disconnected),
                    // Heartbeats, stale-round frames and stray control
                    // frames are not part of the exchange.
                    _ => {}
                }
            }
            views.push(inbox);
        }
        Ok(views)
    }

    fn traffic_snapshot(&self) -> TrafficLog {
        self.relay.traffic()
    }

    fn crashed_slots(&self) -> Vec<usize> {
        self.relay.crashed_slots()
    }

    fn transport_counters(&self) -> TransportCounters {
        let mut total = self.relay.counters();
        for conn in self.conns.iter().flatten() {
            total.merge(&conn.counters());
        }
        total
    }
}

/// One party's framed TCP endpoint on a relay-hosted session.
///
/// Implements [`PartyLink`]: `broadcast` ships one `Broadcast` frame,
/// `collect` gathers the relay's exchange up to its `RoundEnd`,
/// heartbeating while it waits and transparently re-attaching (with its
/// reserved seat) when the connection dies under it.
pub struct TcpParty {
    conn: FramedConn,
    slot: usize,
    slots: usize,
    addr: SocketAddr,
    sup: SupervisorConfig,
    counters: TransportCounters,
    /// A quiet collect pings the relay at this period so idle detection
    /// never fires on a merely slow round.
    heartbeat_period: Duration,
}

impl std::fmt::Debug for TcpParty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TcpParty {{ slot: {}/{}, relay: {} }}",
            self.slot, self.slots, self.addr
        )
    }
}

impl TcpParty {
    /// Attaches to the relay at `addr` under the supervisor's budget,
    /// taking any free slot (or `want_slot` when reclaiming a seat).
    ///
    /// # Errors
    ///
    /// [`NetError::ConnectFailed`] when the attempt budget is spent,
    /// [`NetError::Refused`] when the relay has no seat for us.
    pub fn attach(
        addr: SocketAddr,
        sup: SupervisorConfig,
        want_slot: Option<usize>,
    ) -> Result<TcpParty, NetError> {
        let at = attach(addr, &sup, want_slot)?;
        let mut counters = TransportCounters::default();
        counters.reconnects += u64::from(at.failed_attempts);
        Ok(TcpParty {
            conn: at.conn,
            slot: at.slot,
            slots: at.slots,
            addr,
            sup,
            counters,
            heartbeat_period: Duration::from_secs(1),
        })
    }

    /// Re-dials the relay and reclaims this party's seat.
    fn reattach(&mut self) -> Result<(), NetError> {
        let at = attach(self.addr, &self.sup, Some(self.slot))?;
        self.counters.merge(&self.conn.counters());
        self.counters.reconnects += 1 + u64::from(at.failed_attempts);
        self.conn = at.conn;
        Ok(())
    }

    /// Graceful leave: `Bye`, half-close, drain.
    pub fn finish(mut self) {
        self.counters.merge(&self.conn.counters());
        self.conn.goodbye();
    }
}

impl PartyLink for TcpParty {
    fn slot(&self) -> usize {
        self.slot
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn broadcast(&mut self, round: &str, payload: Vec<u8>) -> Result<(), NetError> {
        let frame = Frame::Broadcast {
            round: round.to_string(),
            from_slot: self.slot as u32,
            payload,
        };
        match self.conn.send(&frame) {
            Ok(()) => Ok(()),
            Err(NetError::Disconnected) => {
                // One transparent re-attachment; a second failure is a
                // real outage the caller must surface.
                self.reattach()?;
                self.conn.send(&frame)
            }
            Err(e) => Err(e),
        }
    }

    fn collect(
        &mut self,
        round: &str,
        timeout: Duration,
        valid: &mut dyn FnMut(usize, &[u8]) -> bool,
    ) -> Result<Vec<Option<Vec<u8>>>, NetError> {
        let deadline = Instant::now() + timeout;
        let mut got: Vec<Option<Vec<u8>>> = vec![None; self.slots];
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Quiet deadline: an incomplete view, not an error —
                // the driver's retransmission budget decides what next.
                break;
            }
            match self.conn.recv_within(left.min(self.heartbeat_period)) {
                Ok(Frame::Broadcast {
                    round: r,
                    from_slot,
                    payload,
                }) => {
                    if r != round {
                        continue; // stale round in flight
                    }
                    let from = from_slot as usize;
                    if from >= self.slots {
                        continue;
                    }
                    let cell = got.get_mut(from).ok_or(NetError::IncompleteRound)?;
                    if cell.is_none() && valid(from, &payload) {
                        *cell = Some(payload);
                    }
                }
                Ok(Frame::RoundEnd { round: r }) => {
                    if r == round {
                        break;
                    }
                }
                Ok(Frame::Heartbeat) => {}
                Ok(Frame::Bye) => return Err(NetError::Disconnected),
                Ok(_) => {}
                Err(NetError::Timeout) => {
                    // Keep the seat observably alive while the relay
                    // waits for slower parties.
                    let _ = self.conn.ping();
                }
                Err(NetError::Disconnected) => {
                    // The round's frames are lost with the connection;
                    // reclaim the seat and let the driver rebroadcast.
                    self.reattach()?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(got)
    }

    fn transport_counters(&self) -> TransportCounters {
        let mut total = self.counters;
        total.merge(&self.conn.counters());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn tcp_session_exchanges_like_a_broadcast_medium() {
        let mut net = TcpSession::over_loopback(3, None).unwrap();
        let outgoing: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 16]).collect();
        let views = net.exchange("r1", outgoing).unwrap();
        assert_eq!(views.len(), 3);
        for view in &views {
            assert_eq!(view.len(), 3, "everyone hears everyone (echo included)");
            let mut froms: Vec<usize> = view.iter().map(|r| r.from_slot).collect();
            froms.sort_unstable();
            assert_eq!(froms, vec![0, 1, 2]);
        }
        let log = net.traffic_snapshot();
        assert_eq!(log.len(), 3, "the eavesdropper saw one send per slot");
        net.finish();
    }

    #[test]
    fn tcp_session_rejects_short_outgoing() {
        let mut net = TcpSession::over_loopback(2, None).unwrap();
        assert_eq!(
            net.exchange("r1", vec![vec![1]]).unwrap_err(),
            NetError::IncompleteRound
        );
        net.finish();
    }

    #[test]
    fn parties_complete_an_exchange_over_tcp() {
        let relay = RelayHandle::bind(
            "127.0.0.1:0",
            RelayConfig {
                gather_deadline: Duration::from_secs(5),
                ..RelayConfig::new(2)
            },
            None,
        )
        .unwrap();
        let addr = relay.addr();
        let workers: Vec<_> = (0..2)
            .map(|i| {
                thread::spawn(move || {
                    let sup = SupervisorConfig {
                        seed: i as u64,
                        ..SupervisorConfig::default()
                    };
                    let mut p = TcpParty::attach(addr, sup, Some(i)).unwrap();
                    p.broadcast("r1", vec![p.slot() as u8; 8]).unwrap();
                    let view = p
                        .collect("r1", Duration::from_secs(5), &mut |_, _| true)
                        .unwrap();
                    p.finish();
                    view
                })
            })
            .collect();
        for w in workers {
            let view = w.join().unwrap();
            assert_eq!(view.len(), 2);
            assert_eq!(view[0].as_deref(), Some(&[0u8; 8][..]));
            assert_eq!(view[1].as_deref(), Some(&[1u8; 8][..]));
        }
        assert!(relay.wait_done(Duration::from_secs(5)));
        relay.shutdown();
    }

    #[test]
    fn collect_filters_invalid_copies() {
        let relay = RelayHandle::bind(
            "127.0.0.1:0",
            RelayConfig {
                gather_deadline: Duration::from_secs(5),
                ..RelayConfig::new(2)
            },
            None,
        )
        .unwrap();
        let addr = relay.addr();
        let other = thread::spawn(move || {
            let mut p = TcpParty::attach(addr, SupervisorConfig::default(), Some(1)).unwrap();
            p.broadcast("r1", vec![7; 3]).unwrap(); // "wrong" length
            let _ = p.collect("r1", Duration::from_secs(5), &mut |_, _| true);
            p.finish();
        });
        let mut p = TcpParty::attach(addr, SupervisorConfig::default(), Some(0)).unwrap();
        p.broadcast("r1", vec![0; 8]).unwrap();
        let view = p
            .collect("r1", Duration::from_secs(5), &mut |_, payload| {
                payload.len() == 8
            })
            .unwrap();
        assert_eq!(view[0].as_deref(), Some(&[0u8; 8][..]));
        assert_eq!(view[1], None, "the short copy must be filtered out");
        p.finish();
        other.join().unwrap();
        relay.shutdown();
    }
}
