//! The broadcast relay: bridges framed TCP connections into lockstep
//! exchanges, with fault injection at the framing boundary.
//!
//! One relay hosts one session of `slots` parties. Parties attach with
//! a `Hello`/`Welcome` exchange (the seat roster supports re-attachment
//! after a lost connection), then every `Broadcast` frame they send is
//! gathered into per-round batches. When a batch is complete — or the
//! round deadline expires after its first frame — the relay runs one
//! *exchange*, exactly mirroring [`crate::sync::BroadcastNet`]:
//!
//! 1. the installed [`FaultPlan`]'s delay clock advances
//!    (`begin_exchange`) and crash-stopped senders are suppressed,
//! 2. the eavesdropper's [`TrafficLog`] records what each live sender
//!    put on the wire (per-receiver faults happen downstream),
//! 3. every receiver's inbox is built through [`FaultPlan::deliver`] —
//!    frames in flight may be dropped, duplicated, corrupted,
//!    truncated, delayed to a later matching exchange, or cut by a
//!    partition — and shipped as `Broadcast` frames followed by one
//!    `RoundEnd`.
//!
//! Because parties retransmit independently in the distributed setting,
//! the relay keeps each seat's **last payload per round label** and
//! fills it in for live seats that have not re-sent when a
//! retransmission exchange fires: every exchange carries one payload
//! per live slot, so retransmissions stay shape-uniform on the wire
//! exactly as the lockstep engine's all-slots-retransmit rule
//! guarantees in-process.
//!
//! A receiver that stops draining its socket past the write deadline
//! loses frames (tallied as
//! [`crate::observe::FaultCounters::backpressure_dropped`]) rather than
//! wedging the relay — the same contract as the threaded hub.

use crate::fault::FaultPlan;
use crate::observe::TrafficLog;
use crate::tcp::conn::{ConnConfig, FramedConn};
use crate::tcp::frame::{Frame, VERSION};
use crate::{NetError, TransportCounters};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning of one relay-hosted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayConfig {
    /// Number of party seats.
    pub slots: usize,
    /// An exchange fires this long after its first frame even if some
    /// live seat has not contributed (desynchronized parties; the seat's
    /// cached payload for the label stands in when it exists).
    pub round_deadline: Duration,
    /// How long to wait for all seats to attach before starting with
    /// whoever came (absent seats count as vanished).
    pub gather_deadline: Duration,
    /// Reader idle detection: a seat silent for this long (no frames,
    /// no heartbeats) is declared gone.
    pub idle_timeout: Duration,
    /// Deadlines of every accepted connection.
    pub conn: ConnConfig,
}

impl RelayConfig {
    /// Defaults for a session of `slots` parties.
    pub fn new(slots: usize) -> RelayConfig {
        RelayConfig {
            slots,
            round_deadline: Duration::from_secs(2),
            gather_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            conn: ConnConfig::default(),
        }
    }
}

/// Seat occupancy in the attachment roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seat {
    Free,
    Taken,
    /// Previously taken, connection lost — eligible for re-attachment.
    Gone,
}

enum Event {
    Attached {
        slot: usize,
        writer: FramedConn,
    },
    Frame {
        slot: usize,
        round: String,
        payload: Vec<u8>,
    },
    Gone {
        slot: usize,
        graceful: bool,
    },
}

#[derive(Default)]
struct Shared {
    log: TrafficLog,
    crashed: Vec<usize>,
    counters: TransportCounters,
    done: bool,
}

/// A bound, running relay. Dropping the handle stops the relay and
/// joins its threads.
pub struct RelayHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Mutex<Shared>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    core_thread: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RelayHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RelayHandle {{ addr: {} }}", self.addr)
    }
}

impl RelayHandle {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts relaying a session
    /// per `config`, with `plan` injected at the framing boundary.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the listener cannot bind.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: RelayConfig,
        plan: Option<FaultPlan>,
    ) -> Result<RelayHandle, NetError> {
        let listener = TcpListener::bind(addr).map_err(|_| NetError::Disconnected)?;
        let local = listener.local_addr().map_err(|_| NetError::Disconnected)?;
        listener
            .set_nonblocking(true)
            .map_err(|_| NetError::Disconnected)?;

        let shared = Arc::new(Mutex::new(Shared::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let roster = Arc::new(Mutex::new(vec![Seat::Free; config.slots]));
        // Events: frames from every reader plus attach/gone notices.
        // Bounded so a flooding sender backpressures at its socket.
        let (tx, rx) = bounded::<Event>(1024);

        let accept_thread = {
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            let roster = Arc::clone(&roster);
            thread::spawn(move || accept_loop(&listener, &config, &stop, &tx, &roster))
        };
        drop(tx);
        let core_thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let roster = Arc::clone(&roster);
            thread::spawn(move || core_loop(config, plan, &rx, &shared, &stop, &roster))
        };

        Ok(RelayHandle {
            addr: local,
            shared,
            stop,
            accept_thread: Some(accept_thread),
            core_thread: Some(core_thread),
        })
    }

    /// The bound address (query it after binding port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Snapshot of the eavesdropper's log so far.
    pub fn traffic(&self) -> TrafficLog {
        self.shared.lock().log.clone()
    }

    /// Seats currently considered crash-stopped: fault-plan crashes plus
    /// seats that vanished without a graceful `Bye`.
    pub fn crashed_slots(&self) -> Vec<usize> {
        self.shared.lock().crashed.clone()
    }

    /// Relay-side transport counters.
    pub fn counters(&self) -> TransportCounters {
        self.shared.lock().counters
    }

    /// Has the session completed (every attached seat said `Bye` or
    /// vanished)?
    pub fn done(&self) -> bool {
        self.shared.lock().done
    }

    /// Blocks until the session completes or `timeout` expires; returns
    /// whether it completed.
    pub fn wait_done(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.done() {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.done()
    }

    /// Stops the relay and joins its threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.core_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RelayHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &RelayConfig,
    stop: &AtomicBool,
    tx: &Sender<Event>,
    roster: &Mutex<Vec<Seat>>,
) {
    let mut readers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if let Some(handle) = admit(stream, config, tx, roster) {
                    readers.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for r in readers {
        let _ = r.join();
    }
}

/// Runs the hello exchange on a fresh connection and, on success,
/// spawns its reader thread. Refused connections get a `Bye`.
fn admit(
    stream: std::net::TcpStream,
    config: &RelayConfig,
    tx: &Sender<Event>,
    roster: &Mutex<Vec<Seat>>,
) -> Option<thread::JoinHandle<()>> {
    let mut conn = FramedConn::new(stream, config.conn).ok()?;
    let hello = conn.recv_within(Duration::from_secs(2)).ok()?;
    let Frame::Hello { version, want_slot } = hello else {
        let _ = conn.send(&Frame::Bye);
        return None;
    };
    if version != VERSION {
        let _ = conn.send(&Frame::Bye);
        return None;
    }
    let slot = {
        let mut seats = roster.lock();
        let want = (want_slot != u32::MAX).then_some(want_slot as usize);
        let granted = match want {
            Some(s) => seats
                .get(s)
                .is_some_and(|seat| *seat != Seat::Taken)
                .then_some(s),
            None => seats.iter().position(|seat| *seat == Seat::Free),
        };
        match granted {
            Some(s) => {
                if let Some(seat) = seats.get_mut(s) {
                    *seat = Seat::Taken;
                }
                s
            }
            None => {
                drop(seats);
                let _ = conn.send(&Frame::Bye);
                return None;
            }
        }
    };
    if conn
        .send(&Frame::Welcome {
            slot: slot as u32,
            slots: config.slots as u32,
        })
        .is_err()
    {
        if let Some(seat) = roster.lock().get_mut(slot) {
            *seat = Seat::Gone;
        }
        return None;
    }
    let writer = match conn.try_clone() {
        Ok(w) => w,
        Err(_) => {
            if let Some(seat) = roster.lock().get_mut(slot) {
                *seat = Seat::Gone;
            }
            return None;
        }
    };
    if tx.send(Event::Attached { slot, writer }).is_err() {
        return None;
    }
    let tx = tx.clone();
    let idle = config.idle_timeout;
    Some(thread::spawn(move || reader_loop(conn, slot, idle, &tx)))
}

/// Reads one seat's connection until `Bye`, disconnect, idle timeout or
/// a malformed frame; forwards broadcasts, swallows heartbeats.
fn reader_loop(mut conn: FramedConn, slot: usize, idle: Duration, tx: &Sender<Event>) {
    let graceful = loop {
        match conn.recv_within(idle) {
            Ok(Frame::Broadcast { round, payload, .. }) => {
                if tx
                    .send(Event::Frame {
                        slot,
                        round,
                        payload,
                    })
                    .is_err()
                {
                    break false;
                }
            }
            Ok(Frame::Heartbeat) => {}
            Ok(Frame::Bye) => break true,
            // Hello/Welcome/RoundEnd from a client are protocol abuse;
            // a frame error means the stream desynchronized. Both end
            // the seat.
            Ok(_) => break false,
            // One full idle window with no traffic at all: declare the
            // seat dead rather than blocking forever.
            Err(_) => break false,
        }
    };
    let _ = tx.send(Event::Gone { slot, graceful });
}

/// Cap on frames parked for future exchanges; beyond it the oldest are
/// shed like any other backpressure loss.
const STASH_CAP: usize = 1024;

struct CoreState {
    m: usize,
    alive: Vec<bool>,
    /// Seats that attached at least once (a seat that attached and then
    /// left gracefully is done, not crashed).
    ever_attached: Vec<bool>,
    /// Seats that disappeared without a graceful `Bye`.
    vanished: Vec<bool>,
    writers: Vec<Option<FramedConn>>,
    /// Last payload each seat sent per round label (stand-in for
    /// retransmission exchanges the seat did not re-send into).
    cache: Vec<HashMap<String, Vec<u8>>>,
    /// Frames waiting for a later exchange (other labels, duplicates).
    stash: VecDeque<(usize, String, Vec<u8>)>,
    plan: Option<FaultPlan>,
    log: TrafficLog,
    bp_dropped: u64,
}

impl CoreState {
    fn apply(&mut self, ev: Event, roster: &Mutex<Vec<Seat>>) {
        match ev {
            Event::Attached { slot, writer } => {
                if let (Some(w), Some(a)) = (self.writers.get_mut(slot), self.alive.get_mut(slot)) {
                    *w = Some(writer);
                    *a = true;
                }
                if let Some(e) = self.ever_attached.get_mut(slot) {
                    *e = true;
                }
                if let Some(v) = self.vanished.get_mut(slot) {
                    *v = false;
                }
            }
            Event::Frame {
                slot,
                round,
                payload,
            } => {
                if slot < self.m {
                    if self.stash.len() >= STASH_CAP {
                        self.stash.pop_front();
                        self.bp_dropped += 1;
                    }
                    self.stash.push_back((slot, round, payload));
                }
            }
            Event::Gone { slot, graceful } => {
                if let Some(a) = self.alive.get_mut(slot) {
                    *a = false;
                }
                if !graceful {
                    if let Some(v) = self.vanished.get_mut(slot) {
                        *v = true;
                    }
                }
                if let Some(w) = self.writers.get_mut(slot) {
                    if let Some(conn) = w.as_mut() {
                        conn.abort();
                    }
                    *w = None;
                }
                if let Some(seat) = roster.lock().get_mut(slot) {
                    *seat = Seat::Gone;
                }
            }
        }
    }

    fn any_alive(&self) -> bool {
        self.alive.iter().any(|&a| a)
    }

    /// All currently crashed seats: fault-plan crashes plus vanished
    /// connections.
    fn crashed(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .plan
            .as_ref()
            .map_or_else(Vec::new, |p| p.crashed_slots(self.m));
        for (s, v) in self.vanished.iter().enumerate() {
            if *v && !out.contains(&s) {
                out.push(s);
            }
        }
        out.sort_unstable();
        out
    }

    fn publish(&self, shared: &Mutex<Shared>, done: bool) {
        let mut sh = shared.lock();
        sh.log = self.log.clone();
        // lint:allow(lock-order) reason="crashed() reaches FaultPlan::crashed_slots, which holds no lock; the analyzer's name-based resolution lands on RelayHandle::crashed_slots (which locks shared) instead"
        sh.crashed = self.crashed();
        sh.done = done;
    }

    /// Runs one exchange over `batch` (fresh frames per seat), exactly
    /// mirroring `BroadcastNet::exchange` with the plan at the framing
    /// boundary.
    fn run_exchange(&mut self, label: &str, mut batch: Vec<Option<Vec<u8>>>) {
        // Live seats that did not re-send: their cached payload for this
        // label stands in, keeping retransmissions all-slots-uniform.
        for (s, cell) in batch.iter_mut().enumerate() {
            if cell.is_none() && self.alive.get(s).copied().unwrap_or(false) {
                if let Some(p) = self.cache.get(s).and_then(|c| c.get(label)) {
                    *cell = Some(p.clone());
                }
            }
        }
        let due = self
            .plan
            .as_mut()
            .map_or_else(Vec::new, |p| p.begin_exchange(label));
        let mut silent = vec![false; self.m];
        if let Some(plan) = self.plan.as_mut() {
            for (slot, muted) in silent.iter_mut().enumerate() {
                *muted = plan.suppress_send(slot);
            }
        }
        // The eavesdropper logs what live senders put on the wire.
        for (s, payload) in batch.iter().enumerate() {
            if let Some(p) = payload {
                if !silent.get(s).copied().unwrap_or(false) {
                    self.log.record(label, s, p);
                }
            }
        }
        for to in 0..self.m {
            if !self.alive.get(to).copied().unwrap_or(false) {
                continue;
            }
            let mut outbox: Vec<Frame> = Vec::new();
            for (from, payload) in batch.iter().enumerate() {
                let Some(p) = payload else { continue };
                if silent.get(from).copied().unwrap_or(false) {
                    continue;
                }
                let copies = match self.plan.as_mut() {
                    Some(plan) => plan.deliver(label, from, to, p.clone()),
                    None => vec![p.clone()],
                };
                for copy in copies {
                    outbox.push(Frame::Broadcast {
                        round: label.to_string(),
                        from_slot: from as u32,
                        payload: copy,
                    });
                }
            }
            for r in due.iter().filter(|r| r.to_slot == to) {
                outbox.push(Frame::Broadcast {
                    round: label.to_string(),
                    from_slot: r.from_slot as u32,
                    payload: r.payload.clone(),
                });
            }
            outbox.push(Frame::RoundEnd {
                round: label.to_string(),
            });
            self.ship(to, &outbox);
        }
        // Fresh frames update the retransmission cache.
        for (s, payload) in batch.into_iter().enumerate() {
            if let (Some(p), Some(c)) = (payload, self.cache.get_mut(s)) {
                c.insert(label.to_string(), p);
            }
        }
        if let Some(plan) = self.plan.as_ref() {
            let mut counters = plan.counters().clone();
            counters.backpressure_dropped += self.bp_dropped;
            self.log.set_faults(counters);
        } else if self.bp_dropped > 0 {
            let mut counters = self.log.faults().clone();
            counters.backpressure_dropped = self.bp_dropped;
            self.log.set_faults(counters);
        }
    }

    /// Writes an outbox to one seat. A write deadline sheds the rest of
    /// the outbox (backpressure; the receiver's collect deadline and the
    /// session budget absorb the loss); a disconnect retires the seat.
    fn ship(&mut self, to: usize, outbox: &[Frame]) {
        let Some(Some(conn)) = self.writers.get_mut(to) else {
            return;
        };
        for frame in outbox {
            match conn.send(frame) {
                Ok(()) => {}
                Err(NetError::Timeout) => {
                    self.bp_dropped += (outbox.len()) as u64;
                    return;
                }
                Err(_) => {
                    if let Some(a) = self.alive.get_mut(to) {
                        *a = false;
                    }
                    if let Some(v) = self.vanished.get_mut(to) {
                        *v = true;
                    }
                    if let Some(w) = self.writers.get_mut(to) {
                        *w = None;
                    }
                    return;
                }
            }
        }
    }
}

fn core_loop(
    config: RelayConfig,
    plan: Option<FaultPlan>,
    rx: &Receiver<Event>,
    shared: &Mutex<Shared>,
    stop: &AtomicBool,
    roster: &Mutex<Vec<Seat>>,
) {
    let m = config.slots;
    let mut st = CoreState {
        m,
        alive: vec![false; m],
        ever_attached: vec![false; m],
        vanished: vec![false; m],
        writers: (0..m).map(|_| None).collect(),
        cache: vec![HashMap::new(); m],
        stash: VecDeque::new(),
        plan,
        log: TrafficLog::new(),
        bp_dropped: 0,
    };

    // ---- Gather: wait for the seats to attach --------------------------
    let gather_deadline = Instant::now() + config.gather_deadline;
    while st.ever_attached.iter().filter(|&&e| e).count() < m && !stop.load(Ordering::SeqCst) {
        let left = gather_deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match rx.recv_timeout(left.min(Duration::from_millis(50))) {
            Ok(ev) => st.apply(ev, roster),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Seats that never showed up before the gather deadline count as
    // crash-stopped; seats that attached and already left are judged by
    // how they left (the `Gone` event).
    for s in 0..m {
        if !st.ever_attached.get(s).copied().unwrap_or(false) {
            if let Some(v) = st.vanished.get_mut(s) {
                *v = true;
            }
        }
    }
    st.publish(shared, !st.any_alive());

    // ---- Exchange loop -------------------------------------------------
    'session: while st.any_alive() && !stop.load(Ordering::SeqCst) {
        // Assemble one exchange: a label plus fresh frames per seat.
        let mut label: Option<String> = None;
        let mut batch: Vec<Option<Vec<u8>>> = vec![None; m];
        let mut first_at: Option<Instant> = None;

        loop {
            // Fold parked frames in first.
            let mut parked = std::mem::take(&mut st.stash);
            while let Some((s, l, p)) = parked.pop_front() {
                match &label {
                    None => {
                        label = Some(l);
                        first_at = Some(Instant::now());
                        if let Some(cell) = batch.get_mut(s) {
                            *cell = Some(p);
                        }
                    }
                    Some(cur) if *cur == l && batch.get(s).is_some_and(Option::is_none) => {
                        if let Some(cell) = batch.get_mut(s) {
                            *cell = Some(p);
                        }
                    }
                    _ => st.stash.push_back((s, l, p)),
                }
            }

            if let Some(l) = &label {
                let complete = (0..m).all(|s| {
                    !st.alive.get(s).copied().unwrap_or(false)
                        || batch.get(s).is_some_and(Option::is_some)
                        || st.cache.get(s).is_some_and(|c| c.contains_key(l))
                });
                let expired = first_at.is_some_and(|t| t.elapsed() >= config.round_deadline);
                if complete || expired {
                    break;
                }
            }
            if !st.any_alive() {
                break 'session;
            }
            if stop.load(Ordering::SeqCst) {
                break 'session;
            }
            let wait = first_at.map_or(Duration::from_millis(100), |t| {
                config
                    .round_deadline
                    .saturating_sub(t.elapsed())
                    .min(Duration::from_millis(100))
                    .max(Duration::from_millis(1))
            });
            match rx.recv_timeout(wait) {
                Ok(ev) => st.apply(ev, roster),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break 'session,
            }
        }

        if let Some(l) = label.take() {
            st.run_exchange(&l, std::mem::take(&mut batch));
            st.publish(shared, false);
        }
    }

    // ---- Teardown ------------------------------------------------------
    for w in st.writers.iter_mut() {
        if let Some(conn) = w.as_mut() {
            let _ = conn.send(&Frame::Bye);
            conn.abort();
        }
        *w = None;
    }
    st.publish(shared, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::supervisor::{attach, SupervisorConfig};

    fn fast_relay(m: usize, plan: Option<FaultPlan>) -> RelayHandle {
        let config = RelayConfig {
            gather_deadline: Duration::from_secs(5),
            round_deadline: Duration::from_millis(500),
            idle_timeout: Duration::from_secs(5),
            ..RelayConfig::new(m)
        };
        RelayHandle::bind("127.0.0.1:0", config, plan).unwrap()
    }

    #[test]
    fn two_seats_complete_one_round() {
        let relay = fast_relay(2, None);
        let addr = relay.addr();
        let parties: Vec<_> = (0..2)
            .map(|i| {
                let cfg = SupervisorConfig::default();
                thread::spawn(move || {
                    let mut a = attach(addr, &cfg, None).unwrap();
                    a.conn
                        .send(&Frame::Broadcast {
                            round: "r1".to_string(),
                            from_slot: a.slot as u32,
                            payload: vec![i as u8; 8],
                        })
                        .unwrap();
                    let mut got = Vec::new();
                    loop {
                        match a.conn.recv().unwrap() {
                            Frame::Broadcast { from_slot, .. } => got.push(from_slot),
                            Frame::RoundEnd { round } => {
                                assert_eq!(round, "r1");
                                break;
                            }
                            _ => {}
                        }
                    }
                    a.conn.goodbye();
                    got
                })
            })
            .collect();
        for p in parties {
            let mut got = p.join().unwrap();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1], "everyone hears everyone, echo included");
        }
        assert!(relay.wait_done(Duration::from_secs(5)));
        assert_eq!(relay.traffic().len(), 2);
        relay.shutdown();
    }

    #[test]
    fn slot_reservation_and_rejoin() {
        let relay = fast_relay(2, None);
        let addr = relay.addr();
        let cfg = SupervisorConfig::default();
        let a = attach(addr, &cfg, Some(1)).unwrap();
        assert_eq!(a.slot, 1);
        // The seat is taken now.
        assert_eq!(attach(addr, &cfg, Some(1)).unwrap_err(), NetError::Refused);
        // Drop it hard; the seat becomes Gone and may be reclaimed.
        drop(a.conn);
        let deadline = Instant::now() + Duration::from_secs(5);
        let rejoined = loop {
            match attach(addr, &cfg, Some(1)) {
                Ok(at) => break at,
                Err(_) if Instant::now() < deadline => thread::sleep(Duration::from_millis(50)),
                Err(e) => panic!("rejoin failed: {e}"),
            }
        };
        assert_eq!(rejoined.slot, 1);
        relay.shutdown();
    }

    #[test]
    fn vanished_seat_is_reported_crashed() {
        let relay = fast_relay(2, None);
        let addr = relay.addr();
        let cfg = SupervisorConfig::default();
        let a = attach(addr, &cfg, Some(0)).unwrap();
        let b = attach(addr, &cfg, Some(1)).unwrap();
        drop(b.conn); // vanishes without Bye
        a.conn.goodbye();
        assert!(relay.wait_done(Duration::from_secs(5)));
        assert_eq!(relay.crashed_slots(), vec![1]);
        relay.shutdown();
    }
}
