//! The connection supervisor: budgeted, jittered-exponential
//! reconnection and the hello/welcome attachment handshake.
//!
//! Dialing a relay is the one place the TCP transport must tolerate
//! *repeated* failure (the relay may not be listening yet, a NAT
//! mapping may have lapsed, a connection may die mid-session).
//! [`attach`] wraps the whole sequence — connect with a deadline,
//! exchange `Hello`/`Welcome`, validate the version — in an attempt
//! budget with the same jittered-exponential backoff the serve layer
//! uses for admission shedding ([`crate::serve::backoff_delay`]), so a
//! thundering herd of reconnecting parties spreads out instead of
//! synchronizing.

use crate::clock::SharedClock;
use crate::serve::backoff_delay;
use crate::tcp::conn::{ConnConfig, FramedConn};
use crate::tcp::frame::{Frame, VERSION};
use crate::NetError;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Reconnect policy of the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Attempt budget: total connection attempts before
    /// [`NetError::ConnectFailed`].
    pub connect_attempts: u32,
    /// Deadline of one TCP connect.
    pub connect_timeout: Duration,
    /// Base of the jittered-exponential backoff between attempts.
    pub backoff_base: Duration,
    /// Backoff cap.
    pub backoff_cap: Duration,
    /// Jitter seed (vary per party so herds desynchronize).
    pub seed: u64,
    /// Deadlines of the resulting framed connection.
    pub conn: ConnConfig,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            connect_attempts: 8,
            connect_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(800),
            seed: 0,
            conn: ConnConfig::default(),
        }
    }
}

/// A successful attachment: the framed connection, the assigned slot,
/// the session width, and how many failed attempts the backoff absorbed.
#[derive(Debug)]
pub struct Attachment {
    /// The attached, welcomed connection.
    pub conn: FramedConn,
    /// Slot the relay assigned.
    pub slot: usize,
    /// Total slots in the session.
    pub slots: usize,
    /// Attempts that failed before this one succeeded (each cost one
    /// backoff sleep; counted into `TransportCounters::reconnects` by
    /// callers re-attaching mid-session).
    pub failed_attempts: u32,
}

/// Dials `addr` under the supervisor's budget until a TCP connection is
/// established (no hello exchange).
///
/// # Errors
///
/// [`NetError::ConnectFailed`] once the attempt budget is spent.
pub fn connect_supervised(
    addr: SocketAddr,
    cfg: &SupervisorConfig,
) -> Result<(FramedConn, u32), NetError> {
    connect_supervised_with_clock(addr, cfg, &crate::clock::wall())
}

/// [`connect_supervised`] with an explicit [`crate::clock::Clock`]
/// governing the backoff sleeps (the one wall-clock wait of the
/// supervisor; the TCP connect timeout itself is the kernel's).
///
/// # Errors
///
/// [`NetError::ConnectFailed`] once the attempt budget is spent.
pub fn connect_supervised_with_clock(
    addr: SocketAddr,
    cfg: &SupervisorConfig,
    clock: &SharedClock,
) -> Result<(FramedConn, u32), NetError> {
    let mut failed = 0u32;
    for attempt in 1..=cfg.connect_attempts.max(1) {
        match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
            Ok(stream) => {
                let conn = FramedConn::new(stream, cfg.conn)?;
                return Ok((conn, failed));
            }
            Err(_) => {
                failed += 1;
                if attempt < cfg.connect_attempts {
                    clock.sleep(backoff_delay(
                        attempt,
                        cfg.backoff_base,
                        cfg.backoff_cap,
                        cfg.seed,
                    ));
                }
            }
        }
    }
    Err(NetError::ConnectFailed)
}

/// Dials `addr` and runs the attachment handshake: sends
/// `Hello { version, want_slot }`, expects `Welcome { slot, slots }`.
/// `want_slot = None` lets the relay pick any free slot (pass a slot to
/// reclaim a seat after a mid-session reconnect).
///
/// A connection that opens but then fails the hello exchange (refused,
/// version mismatch, dead relay) consumes one attempt and re-dials,
/// except [`NetError::Refused`] which is terminal — retrying a refusal
/// only hammers a relay that already said no.
///
/// # Errors
///
/// [`NetError::ConnectFailed`] when the budget is spent,
/// [`NetError::Refused`] on an explicit refusal.
pub fn attach(
    addr: SocketAddr,
    cfg: &SupervisorConfig,
    want_slot: Option<usize>,
) -> Result<Attachment, NetError> {
    attach_with_clock(addr, cfg, want_slot, &crate::clock::wall())
}

/// [`attach`] with an explicit [`crate::clock::Clock`] governing the
/// backoff sleeps between attachment attempts.
///
/// # Errors
///
/// [`NetError::ConnectFailed`] when the budget is spent,
/// [`NetError::Refused`] on an explicit refusal.
pub fn attach_with_clock(
    addr: SocketAddr,
    cfg: &SupervisorConfig,
    want_slot: Option<usize>,
    clock: &SharedClock,
) -> Result<Attachment, NetError> {
    let mut failed = 0u32;
    for attempt in 1..=cfg.connect_attempts.max(1) {
        match try_attach_once(addr, cfg, want_slot) {
            Ok((conn, slot, slots)) => {
                return Ok(Attachment {
                    conn,
                    slot,
                    slots,
                    failed_attempts: failed,
                })
            }
            Err(NetError::Refused) => return Err(NetError::Refused),
            Err(_) => {
                failed += 1;
                if attempt < cfg.connect_attempts {
                    clock.sleep(backoff_delay(
                        attempt,
                        cfg.backoff_base,
                        cfg.backoff_cap,
                        cfg.seed,
                    ));
                }
            }
        }
    }
    Err(NetError::ConnectFailed)
}

fn try_attach_once(
    addr: SocketAddr,
    cfg: &SupervisorConfig,
    want_slot: Option<usize>,
) -> Result<(FramedConn, usize, usize), NetError> {
    let stream =
        TcpStream::connect_timeout(&addr, cfg.connect_timeout).map_err(|_| NetError::Timeout)?;
    let mut conn = FramedConn::new(stream, cfg.conn)?;
    conn.send(&Frame::Hello {
        version: VERSION,
        want_slot: want_slot.map_or(u32::MAX, |s| s as u32),
    })?;
    match conn.recv()? {
        Frame::Welcome { slot, slots } => Ok((conn, slot as usize, slots as usize)),
        Frame::Bye => Err(NetError::Refused),
        _ => Err(NetError::Refused),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn local_cfg() -> SupervisorConfig {
        SupervisorConfig {
            connect_attempts: 3,
            connect_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            ..Default::default()
        }
    }

    #[test]
    fn budget_exhaustion_is_structured() {
        // Bind then drop: the port is (very likely) unbound now, and
        // connecting to it fails fast with ECONNREFUSED.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert_eq!(
            connect_supervised(addr, &local_cfg()).unwrap_err(),
            NetError::ConnectFailed
        );
    }

    #[test]
    fn late_listener_is_reached_by_retry() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = SupervisorConfig {
            connect_attempts: 30,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(30),
            ..local_cfg()
        };
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(80));
            let l = TcpListener::bind(addr).unwrap();
            let _ = l.accept();
        });
        let (_, failed) = connect_supervised(addr, &cfg).unwrap();
        assert!(failed > 0, "the first attempts should have failed");
        binder.join().unwrap();
    }

    #[test]
    fn refusal_is_terminal() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (s, _) = l.accept().unwrap();
            let mut c = FramedConn::new(s, ConnConfig::default()).unwrap();
            let _ = c.recv(); // swallow the hello
            let _ = c.send(&Frame::Bye);
        });
        assert_eq!(
            attach(addr, &local_cfg(), None).unwrap_err(),
            NetError::Refused
        );
        server.join().unwrap();
    }
}
