//! Pluggable adversary schedules, expressed over the [`shs_net::fault`]
//! vocabulary.
//!
//! A [`Schedule`] decides, per simulated session, three things the
//! capacity harness composes into an attempt: the **roster** (which
//! pool members — or credential-less outsiders — fill the slots), the
//! **fault plan** handed to each attempt's medium, and the **latency
//! model** of that session's links. Everything is keyed by `(schedule
//! seed, session index, attempt)`, so a schedule is a deterministic
//! function: the same seed replays the identical campaign.
//!
//! The five adversaries are chosen to land sessions in *different*
//! terminal classes (see `EXPERIMENTS.md` E20 — the abort-class
//! histogram is the observable that separates them):
//!
//! * [`Kind::Partition`] — a persistent link cut. Liveness stays
//!   uniform (everyone keeps transmitting), so the service retries the
//!   full roster until the attempt budget runs out: **exhausted**.
//! * [`Kind::SlowLoris`] — one peer's bytes dribble: most of its
//!   deliveries arrive truncated, and every link crawls. Sessions
//!   split three ways: late **accepted**, **rejected** (the victim
//!   ends partially unverified) and **exhausted** retry budgets.
//! * [`Kind::PhaseCrash`] — crash-stop timed to the Phase I/II
//!   boundary (after the two DGKA broadcasts, before the Phase II
//!   MAC). One victim leaves survivors to re-form and **accept**; two
//!   victims of a 3-party session leave a lone survivor:
//!   **too-few-survivors**.
//! * [`Kind::SybilFlood`] — a flood of outsider-heavy rosters thrown
//!   at an undersized service: admitted sessions complete as
//!   **rejected** (no credentials, no handshake), the overflow is
//!   **shed** by admission control.
//! * [`Kind::EpochChurn`] — half the rosters include a member that
//!   missed an epoch rekey; its stale group key fails Phase II against
//!   synced peers, splitting sessions between **accepted** and
//!   **rejected**.

use crate::core::{mix64, LatencyModel};
use shs_core::service::Participant;
use shs_net::fault::{FaultPlan, FaultRule};
use std::time::Duration;

/// The adversary families the simulator ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// No adversary: the clean-throughput baseline.
    Clean,
    /// Persistent partition isolating slot 0 from the rest.
    Partition,
    /// Byte-dribbling victim plus crawling links.
    SlowLoris,
    /// Crash-stop timed to the Phase I/II boundary.
    PhaseCrash,
    /// Outsider rosters flooding an undersized service.
    SybilFlood,
    /// Rosters mixing in members with stale epoch keys.
    EpochChurn,
}

impl Kind {
    /// Every shipped adversary, baseline first.
    pub const ALL: [Kind; 6] = [
        Kind::Clean,
        Kind::Partition,
        Kind::SlowLoris,
        Kind::PhaseCrash,
        Kind::SybilFlood,
        Kind::EpochChurn,
    ];

    /// The schedule's stable name (metric keys, JSON, CI assertions).
    pub fn name(self) -> &'static str {
        match self {
            Kind::Clean => "clean",
            Kind::Partition => "partition",
            Kind::SlowLoris => "slow-loris",
            Kind::PhaseCrash => "phase-crash",
            Kind::SybilFlood => "sybil-flood",
            Kind::EpochChurn => "epoch-churn",
        }
    }
}

/// A seeded adversary schedule: [`Kind`] plus the campaign seed.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    /// Which adversary family.
    pub kind: Kind,
    /// Campaign seed; all per-session decisions derive from it.
    pub seed: u64,
}

impl Schedule {
    /// A schedule of `kind` seeded by `seed`.
    pub fn new(kind: Kind, seed: u64) -> Schedule {
        Schedule { kind, seed }
    }

    /// Stable name (delegates to [`Kind::name`]).
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Per-session sub-seed, independent across sessions.
    fn session_seed(&self, session: u64) -> u64 {
        mix64(self.seed ^ mix64(session.wrapping_add(0x5eed)))
    }

    /// The roster for session `session` of width `m`, drawing members
    /// from a pool of `pool_len` credentials of which indices
    /// `stale_from..` hold **stale** (pre-rekey) keys. Non-adversarial
    /// schedules rotate through the fresh region so the campaign
    /// exercises the whole pool.
    pub fn participants(
        &self,
        session: u64,
        m: usize,
        pool_len: usize,
        stale_from: usize,
    ) -> Vec<Participant> {
        let fresh = stale_from.max(1);
        let rotate =
            |i: usize| Participant::Member((session as usize * m + i) % fresh.min(pool_len));
        match self.kind {
            Kind::SybilFlood => {
                // One real member probing a wall of Sybils: slots 1.. are
                // credential-less outsiders.
                let mut slots = vec![rotate(0)];
                slots.extend(std::iter::repeat_n(
                    Participant::Outsider,
                    m.saturating_sub(1),
                ));
                slots
            }
            Kind::EpochChurn if session % 2 == 1 && stale_from < pool_len => {
                // Odd sessions smuggle in one stale member.
                let stale_len = pool_len - stale_from;
                let stale = stale_from + (session as usize / 2) % stale_len;
                let mut slots: Vec<Participant> = (0..m.saturating_sub(1)).map(rotate).collect();
                slots.push(Participant::Member(stale));
                slots
            }
            _ => (0..m).map(rotate).collect(),
        }
    }

    /// The fault plan for one attempt, or `None` for a clean medium.
    pub fn plan(&self, session: u64, attempt: u32, m: usize) -> Option<FaultPlan> {
        let seed = self.session_seed(session).wrapping_add(u64::from(attempt));
        match self.kind {
            Kind::Clean | Kind::SybilFlood | Kind::EpochChurn => None,
            Kind::Partition => {
                // The cut persists across attempts: partitions that do
                // not heal exhaust the retry budget.
                Some(FaultPlan::new(seed).with(FaultRule::partition(1)))
            }
            Kind::SlowLoris => {
                let victim = (session as usize) % m;
                // Aggressive enough that a session's retry budget often
                // runs dry mid-phase: the histogram mixes late accepts,
                // rejects (the victim ends partially unverified) and
                // exhausted retry budgets.
                Some(
                    FaultPlan::new(seed)
                        .with(FaultRule::truncate().from(victim).with_probability(0.6)),
                )
            }
            Kind::PhaseCrash => {
                if attempt > 0 {
                    // The crash was transient; the re-formed attempt
                    // runs clean.
                    return None;
                }
                // Crash after the two DGKA broadcasts — the Phase I/II
                // boundary, the most expensive point to lose a peer.
                let mut plan = FaultPlan::new(seed).with(FaultRule::crash_stop(m - 1, 2));
                if session % 2 == 1 && m >= 3 {
                    // Odd sessions lose a second victim, leaving too few
                    // survivors to re-form.
                    plan = plan.with(FaultRule::crash_stop(m - 2, 2));
                }
                Some(plan)
            }
        }
    }

    /// The latency model of session `session`'s links.
    pub fn latency(&self, session: u64) -> LatencyModel {
        let seed = self.session_seed(session) ^ 0x1a7e_0c1e;
        match self.kind {
            Kind::SlowLoris => LatencyModel {
                // The dribbler stalls everyone: ~10× LAN latencies.
                base: Duration::from_millis(2),
                jitter: Duration::from_millis(8),
                seed,
            },
            _ => LatencyModel::lan(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_session() {
        for kind in Kind::ALL {
            let s = Schedule::new(kind, 42);
            for session in 0..4u64 {
                let a = s.participants(session, 3, 8, 6);
                let b = s.participants(session, 3, 8, 6);
                assert_eq!(a, b, "{} roster", s.name());
                assert_eq!(
                    s.latency(session).draw("dgka-r1", 0, 1, 1, 0),
                    s.latency(session).draw("dgka-r1", 0, 1, 1, 0),
                    "{} latency",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn sybil_rosters_are_outsider_heavy() {
        let s = Schedule::new(Kind::SybilFlood, 7);
        let slots = s.participants(3, 3, 8, 8);
        assert!(matches!(slots[0], Participant::Member(_)));
        assert_eq!(&slots[1..], &[Participant::Outsider, Participant::Outsider]);
    }

    #[test]
    fn churn_alternates_stale_and_fresh_rosters() {
        let s = Schedule::new(Kind::EpochChurn, 7);
        let fresh = s.participants(0, 3, 8, 6);
        assert!(fresh
            .iter()
            .all(|p| matches!(p, Participant::Member(i) if *i < 6)));
        let churned = s.participants(1, 3, 8, 6);
        assert!(churned
            .iter()
            .any(|p| matches!(p, Participant::Member(i) if *i >= 6)));
    }

    #[test]
    fn phase_crash_clears_after_first_attempt() {
        let s = Schedule::new(Kind::PhaseCrash, 7);
        assert!(s.plan(0, 0, 3).is_some());
        assert!(s.plan(0, 1, 3).is_none());
        // Even sessions crash one victim, odd sessions two.
        assert_eq!(s.plan(0, 0, 3).unwrap().crashed_slots(3).len(), 0);
        let even = FaultPlan::new(1).with(FaultRule::crash_stop(2, 2));
        assert_eq!(even.crash_budget(2), Some(2));
    }
}
