//! Discrete-event core: virtual time, the deterministic event queue,
//! and the seeded latency/loss model.
//!
//! Everything here is a pure function of seeds and event history — no
//! OS clock, no thread timing, no global RNG — which is what makes the
//! whole simulator bit-reproducible: the same seed produces the same
//! event trace, byte for byte, on any host.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Virtual time, in nanoseconds since simulation start.
pub type Nanos = u64;

/// Converts a [`Duration`] to virtual nanoseconds (saturating).
pub fn nanos(d: Duration) -> Nanos {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. Used to
/// derive independent deterministic draws from structured keys.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string, for hashing round labels into draw keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A uniform draw in `[0, 1)` keyed by `(seed, key)` — *stateless*, so
/// the value depends only on the key, never on how many draws happened
/// before (draw-order independence is a determinism requirement: party
/// threads race, but their coins are pinned to identities, not to time).
pub fn unit_draw(seed: u64, key: u64) -> f64 {
    // 53 mantissa bits of the mixed key, scaled to [0, 1).
    (mix64(seed ^ mix64(key)) >> 11) as f64 / (1u64 << 53) as f64
}

/// The seeded per-link latency model: every delivery takes
/// `base + u * jitter` of virtual time, with `u` drawn per
/// `(round, sender, receiver, sender-sequence, copy)` so retransmitted
/// and duplicated copies get fresh, still-deterministic draws.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Minimum one-way delivery latency.
    pub base: Duration,
    /// Uniform jitter added on top of `base`.
    pub jitter: Duration,
    /// Seed of the latency draws (independent of the fault-plan seed).
    pub seed: u64,
}

impl LatencyModel {
    /// A symmetric LAN-ish default: 200 µs base, 800 µs jitter.
    pub fn lan(seed: u64) -> LatencyModel {
        LatencyModel {
            base: Duration::from_micros(200),
            jitter: Duration::from_micros(800),
            seed,
        }
    }

    /// The virtual transit time of one delivery copy.
    pub fn draw(&self, round: &str, from: usize, to: usize, seq: u64, copy: u64) -> Nanos {
        let key = fnv1a(round.as_bytes())
            ^ mix64((from as u64) << 48 | (to as u64) << 32 | (copy & 0xffff) << 16)
            ^ mix64(seq);
        let u = unit_draw(self.seed, key);
        nanos(self.base) + (u * nanos(self.jitter) as f64) as Nanos
    }
}

/// An event queue keyed by `(time, tiebreak)` with fully deterministic
/// pop order: ties on time break on the event's identity key, never on
/// insertion order (insertion order can depend on thread interleaving;
/// identity keys cannot).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueueEntry<E>>,
    /// Events ever pushed (part of the reproducibility fingerprint).
    pushed: u64,
}

#[derive(Debug)]
struct QueueEntry<E> {
    at: Nanos,
    tiebreak: u64,
    event: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tiebreak == other.tiebreak
    }
}
impl<E> Eq for QueueEntry<E> {}
impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.tiebreak).cmp(&(self.at, self.tiebreak))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            pushed: 0,
        }
    }

    /// Schedules `event` at virtual time `at`. `tiebreak` orders events
    /// that share a timestamp and must be a deterministic function of
    /// the event's identity (sender, receiver, sequence…).
    pub fn push(&mut self, at: Nanos, tiebreak: u64, event: E) {
        self.heap.push(QueueEntry {
            at,
            tiebreak,
            event,
        });
        self.pushed += 1;
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// A running FNV-style fingerprint of the event trace: every processed
/// event folds its identity in, so two runs with identical traces — and
/// only those — end with identical fingerprints. Committed into the
/// metrics JSON as the bit-reproducibility witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFingerprint(u64);

impl TraceFingerprint {
    /// The empty-trace fingerprint.
    pub fn new() -> TraceFingerprint {
        TraceFingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one event's identity into the fingerprint.
    pub fn fold(&mut self, words: &[u64]) {
        for &w in words {
            self.0 = mix64(self.0 ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The fingerprint value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for TraceFingerprint {
    fn default() -> Self {
        TraceFingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_pops_in_time_then_tiebreak_order() {
        let mut q = EventQueue::new();
        q.push(50, 2, "b");
        q.push(50, 1, "a");
        q.push(10, 9, "first");
        q.push(99, 0, "last");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "a", "b", "last"]);
    }

    #[test]
    fn draws_are_stateless_and_key_sensitive() {
        let lm = LatencyModel::lan(7);
        let a = lm.draw("dgka-r1", 0, 1, 0, 0);
        let b = lm.draw("dgka-r1", 0, 1, 0, 0);
        assert_eq!(a, b, "same key, same draw");
        assert_ne!(a, lm.draw("dgka-r1", 0, 2, 0, 0), "receiver changes it");
        assert_ne!(a, lm.draw("dgka-r1", 0, 1, 1, 0), "sequence changes it");
        assert!(a >= nanos(lm.base));
        assert!(a < nanos(lm.base) + nanos(lm.jitter));
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = TraceFingerprint::new();
        a.fold(&[1, 2]);
        let mut b = TraceFingerprint::new();
        b.fold(&[2, 1]);
        assert_ne!(a.value(), b.value());
        let mut c = TraceFingerprint::new();
        c.fold(&[1, 2]);
        assert_eq!(a.value(), c.value());
    }
}
