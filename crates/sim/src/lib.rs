//! **`shs-sim`** — a deterministic discrete-event adversary simulator
//! for the GCD secret-handshake stack.
//!
//! The simulator runs *thousands* of concurrent handshake sessions
//! through the **real** engine — real credentials, real DGKA, real
//! Phase II/III crypto, the real service attempt loop semantics — under
//! a virtual clock: latency, loss, backoff and deadlines are all
//! simulated time, so a campaign that spans minutes of network time
//! completes in seconds of CPU and performs **zero wall-clock sleeps**.
//!
//! Same seed ⇒ same event trace, byte for byte: every latency draw and
//! fault coin is a pure function of event identities (see
//! [`core::unit_draw`]), every tie in the event queue breaks on
//! identity keys, and the committed metrics JSON
//! ([`metrics::render_deterministic`]) contains virtual-time numbers
//! only.
//!
//! # Module map
//!
//! * [`core`] — virtual time, the deterministic event queue, seeded
//!   latency distributions, the trace fingerprint.
//! * [`network`] — the simulated media: [`network::SimMedium`] (drop-in
//!   for the lockstep `BroadcastNet`) and [`network::run_session`]
//!   (virtual-time counterpart of the threaded hub, driving the
//!   unmodified per-party `run_party` driver).
//! * [`adversary`] — pluggable schedules over the `shs-net` fault
//!   vocabulary: partition, slow-loris, phase-timed crash, Sybil
//!   flood, epoch churn.
//! * [`metrics`] — class tallies, log-bucket latency histograms and
//!   the deterministic JSON section of `BENCH_sim.json`.
//!
//! The crate root hosts the **capacity harness**: a discrete-event
//! model of the session service (virtual workers, bounded admission
//! queue, shed-on-overflow) whose per-session attempt loop mirrors
//! `shs_net::serve`'s drive semantics — same liveness analysis, same
//! survivor re-formation, same backoff and classification — with every
//! handshake attempt executed by [`HandshakeJob::run_attempt_on`] over
//! a [`SimMedium`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod core;
pub mod metrics;
pub mod network;

use crate::adversary::{Kind, Schedule};
use crate::core::{nanos, EventQueue, Nanos, TraceFingerprint};
use crate::metrics::{ClassTally, LatencyHistogram, ScenarioReport};
use crate::network::SimMedium;
use shs_core::service::HandshakeJob;
use shs_core::{HandshakeOptions, Member, SchemeKind};
use shs_crypto::drbg::HmacDrbg;
use shs_net::observe::FaultCounters;
use shs_net::serve::{backoff_delay, live_slots, AttemptContext, AttemptVerdict, TerminalClass};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// A credential pool shared by every simulated session: `members`
/// holds real admitted credentials, and indices `stale_from..` hold
/// members that **missed the last epoch rekey** (their group key is one
/// epoch behind — the epoch-churn adversary's ammunition).
pub struct SimPool {
    /// The admitted members.
    pub members: Arc<Vec<Member>>,
    /// First stale index; `members.len()` when the whole pool is fresh.
    pub stale_from: usize,
}

/// Unwraps one pool-construction step. Pool setup consumes no wire
/// data — a failure here is a harness bug, not protocol input, so the
/// panic is deliberate (see [`SimPool::build`]'s `# Panics`).
fn step<T, E: std::fmt::Debug>(what: &str, r: Result<T, E>) -> T {
    // lint:allow(panic-path) reason="simulator pool setup, no wire data; failure is a harness bug, documented under SimPool::build # Panics"
    r.unwrap_or_else(|e| panic!("shs-sim pool setup: {what}: {e:?}"))
}

impl SimPool {
    /// A pool of `fresh + stale` members of one Scheme-1 test group.
    /// The pool is built, a sacrificial member is removed to force an
    /// epoch rekey, and only the first `fresh` members apply the
    /// resulting update — the last `stale` members keep their pre-rekey
    /// keys. With `stale == 0` every member is synced.
    ///
    /// # Panics
    ///
    /// Panics if group setup fails — harness configuration, not input.
    pub fn build(fresh: usize, stale: usize, seed: u64) -> SimPool {
        let tag = format!("shs-sim/pool/{seed:016x}");
        let mut rng = HmacDrbg::from_seed(tag.as_bytes());
        let mut ga = shs_core::fixtures::test_authority(SchemeKind::Scheme1, &mut rng);
        let mut members: Vec<Member> = Vec::new();
        for _ in 0..fresh + stale {
            let (m, update) = step("admit pool member", ga.admit(&mut rng));
            for existing in &mut members {
                step("sync pool member", existing.apply_update(&update));
            }
            members.push(m);
        }
        if stale > 0 {
            // The sacrificial leaver: removing it rekeys the epoch.
            let (victim, update) = step("admit sacrificial member", ga.admit(&mut rng));
            for existing in &mut members {
                step("sync pool member", existing.apply_update(&update));
            }
            let rekey = step("epoch rekey", ga.remove(victim.id(), &mut rng));
            for existing in members.iter_mut().take(fresh) {
                step("apply rekey", existing.apply_update(&rekey));
            }
            // members[fresh..] deliberately skip the rekey: stale.
        }
        SimPool {
            members: Arc::new(members),
            stale_from: fresh,
        }
    }
}

/// Knobs of one scenario run: the service model (virtual workers,
/// bounded queue) plus the per-session budget, mirroring
/// [`shs_net::serve::ServiceConfig`] in virtual time.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Sessions submitted.
    pub sessions: u64,
    /// Parties per session.
    pub group_size: usize,
    /// Virtual workers executing sessions concurrently.
    pub workers: usize,
    /// Admission queue depth; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Virtual gap between consecutive arrivals (zero = one burst).
    pub arrival_spacing: Duration,
    /// Attempts allowed per session (including the first).
    pub max_attempts: u32,
    /// Per-session virtual deadline.
    pub deadline: Duration,
    /// Backoff base between attempts.
    pub backoff_base: Duration,
    /// Backoff cap.
    pub backoff_cap: Duration,
    /// Service seed (drives per-attempt seeds exactly like the real
    /// service's drive loop).
    pub seed: u64,
}

impl ScenarioConfig {
    /// A burst of `sessions` 3-party sessions with service-like
    /// defaults and enough workers that nothing queues.
    pub fn burst(sessions: u64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            sessions,
            group_size: 3,
            workers: sessions.max(1) as usize,
            queue_capacity: 64,
            arrival_spacing: Duration::ZERO,
            max_attempts: 3,
            deadline: Duration::from_secs(30),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            seed,
        }
    }
}

/// How one simulated session ended, with its whole-campaign metrics.
struct SessionOutcome {
    class: TerminalClass,
    duration: Nanos,
    reformations: u64,
    attempts: u64,
    exchanges: u64,
    deliveries: u64,
    faults: FaultCounters,
    fingerprint: u64,
}

fn class_code(class: TerminalClass) -> u64 {
    match class {
        TerminalClass::Accepted => 1,
        TerminalClass::Rejected => 2,
        TerminalClass::Shed => 3,
        TerminalClass::Exhausted => 4,
        TerminalClass::DeadlineExceeded => 5,
        TerminalClass::TooFewSurvivors => 6,
        TerminalClass::Drained => 7,
    }
}

fn add_faults(into: &mut FaultCounters, from: &FaultCounters) {
    into.dropped += from.dropped;
    into.duplicated += from.duplicated;
    into.corrupted += from.corrupted;
    into.truncated += from.truncated;
    into.delayed += from.delayed;
    into.redelivered += from.redelivered;
    into.crash_silenced += from.crash_silenced;
    into.partitioned += from.partitioned;
    into.backpressure_dropped += from.backpressure_dropped;
}

/// Runs one session to a terminal class in virtual time: the attempt
/// loop with deadline checks, liveness analysis, survivor re-formation
/// and jittered backoff — `shs_net::serve`'s drive semantics, with the
/// medium's virtual clock supplying all the time that passes.
fn run_virtual_session(
    pool: &SimPool,
    schedule: Schedule,
    cfg: &ScenarioConfig,
    session: u64,
) -> SessionOutcome {
    let m = cfg.group_size;
    let slots = schedule.participants(session, m, pool.members.len(), pool.stale_from);
    let label = format!("sim/{}/{}", schedule.name(), session);
    let mut job = HandshakeJob::new(
        Arc::clone(&pool.members),
        m,
        HandshakeOptions::default(),
        &label,
    )
    .with_slots(slots);
    let deadline = nanos(cfg.deadline);
    let mut out = SessionOutcome {
        class: TerminalClass::DeadlineExceeded,
        duration: 0,
        reformations: 0,
        attempts: 0,
        exchanges: 0,
        deliveries: 0,
        faults: FaultCounters::default(),
        fingerprint: 0,
    };
    let mut fp = TraceFingerprint::new();
    let mut roster: Vec<usize> = (0..m).collect();
    let mut attempt: u32 = 0;
    loop {
        if out.duration >= deadline {
            out.class = TerminalClass::DeadlineExceeded;
            break;
        }
        // Per-attempt seed derivation identical to serve's drive loop.
        let seed = cfg
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(session)
            .wrapping_add(u64::from(attempt) << 32);
        let ctx = AttemptContext {
            session_id: session,
            attempt,
            roster: roster.clone(),
            seed,
        };
        let mut net = SimMedium::new(roster.len(), schedule.latency(session));
        if let Some(plan) = schedule.plan(session, attempt, m) {
            net.set_fault_plan(plan);
        }
        let result = job.run_attempt_on(&ctx, &mut net);
        out.attempts += 1;
        out.exchanges += net.exchanges();
        out.deliveries += net.deliveries();
        out.duration = out.duration.saturating_add(nanos(net.elapsed()));
        add_faults(&mut out.faults, result.traffic.faults());
        fp.fold(&[session, u64::from(attempt), net.fingerprint()]);
        let live = live_slots(&roster, &result.traffic);
        match result.verdict {
            AttemptVerdict::Success => {
                out.class = TerminalClass::Accepted;
                break;
            }
            AttemptVerdict::Failure => {
                out.class = TerminalClass::Rejected;
                break;
            }
            AttemptVerdict::Abort => {
                if live.len() < 2 {
                    out.class = TerminalClass::TooFewSurvivors;
                    break;
                }
                if attempt + 1 >= cfg.max_attempts {
                    out.class = TerminalClass::Exhausted;
                    break;
                }
                if live.len() < roster.len() {
                    out.reformations += 1;
                    roster = live;
                }
                attempt += 1;
                let wait = backoff_delay(attempt, cfg.backoff_base, cfg.backoff_cap, seed);
                out.duration = out
                    .duration
                    .saturating_add(nanos(wait).min(deadline.saturating_sub(out.duration)));
            }
        }
    }
    fp.fold(&[class_code(out.class), out.duration]);
    out.fingerprint = fp.value();
    out
}

/// The service-model events of the capacity harness.
enum SimEv {
    Arrival(u64),
    Completion { session: u64, arrival: Nanos },
}

/// Runs one scenario: `cfg.sessions` sessions submitted to a virtual
/// service of `cfg.workers` workers and a bounded admission queue,
/// each executed through the real handshake engine over a simulated
/// medium. Fully deterministic: the returned report (fingerprint
/// included) is a pure function of `(pool seed, schedule, cfg)`.
pub fn run_scenario(pool: &SimPool, schedule: Schedule, cfg: &ScenarioConfig) -> ScenarioReport {
    let mut queue: EventQueue<SimEv> = EventQueue::new();
    let spacing = nanos(cfg.arrival_spacing);
    for s in 0..cfg.sessions {
        queue.push(s.saturating_mul(spacing), s * 2, SimEv::Arrival(s));
    }
    let mut report = ScenarioReport {
        name: schedule.name(),
        sessions: cfg.sessions,
        peak_concurrency: 0,
        classes: ClassTally::default(),
        reformations: 0,
        attempts: 0,
        exchanges: 0,
        deliveries: 0,
        faults: FaultCounters::default(),
        latency: LatencyHistogram::new(),
        makespan: 0,
        fingerprint: 0,
    };
    let mut fp = TraceFingerprint::new();
    let mut busy: u64 = 0;
    let mut waiting: VecDeque<(u64, Nanos)> = VecDeque::new();
    let start = |session: u64,
                 now: Nanos,
                 queue: &mut EventQueue<SimEv>,
                 busy: &mut u64,
                 report: &mut ScenarioReport,
                 fp: &mut TraceFingerprint,
                 arrival: Nanos| {
        *busy += 1;
        report.peak_concurrency = report.peak_concurrency.max(*busy);
        let out = run_virtual_session(pool, schedule, cfg, session);
        report.classes.bump(out.class);
        report.reformations += out.reformations;
        report.attempts += out.attempts;
        report.exchanges += out.exchanges;
        report.deliveries += out.deliveries;
        add_faults(&mut report.faults, &out.faults);
        fp.fold(&[
            session,
            class_code(out.class),
            out.duration,
            out.fingerprint,
        ]);
        queue.push(
            now.saturating_add(out.duration),
            session * 2 + 1,
            SimEv::Completion { session, arrival },
        );
    };
    while let Some((t, ev)) = queue.pop() {
        report.makespan = report.makespan.max(t);
        match ev {
            SimEv::Arrival(s) => {
                if busy < cfg.workers as u64 {
                    start(s, t, &mut queue, &mut busy, &mut report, &mut fp, t);
                } else if waiting.len() < cfg.queue_capacity {
                    waiting.push_back((s, t));
                } else {
                    report.classes.bump(TerminalClass::Shed);
                    fp.fold(&[s, class_code(TerminalClass::Shed)]);
                }
            }
            SimEv::Completion { session, arrival } => {
                report.latency.record(t.saturating_sub(arrival));
                fp.fold(&[session, t]);
                busy = busy.saturating_sub(1);
                if let Some((next, arrived)) = waiting.pop_front() {
                    start(
                        next,
                        t,
                        &mut queue,
                        &mut busy,
                        &mut report,
                        &mut fp,
                        arrived,
                    );
                }
            }
        }
    }
    report.fingerprint = fp.value();
    report
}

/// Knobs of the full capacity-frontier suite: one clean burst sized
/// for the concurrency criterion plus one campaign per adversary.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Master seed; every scenario derives its own from it.
    pub seed: u64,
    /// Fresh pool members.
    pub pool_fresh: usize,
    /// Stale (pre-rekey) pool members for the epoch-churn adversary.
    pub pool_stale: usize,
    /// Sessions in the clean capacity burst.
    pub burst_sessions: u64,
    /// Virtual workers serving the burst.
    pub burst_workers: usize,
    /// Sessions per adversary campaign.
    pub scenario_sessions: u64,
}

impl SuiteConfig {
    /// The committed-benchmark shape: a 2,200-session burst against
    /// 2,048 virtual workers (peak concurrency ≥ 2,000) plus 120
    /// sessions per adversary.
    pub fn full(seed: u64) -> SuiteConfig {
        SuiteConfig {
            seed,
            pool_fresh: 12,
            pool_stale: 4,
            burst_sessions: 2_200,
            burst_workers: 2_048,
            scenario_sessions: 120,
        }
    }

    /// A seconds-scale shape for tests and `--smoke` runs.
    pub fn smoke(seed: u64) -> SuiteConfig {
        SuiteConfig {
            seed,
            pool_fresh: 6,
            pool_stale: 2,
            burst_sessions: 24,
            burst_workers: 16,
            scenario_sessions: 12,
        }
    }
}

/// The whole suite's deterministic results.
pub struct SuiteReport {
    /// The master seed the suite ran under.
    pub seed: u64,
    /// The clean capacity burst.
    pub capacity: ScenarioReport,
    /// One report per adversary campaign, in [`Kind::ALL`] order
    /// (minus the clean baseline, which the burst already covers).
    pub scenarios: Vec<ScenarioReport>,
}

impl SuiteReport {
    /// The deterministic JSON section (see
    /// [`metrics::render_deterministic`]): byte-identical across runs
    /// with the same [`SuiteConfig`].
    pub fn deterministic_json(&self) -> String {
        metrics::render_deterministic(self.seed, &self.capacity, &self.scenarios)
    }
}

/// Runs the full suite: builds the shared pool, runs the clean
/// capacity burst, then every adversary campaign.
pub fn run_suite(cfg: &SuiteConfig) -> SuiteReport {
    let pool = SimPool::build(cfg.pool_fresh, cfg.pool_stale, cfg.seed);
    let burst_cfg = ScenarioConfig {
        workers: cfg.burst_workers,
        queue_capacity: cfg.burst_sessions as usize,
        ..ScenarioConfig::burst(cfg.burst_sessions, cfg.seed)
    };
    let capacity = run_scenario(&pool, Schedule::new(Kind::Clean, cfg.seed), &burst_cfg);
    let mut scenarios = Vec::new();
    for (i, kind) in Kind::ALL.iter().copied().enumerate() {
        if kind == Kind::Clean {
            continue;
        }
        let seed = cfg.seed.wrapping_add(0x100 * (i as u64 + 1));
        let mut sc = ScenarioConfig::burst(cfg.scenario_sessions, seed);
        if kind == Kind::SybilFlood {
            // The flood targets an undersized service so admission
            // control sheds the overflow.
            sc.workers = (cfg.scenario_sessions as usize / 4).max(2);
            sc.queue_capacity = (cfg.scenario_sessions as usize / 8).max(1);
        }
        scenarios.push(run_scenario(&pool, Schedule::new(kind, seed), &sc));
    }
    SuiteReport {
        seed: cfg.seed,
        capacity,
        scenarios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_burst_accepts_everything_and_tracks_concurrency() {
        let pool = SimPool::build(3, 0, 0xC1EA);
        let cfg = ScenarioConfig::burst(6, 0xC1EA);
        let r = run_scenario(&pool, Schedule::new(Kind::Clean, 0xC1EA), &cfg);
        assert_eq!(r.classes.accepted, 6, "{:?}", r.classes);
        assert_eq!(r.peak_concurrency, 6, "burst arrivals overlap fully");
        assert_eq!(r.latency.count(), 6);
        assert!(r.makespan > 0);
        assert_eq!(r.faults, FaultCounters::default());
    }

    #[test]
    fn same_seed_same_report() {
        let run = || {
            let pool = SimPool::build(3, 0, 7);
            let cfg = ScenarioConfig::burst(4, 7);
            run_scenario(&pool, Schedule::new(Kind::SlowLoris, 7), &cfg)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn undersized_service_sheds_the_overflow() {
        let pool = SimPool::build(3, 0, 9);
        let mut cfg = ScenarioConfig::burst(8, 9);
        cfg.workers = 2;
        cfg.queue_capacity = 1;
        let r = run_scenario(&pool, Schedule::new(Kind::Clean, 9), &cfg);
        assert_eq!(r.classes.shed, 5, "8 arrivals, 2 served + 1 queued");
        assert_eq!(r.classes.total(), 8);
        assert_eq!(r.peak_concurrency, 2);
    }

    #[test]
    fn partition_exhausts_the_full_roster() {
        let pool = SimPool::build(3, 0, 11);
        let mut cfg = ScenarioConfig::burst(2, 11);
        cfg.max_attempts = 2;
        let r = run_scenario(&pool, Schedule::new(Kind::Partition, 11), &cfg);
        assert_eq!(r.classes.exhausted, 2, "{:?}", r.classes);
        assert_eq!(r.reformations, 0, "uniform liveness keeps the roster");
        assert!(r.faults.partitioned > 0);
    }
}
