//! The metrics pipeline: terminal-class tallies, log-bucketed latency
//! histograms, per-scenario reports and the deterministic JSON they
//! render to.
//!
//! Everything in this module is computed from virtual time and event
//! identities only, so the rendered JSON is part of the simulator's
//! bit-reproducibility contract: two runs with the same seed must
//! produce byte-identical output from [`render_deterministic`]. Host
//! facts (wall-clock, core counts) belong in the *caller's* wrapper
//! section, never here.

use crate::core::Nanos;
use shs_net::observe::FaultCounters;
use shs_net::serve::TerminalClass;

/// Counts of sessions per terminal class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassTally {
    /// Completed successfully (full or partial, per policy).
    pub accepted: u64,
    /// Completed as an ordinary protocol failure.
    pub rejected: u64,
    /// Turned away by admission control.
    pub shed: u64,
    /// Retry budget exhausted.
    pub exhausted: u64,
    /// Per-session deadline passed.
    pub deadline_exceeded: u64,
    /// Fewer than two live slots remained.
    pub too_few_survivors: u64,
    /// Swept out by a drain.
    pub drained: u64,
}

impl ClassTally {
    /// Adds one session of class `class`.
    pub fn bump(&mut self, class: TerminalClass) {
        match class {
            TerminalClass::Accepted => self.accepted += 1,
            TerminalClass::Rejected => self.rejected += 1,
            TerminalClass::Shed => self.shed += 1,
            TerminalClass::Exhausted => self.exhausted += 1,
            TerminalClass::DeadlineExceeded => self.deadline_exceeded += 1,
            TerminalClass::TooFewSurvivors => self.too_few_survivors += 1,
            TerminalClass::Drained => self.drained += 1,
        }
    }

    /// Total sessions tallied.
    pub fn total(&self) -> u64 {
        self.accepted
            + self.rejected
            + self.shed
            + self.exhausted
            + self.deadline_exceeded
            + self.too_few_survivors
            + self.drained
    }

    /// The classes observed at least once, as a stable signature — the
    /// observable the adversary schedules are designed to separate.
    pub fn signature(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        for (n, name) in [
            (self.accepted, "accepted"),
            (self.rejected, "rejected"),
            (self.shed, "shed"),
            (self.exhausted, "exhausted"),
            (self.deadline_exceeded, "deadline-exceeded"),
            (self.too_few_survivors, "too-few-survivors"),
            (self.drained, "drained"),
        ] {
            if n > 0 {
                v.push(name);
            }
        }
        v
    }

    fn json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"rejected\":{},\"shed\":{},\"exhausted\":{},\"deadline_exceeded\":{},\"too_few_survivors\":{},\"drained\":{}}}",
            self.accepted,
            self.rejected,
            self.shed,
            self.exhausted,
            self.deadline_exceeded,
            self.too_few_survivors,
            self.drained
        )
    }
}

/// A log₂-bucketed latency histogram over virtual durations. Bucket
/// `i` counts sessions whose latency fell in `[2^i, 2^(i+1))` µs
/// (bucket 0 also absorbs sub-microsecond values), which keeps the
/// histogram exact-integer and therefore byte-reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 40],
    count: u64,
    sum: u128,
    max: Nanos,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; 40],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one session latency.
    pub fn record(&mut self, latency: Nanos) {
        let micros = latency / 1_000;
        let bucket = if micros == 0 {
            0
        } else {
            (63 - micros.leading_zeros() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(latency);
        self.max = self.max.max(latency);
    }

    /// Sessions recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as Nanos
        }
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Upper-bound estimate of the `p`-th percentile (p in 0..=100), as
    /// the upper edge of the bucket containing that rank. Exact-integer
    /// arithmetic only.
    pub fn percentile(&self, p: u64) -> Nanos {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * p.min(100)).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper edge of bucket i, back in nanoseconds.
                return (1u64 << (i + 1)).saturating_mul(1_000);
            }
        }
        self.max
    }

    fn json(&self) -> String {
        let nonzero: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| format!("\"{}us\":{}", 1u64 << i, n))
            .collect();
        format!(
            "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{},\"buckets\":{{{}}}}}",
            self.count,
            self.mean() / 1_000,
            self.percentile(50) / 1_000,
            self.percentile(90) / 1_000,
            self.percentile(99) / 1_000,
            self.max / 1_000,
            nonzero.join(",")
        )
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Everything one scenario run produced — the deterministic section of
/// its metrics.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Schedule name.
    pub name: &'static str,
    /// Sessions submitted.
    pub sessions: u64,
    /// Peak sessions simultaneously in flight (virtual concurrency).
    pub peak_concurrency: u64,
    /// Terminal-class tallies.
    pub classes: ClassTally,
    /// Survivor re-formations across all sessions.
    pub reformations: u64,
    /// Handshake attempts across all sessions.
    pub attempts: u64,
    /// Medium exchanges across all sessions.
    pub exchanges: u64,
    /// Delivery copies that arrived.
    pub deliveries: u64,
    /// Injected-fault tallies summed over every attempt's medium.
    pub faults: FaultCounters,
    /// Submission-to-terminal latency distribution (virtual time).
    pub latency: LatencyHistogram,
    /// Virtual time from first arrival to last completion.
    pub makespan: Nanos,
    /// The campaign's event-trace fingerprint.
    pub fingerprint: u64,
}

impl ScenarioReport {
    /// Completed sessions per virtual second (shed sessions excluded),
    /// in integer milli-sessions/s to stay float-free.
    pub fn throughput_millis_per_sec(&self) -> u64 {
        let done = self.classes.total() - self.classes.shed;
        if self.makespan == 0 {
            return 0;
        }
        ((u128::from(done) * 1_000_000_000_000u128) / u128::from(self.makespan)) as u64
    }

    fn json(&self) -> String {
        let f = &self.faults;
        format!(
            "{{\"name\":\"{}\",\"sessions\":{},\"peak_concurrency\":{},\"classes\":{},\"reformations\":{},\"attempts\":{},\"exchanges\":{},\"deliveries\":{},\"faults\":{{\"dropped\":{},\"duplicated\":{},\"corrupted\":{},\"truncated\":{},\"delayed\":{},\"redelivered\":{},\"crash_silenced\":{},\"partitioned\":{},\"backpressure_dropped\":{}}},\"latency\":{},\"makespan_ms\":{},\"throughput_millis_per_sec\":{},\"fingerprint\":\"{:016x}\"}}",
            self.name,
            self.sessions,
            self.peak_concurrency,
            self.classes.json(),
            self.reformations,
            self.attempts,
            self.exchanges,
            self.deliveries,
            f.dropped,
            f.duplicated,
            f.corrupted,
            f.truncated,
            f.delayed,
            f.redelivered,
            f.crash_silenced,
            f.partitioned,
            f.backpressure_dropped,
            self.latency.json(),
            self.makespan / 1_000_000,
            self.throughput_millis_per_sec(),
            self.fingerprint
        )
    }
}

/// Renders the deterministic section of a suite run: the capacity
/// burst plus one report per adversary scenario. Byte-identical across
/// runs with the same seed — committed as such into `BENCH_sim.json`
/// and asserted by the determinism test.
pub fn render_deterministic(
    seed: u64,
    capacity: &ScenarioReport,
    scenarios: &[ScenarioReport],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("    \"seed\": \"{seed:016x}\",\n"));
    out.push_str(&format!("    \"capacity\": {},\n", capacity.json()));
    out.push_str("    \"scenarios\": [\n");
    for (i, r) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        out.push_str(&format!("      {}{}\n", r.json(), comma));
    }
    out.push_str("    ]\n");
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_signature_names_observed_classes_only() {
        let mut t = ClassTally::default();
        t.bump(TerminalClass::Accepted);
        t.bump(TerminalClass::Accepted);
        t.bump(TerminalClass::TooFewSurvivors);
        assert_eq!(t.signature(), vec!["accepted", "too-few-survivors"]);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn histogram_buckets_and_percentiles_are_integer_stable() {
        let mut h = LatencyHistogram::new();
        for ms in [1u64, 1, 2, 4, 8, 64] {
            h.record(ms * 1_000_000);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 64_000_000);
        assert!(h.percentile(50) >= 1_000_000);
        assert!(h.percentile(100) >= 64_000_000 / 2);
        let a = h.json();
        let b = h.json();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(99), 0);
    }
}
