//! The simulated media: [`SimMedium`] (lockstep, implements
//! [`Medium`]) and [`run_session`]'s `SimLink` (per-party, implements
//! [`PartyLink`]) — the two seams through which the *unmodified*
//! handshake engine and per-party driver run under virtual time.
//!
//! Both media replicate the delivery semantics of their production
//! counterparts exactly — [`shs_net::sync::BroadcastNet`] for the
//! lockstep medium, the threaded [`shs_net::hub`] for the per-party
//! one — including [`FaultPlan`] consultation order, the eavesdropper
//! log discipline (the log records what live senders put on the wire;
//! per-receiver faults happen downstream) and per-sender crash clocks.
//! What they add is *time*: every delivery gets a seeded latency draw,
//! collect windows and patience are measured on the virtual clock, and
//! nothing ever calls `thread::sleep`.
//!
//! # Determinism
//!
//! The per-party session runs real threads (party bodies block in
//! `collect` exactly like hub bodies do), so raw thread interleaving
//! must not be allowed to leak into the trace. Three rules prevent it:
//!
//! 1. **Staged broadcasts.** A `broadcast` only *stages* the message.
//!    Staged messages are processed (logged, faulted, scheduled) in
//!    canonical `(sender-sequence, slot)` order at the next advance
//!    point — when every unfinished party is blocked — so the
//!    [`FaultPlan`]'s seeded coins are always consumed in the same
//!    order no matter which thread ran first.
//! 2. **Stateless latency draws.** Transit times are pure functions of
//!    `(seed, round, from, to, sequence, copy)`, never of draw order.
//! 3. **Identity-keyed event queue.** Simultaneous events pop in
//!    `(time, sender, receiver, …)` order, not insertion order.
//! 4. **Acknowledged deliveries.** The clock never advances while a
//!    blocked party has mail it has not drained: a just-delivered
//!    final copy may complete that party's view, and jumping to a
//!    deadline before its thread gets scheduled would fabricate a
//!    timeout (and a spurious retransmission) out of host scheduling
//!    noise.

use crate::core::{nanos, EventQueue, LatencyModel, Nanos, TraceFingerprint};
use shs_net::fault::FaultPlan;
use shs_net::observe::TrafficLog;
use shs_net::sync::Received;
use shs_net::{Medium, NetError, PartyLink};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// How long a lockstep exchange waits (in virtual time) for deliveries
/// that never arrive before handing the engine an incomplete view —
/// the simulated analogue of a per-round collect deadline.
pub const DEFAULT_EXCHANGE_PATIENCE: Duration = Duration::from_millis(20);

// ---------------------------------------------------------------------------
// SimMedium: the lockstep medium under virtual time
// ---------------------------------------------------------------------------

/// A lockstep broadcast medium with virtual-time accounting: drop-in
/// for [`shs_net::sync::BroadcastNet`] (same delivery and fault
/// semantics, synchronous slot order), plus a virtual clock that
/// charges each exchange what it would have cost on a real network —
/// the maximum arrival latency when every view completed, or the full
/// exchange patience when some delivery was lost and the engine would
/// have waited out its window.
pub struct SimMedium {
    slots: usize,
    latency: LatencyModel,
    patience: Nanos,
    plan: Option<FaultPlan>,
    log: TrafficLog,
    now: Nanos,
    exchange_seq: u64,
    deliveries: u64,
    fingerprint: TraceFingerprint,
}

impl SimMedium {
    /// A fault-free simulated medium connecting `slots` parties.
    pub fn new(slots: usize, latency: LatencyModel) -> SimMedium {
        SimMedium {
            slots,
            latency,
            patience: nanos(DEFAULT_EXCHANGE_PATIENCE),
            plan: None,
            log: TrafficLog::new(),
            now: 0,
            exchange_seq: 0,
            deliveries: 0,
            fingerprint: TraceFingerprint::new(),
        }
    }

    /// Installs a fault schedule; delivery is no longer guaranteed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Overrides the per-exchange patience window.
    pub fn set_patience(&mut self, patience: Duration) {
        self.patience = nanos(patience);
    }

    /// Virtual time elapsed on this medium.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.now)
    }

    /// Exchanges performed.
    pub fn exchanges(&self) -> u64 {
        self.exchange_seq
    }

    /// Delivery copies that arrived.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// The event-trace fingerprint accumulated so far.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint.value()
    }
}

impl Medium for SimMedium {
    fn slots(&self) -> usize {
        self.slots
    }

    fn exchange(
        &mut self,
        round: &str,
        outgoing: Vec<Vec<u8>>,
    ) -> Result<Vec<Vec<Received>>, NetError> {
        if outgoing.len() != self.slots {
            return Err(NetError::IncompleteRound);
        }
        self.exchange_seq += 1;
        let round_key = crate::core::fnv1a(round.as_bytes());
        // Fault clock: release delayed deliveries, decide dead senders
        // (identical order to BroadcastNet::exchange, so a given plan
        // seed fires the same faults on both media).
        let mut due = Vec::new();
        let mut silent = vec![false; self.slots];
        if let Some(plan) = self.plan.as_mut() {
            due = plan.begin_exchange(round);
            for (slot, muted) in silent.iter_mut().enumerate() {
                *muted = plan.suppress_send(slot);
            }
        }
        for (slot, payload) in outgoing.iter().enumerate() {
            if !silent[slot] {
                self.log.record(round, slot, payload);
            }
        }
        let mut inboxes = Vec::with_capacity(self.slots);
        let mut max_arrival: Nanos = 0;
        let mut complete = true;
        for to_slot in 0..self.slots {
            let mut inbox: Vec<Received> = Vec::with_capacity(self.slots);
            for (from_slot, payload) in outgoing.iter().enumerate() {
                if silent[from_slot] {
                    continue;
                }
                let copies = match self.plan.as_mut() {
                    Some(plan) => plan.deliver(round, from_slot, to_slot, payload.clone()),
                    None => vec![payload.clone()],
                };
                if copies.is_empty() {
                    // A live sender's message never reached this
                    // receiver in this exchange: its view is short and
                    // the engine-side collect would wait out the window.
                    complete = false;
                }
                for (ci, copy) in copies.into_iter().enumerate() {
                    let lat =
                        self.latency
                            .draw(round, from_slot, to_slot, self.exchange_seq, ci as u64);
                    max_arrival = max_arrival.max(lat);
                    self.deliveries += 1;
                    self.fingerprint.fold(&[
                        round_key,
                        from_slot as u64,
                        to_slot as u64,
                        copy.len() as u64,
                        lat,
                    ]);
                    inbox.push(Received {
                        from_slot,
                        payload: copy,
                    });
                }
            }
            for r in due.iter().filter(|r| r.to_slot == to_slot) {
                let lat = self
                    .latency
                    .draw(round, r.from_slot, to_slot, self.exchange_seq, 0x8000);
                max_arrival = max_arrival.max(lat);
                self.deliveries += 1;
                self.fingerprint
                    .fold(&[round_key, r.from_slot as u64, to_slot as u64, lat]);
                inbox.push(Received {
                    from_slot: r.from_slot,
                    payload: r.payload.clone(),
                });
            }
            inboxes.push(inbox);
        }
        // Charge the exchange its virtual cost.
        let cost = if complete {
            max_arrival
        } else {
            self.patience.max(max_arrival)
        };
        self.now = self.now.saturating_add(cost);
        self.fingerprint
            .fold(&[round_key, self.exchange_seq, cost, u64::from(complete)]);
        if let Some(plan) = self.plan.as_ref() {
            self.log.set_faults(plan.counters().clone());
        }
        Ok(inboxes)
    }

    fn traffic_snapshot(&self) -> TrafficLog {
        self.log.clone()
    }

    fn crashed_slots(&self) -> Vec<usize> {
        self.plan
            .as_ref()
            .map_or_else(Vec::new, |p| p.crashed_slots(self.slots))
    }
}

// ---------------------------------------------------------------------------
// SimSession: per-party driver under virtual time
// ---------------------------------------------------------------------------

/// One staged (not yet processed) broadcast.
struct Staged {
    /// The sender's broadcast sequence number (its own program order).
    seq: u64,
    slot: usize,
    round: String,
    payload: Vec<u8>,
}

/// A delivery in flight: scheduled on the event queue, lands in the
/// receiver's mailbox at its arrival time.
struct Delivery {
    to: usize,
    from: usize,
    round: String,
    payload: Vec<u8>,
}

struct SessionCore {
    m: usize,
    now: Nanos,
    /// Unfinished parties (a finished party's link was dropped).
    active: usize,
    /// Per-slot collect deadline while the party is blocked in collect.
    waiting: Vec<Option<Nanos>>,
    staged: Vec<Staged>,
    queue: EventQueue<Delivery>,
    /// Per-party received-but-unconsumed messages. Out-of-round
    /// arrivals are *buffered* (not discarded like the wall-clock hub):
    /// under virtual latency a fast party's next-round broadcast can
    /// overtake a slow delivery, and dropping it would turn a
    /// guaranteed-delivery run lossy.
    mailbox: Vec<Vec<(String, usize, Vec<u8>)>>,
    /// Slots with mail delivered since their last mailbox drain. A
    /// blocked party with fresh mail may already hold a completable
    /// view its thread simply has not been scheduled to consume, so
    /// advancing the clock past its deadline would fabricate a timeout
    /// (and a retransmission) out of host scheduling noise.
    fresh_mail: Vec<bool>,
    plan: FaultPlan,
    /// Live (non-suppressed) broadcasts per sender: the crash clock,
    /// ticking per sender broadcast exactly like the hub's.
    sent_live: Vec<u64>,
    /// All broadcast attempts per sender (canonical processing order).
    seq: Vec<u64>,
    log: TrafficLog,
    latency: LatencyModel,
    fingerprint: TraceFingerprint,
    /// Monotone event id, assigned in canonical processing order; the
    /// queue tiebreak for events sharing a timestamp.
    eid: u64,
}

impl SessionCore {
    /// Are all unfinished parties blocked in collect, with every
    /// delivery they have received already drained? Only then may the
    /// simulation advance (conservative synchronization: no party
    /// could still produce an earlier event, and none is sitting on
    /// unread mail that would change what it does next).
    fn ready_to_advance(&self) -> bool {
        self.active > 0
            && self.waiting.iter().filter(|w| w.is_some()).count() == self.active
            && self
                .waiting
                .iter()
                .zip(&self.fresh_mail)
                .all(|(w, fresh)| w.is_none() || !fresh)
    }

    /// Processes one staged broadcast: crash clock, eavesdropper log,
    /// delayed-delivery release, per-receiver faulting, and arrival
    /// scheduling. Mirrors the hub's `relay` closure.
    fn process_broadcast(&mut self, s: Staged) {
        if let Some(after) = self.plan.crash_budget(s.slot) {
            if self.sent_live[s.slot] >= u64::from(after) {
                self.plan.note_crash_silenced();
                return;
            }
        }
        self.sent_live[s.slot] += 1;
        self.log.record(&s.round, s.slot, &s.payload);
        let round_key = crate::core::fnv1a(s.round.as_bytes());
        self.fingerprint
            .fold(&[round_key, s.slot as u64, s.seq, s.payload.len() as u64]);
        // Delayed deliveries keyed on this round label come due now.
        let due = self.plan.begin_exchange(&s.round);
        for (i, d) in due.into_iter().enumerate() {
            let lat = self
                .latency
                .draw(&s.round, d.from_slot, d.to_slot, s.seq, 0x8000 + i as u64);
            let at = self.now.saturating_add(lat);
            self.eid += 1;
            self.queue.push(
                at,
                self.eid,
                Delivery {
                    to: d.to_slot,
                    from: d.from_slot,
                    round: s.round.clone(),
                    payload: d.payload,
                },
            );
        }
        for to in 0..self.m {
            let copies = self.plan.deliver(&s.round, s.slot, to, s.payload.clone());
            for (ci, copy) in copies.into_iter().enumerate() {
                let lat = self.latency.draw(&s.round, s.slot, to, s.seq, ci as u64);
                let at = self.now.saturating_add(lat);
                self.eid += 1;
                self.queue.push(
                    at,
                    self.eid,
                    Delivery {
                        to,
                        from: s.slot,
                        round: s.round.clone(),
                        payload: copy,
                    },
                );
            }
        }
    }

    /// One advance step, called with every unfinished party blocked:
    /// first flush staged broadcasts (no time passes), otherwise move
    /// time forward to the next delivery or the earliest deadline.
    ///
    /// Returns whether anything changed. A `false` means virtual time
    /// already sits at some party's expired deadline and only *that*
    /// party (currently blocked) can make progress — the caller must
    /// release the lock and wait, or the session livelocks.
    fn advance(&mut self) -> bool {
        if !self.staged.is_empty() {
            let mut staged = std::mem::take(&mut self.staged);
            staged.sort_by_key(|s| (s.seq, s.slot));
            for s in staged {
                self.process_broadcast(s);
            }
            return true;
        }
        let was = self.now;
        let mut popped = false;
        match (self.queue.peek_time(), self.min_deadline()) {
            (Some(t), Some(d)) if t <= d => popped = self.pop_delivery(),
            (Some(_), Some(d)) => self.now = self.now.max(d),
            (Some(_t), None) => popped = self.pop_delivery(),
            (None, Some(d)) => self.now = self.now.max(d),
            (None, None) => {}
        }
        popped || self.now > was
    }

    fn min_deadline(&self) -> Option<Nanos> {
        self.waiting.iter().flatten().copied().min()
    }

    fn pop_delivery(&mut self) -> bool {
        if let Some((t, d)) = self.queue.pop() {
            self.now = self.now.max(t);
            self.fingerprint
                .fold(&[t, d.from as u64, d.to as u64, d.payload.len() as u64]);
            self.mailbox[d.to].push((d.round, d.from, d.payload));
            self.fresh_mail[d.to] = true;
            true
        } else {
            false
        }
    }
}

struct Shared {
    core: Mutex<SessionCore>,
    cv: Condvar,
}

impl Shared {
    fn locked(&self) -> MutexGuard<'_, SessionCore> {
        self.core
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// One party's endpoint on the simulated session: implements
/// [`PartyLink`] with the collect timeout measured in **virtual** time.
/// Dropping the link marks the party finished (the simulation stops
/// waiting for it before advancing).
pub struct SimLink {
    slot: usize,
    slots: usize,
    shared: Arc<Shared>,
}

impl SimLink {
    /// This party's slot.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Session width.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl PartyLink for SimLink {
    fn slot(&self) -> usize {
        self.slot
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn broadcast(&mut self, round: &str, payload: Vec<u8>) -> Result<(), NetError> {
        let mut core = self.shared.locked();
        let seq = core.seq[self.slot];
        core.seq[self.slot] += 1;
        core.staged.push(Staged {
            seq,
            slot: self.slot,
            round: round.to_string(),
            payload,
        });
        Ok(())
    }

    fn collect(
        &mut self,
        round: &str,
        timeout: Duration,
        valid: &mut dyn FnMut(usize, &[u8]) -> bool,
    ) -> Result<Vec<Option<Vec<u8>>>, NetError> {
        let me = self.slot;
        let mut core = self.shared.locked();
        let deadline = core.now.saturating_add(nanos(timeout));
        core.waiting[me] = Some(deadline);
        let mut view: Vec<Option<Vec<u8>>> = vec![None; self.slots];
        loop {
            // Consume matching arrivals (first valid copy per sender
            // wins); keep everything else buffered for later rounds.
            let mail = std::mem::take(&mut core.mailbox[me]);
            let mut keep = Vec::with_capacity(mail.len());
            for (r, from, payload) in mail {
                if r == round {
                    if from < self.slots && view[from].is_none() && valid(from, &payload) {
                        view[from] = Some(payload);
                    }
                    // Matching but invalid/duplicate copies are spent.
                } else {
                    keep.push((r, from, payload));
                }
            }
            core.mailbox[me] = keep;
            core.fresh_mail[me] = false;
            if view.iter().all(Option::is_some) || core.now >= deadline {
                break;
            }
            let progressed = if core.ready_to_advance() {
                let progressed = core.advance();
                self.shared.cv.notify_all();
                progressed
            } else {
                false
            };
            if !progressed {
                // Either some party is still running (it will advance or
                // notify), or virtual time sits at another party's
                // expired deadline and only that party can move — hand
                // the lock over instead of spinning on it.
                core = self
                    .shared
                    .cv
                    .wait(core)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        core.waiting[me] = None;
        Ok(view)
    }
}

impl Drop for SimLink {
    fn drop(&mut self) {
        let mut core = self.shared.locked();
        if core.active > 0 {
            core.active -= 1;
        }
        core.waiting[self.slot] = None;
        // The remaining parties may now satisfy the advance condition.
        self.shared.cv.notify_all();
    }
}

/// Everything a simulated per-party session produced.
#[derive(Debug)]
pub struct SimSessionReport<T> {
    /// Per-slot body outputs.
    pub outputs: Vec<T>,
    /// The eavesdropper's log (canonical order; carries fault tallies).
    pub traffic: TrafficLog,
    /// Virtual time the session spanned.
    pub elapsed: Duration,
    /// The deterministic event-trace fingerprint.
    pub fingerprint: u64,
}

/// Runs `m` party bodies over the simulated medium — the virtual-time
/// analogue of [`shs_net::hub::run_session_with_faults`]: same
/// guaranteed-delivery semantics under an empty plan, same fault
/// vocabulary under a non-empty one, but collect timeouts are virtual
/// and the whole session performs zero wall-clock sleeps.
///
/// # Panics
///
/// Panics if a party thread panics (as the hub does).
pub fn run_session<T, F>(
    m: usize,
    plan: FaultPlan,
    latency: LatencyModel,
    bodies: Vec<F>,
) -> SimSessionReport<T>
where
    T: Send + 'static,
    F: FnOnce(SimLink) -> T + Send + 'static,
{
    // lint:allow(panic-path) reason="public API precondition documented under # Panics; harness configuration, not wire data"
    assert_eq!(bodies.len(), m, "one body per slot");
    let shared = Arc::new(Shared {
        core: Mutex::new(SessionCore {
            m,
            now: 0,
            active: m,
            waiting: vec![None; m],
            staged: Vec::new(),
            queue: EventQueue::new(),
            mailbox: vec![Vec::new(); m],
            fresh_mail: vec![false; m],
            plan,
            sent_live: vec![0; m],
            seq: vec![0; m],
            log: TrafficLog::new(),
            latency,
            fingerprint: TraceFingerprint::new(),
            eid: 0,
        }),
        cv: Condvar::new(),
    });
    let threads: Vec<std::thread::JoinHandle<T>> = bodies
        .into_iter()
        .enumerate()
        .map(|(slot, body)| {
            let link = SimLink {
                slot,
                slots: m,
                shared: Arc::clone(&shared),
            };
            std::thread::spawn(move || body(link))
        })
        .collect();
    let outputs: Vec<T> = threads
        .into_iter()
        // lint:allow(panic-path) reason="propagates a party-thread panic to the harness caller, documented under # Panics"
        .map(|t| t.join().expect("party thread"))
        .collect();
    let mut core = shared.locked();
    let counters = core.plan.counters().clone();
    core.log.set_faults(counters);
    SimSessionReport {
        outputs,
        traffic: core.log.clone(),
        elapsed: Duration::from_nanos(core.now),
        fingerprint: core.fingerprint.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_net::fault::FaultRule;

    fn echo_bodies(m: usize) -> Vec<impl FnOnce(SimLink) -> Vec<Option<Vec<u8>>> + Send> {
        (0..m)
            .map(|_| {
                move |mut link: SimLink| {
                    let me = PartyLink::slot(&link) as u8;
                    link.broadcast("hello", vec![me]).unwrap();
                    link.collect("hello", Duration::from_millis(50), &mut |_, _| true)
                        .unwrap()
                }
            })
            .collect()
    }

    #[test]
    fn echo_round_reaches_everyone_in_virtual_time() {
        let started = std::time::Instant::now();
        let report = run_session(4, FaultPlan::new(1), LatencyModel::lan(2), echo_bodies(4));
        for (slot, view) in report.outputs.iter().enumerate() {
            assert_eq!(view.len(), 4);
            for (from, v) in view.iter().enumerate() {
                assert_eq!(v.as_deref(), Some(&[from as u8][..]), "slot {slot}");
            }
        }
        assert_eq!(report.traffic.len(), 4);
        assert!(
            report.elapsed >= Duration::from_micros(200),
            "latency charged"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "virtual waiting, not wall waiting"
        );
    }

    #[test]
    fn same_seed_same_trace() {
        let run = || {
            let report = run_session(
                3,
                FaultPlan::new(9).with(FaultRule::drop().with_probability(0.4)),
                LatencyModel::lan(5),
                echo_bodies(3),
            );
            (report.fingerprint, report.elapsed, report.traffic)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "fingerprint");
        assert_eq!(a.1, b.1, "elapsed");
        assert_eq!(a.2, b.2, "traffic log");
    }

    #[test]
    fn dropped_delivery_times_out_the_collector() {
        let report = run_session(
            2,
            FaultPlan::new(3).with(FaultRule::drop().from(1).to(0)),
            LatencyModel::lan(4),
            echo_bodies(2),
        );
        assert!(report.outputs[0][1].is_none(), "slot 0 lost slot 1's hello");
        assert!(report.outputs[1][0].is_some());
        assert_eq!(report.traffic.faults().dropped, 1);
    }

    #[test]
    fn crash_stop_silences_the_sender_after_its_budget() {
        let m = 3;
        let bodies: Vec<_> = (0..m)
            .map(|_| {
                move |mut link: SimLink| {
                    let me = PartyLink::slot(&link) as u8;
                    let mut views = Vec::new();
                    for round in ["r1", "r2"] {
                        link.broadcast(round, vec![me]).unwrap();
                        let v = link
                            .collect(round, Duration::from_millis(30), &mut |_, _| true)
                            .unwrap();
                        views.push(v.iter().filter(|x| x.is_some()).count());
                    }
                    views
                }
            })
            .collect();
        let report = run_session(
            m,
            FaultPlan::new(6).with(FaultRule::crash_stop(2, 1)),
            LatencyModel::lan(7),
            bodies,
        );
        for views in &report.outputs {
            assert_eq!(views[0], 3, "everyone alive in round 1");
            assert_eq!(views[1], 2, "slot 2 dead in round 2");
        }
        assert!(report.traffic.faults().crash_silenced >= 1);
    }

    #[test]
    fn sim_medium_matches_broadcast_net_on_the_same_plan() {
        use shs_net::sync::BroadcastNet;
        use shs_net::DeliveryPolicy;
        let payloads: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 8]).collect();
        let plan = || {
            FaultPlan::new(11)
                .with(FaultRule::drop().with_probability(0.5))
                .with(FaultRule::duplicate().in_round("r2"))
        };
        let mut real = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
        real.set_fault_plan(plan());
        let mut sim = SimMedium::new(3, LatencyModel::lan(1));
        sim.set_fault_plan(plan());
        for round in ["r1", "r2", "r1"] {
            let a = real.exchange(round, payloads.clone()).unwrap();
            let b = Medium::exchange(&mut sim, round, payloads.clone()).unwrap();
            assert_eq!(a, b, "round {round}");
        }
        assert_eq!(
            real.traffic_snapshot(),
            sim.traffic_snapshot(),
            "same log, same fault tallies"
        );
        assert!(sim.elapsed() > Duration::ZERO);
    }
}
