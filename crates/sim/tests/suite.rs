//! Suite-level assertions: the adversary schedules must land sessions
//! in *distinct* terminal-class mixes, and the whole suite must be
//! bit-reproducible.

use shs_sim::{run_suite, SuiteConfig};

#[test]
fn adversaries_produce_distinct_class_histograms() {
    let report = run_suite(&SuiteConfig::smoke(0xE20));
    let mut signatures = Vec::new();
    for r in &report.scenarios {
        let sig = r.classes.signature();
        println!(
            "{:<12} {:?} reformations={} faults={:?}",
            r.name, r.classes, r.reformations, r.faults
        );
        assert_eq!(
            r.sessions,
            r.classes.total(),
            "{}: every session classified",
            r.name
        );
        signatures.push((r.name, sig));
    }
    // The four required adversaries (partition, slow-loris, phase-crash,
    // sybil-flood) must be pairwise distinguishable by histogram alone.
    for i in 0..signatures.len() {
        for j in i + 1..signatures.len() {
            assert_ne!(
                signatures[i].1, signatures[j].1,
                "{} and {} are indistinguishable",
                signatures[i].0, signatures[j].0
            );
        }
    }
}

#[test]
fn same_seed_renders_byte_identical_json() {
    let a = run_suite(&SuiteConfig::smoke(7)).deterministic_json();
    let b = run_suite(&SuiteConfig::smoke(7)).deterministic_json();
    assert_eq!(a, b, "deterministic section must be byte-identical");
}
