//! Clearance-level handshakes — the paper's own motivating refinement
//! (§1: "Alice might want to authenticate herself as an agent with a
//! certain clearance level only if Bob is also an agent with at least the
//! same clearance level").
//!
//! ```sh
//! cargo run --example clearance_levels
//! ```

use shs_core::handshake::run_handshake;
use shs_core::roles::RoleAuthority;
use shs_core::{Actor, CoreError, GroupConfig, HandshakeOptions, SchemeKind};
use shs_crypto::drbg::HmacDrbg;

fn main() -> Result<(), CoreError> {
    let mut rng = HmacDrbg::from_seed(b"clearance-example");
    let (rsa, secret) = shs_gsig::fixtures::test_rsa_setting().clone();
    let mut agency = RoleAuthority::create_with_rsa(
        GroupConfig::test(SchemeKind::Scheme1),
        3, // clearance levels 0 (agent), 1 (secret), 2 (top secret)
        rsa,
        secret,
        &mut rng,
    );
    println!("Agency created with clearance levels 0..=2.\n");

    // Alice: top secret. Bob: top secret. Carol: secret. Dave: agent.
    let mut people = Vec::new();
    for (name, clearance) in [("alice", 2usize), ("bob", 2), ("carol", 1), ("dave", 0)] {
        let (member, updates) = agency.admit(clearance, &mut rng)?;
        for u in &updates {
            for (_, existing) in people.iter_mut() {
                let existing: &mut shs_core::roles::RoleMember = existing;
                existing.apply_update(u)?;
            }
        }
        println!("admitted {name} with clearance {clearance}");
        people.push((name, member));
    }

    // A level-2 rendezvous: Alice, Bob — and Carol trying her level-1
    // credential because she has nothing better.
    println!("\nLevel-2 (top secret) handshake: alice, bob, carol...");
    let session = [
        Actor::Member(people[0].1.at_level(2).unwrap()),
        Actor::Member(people[1].1.at_level(2).unwrap()),
        Actor::Member(people[2].1.at_level(1).unwrap()),
    ];
    let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng)?;
    println!(
        "  alice's view: co-members at slots {:?} -> carol is invisible at this level",
        r.outcomes[0].same_group_slots
    );
    assert_eq!(r.outcomes[0].same_group_slots, vec![0, 1]);
    assert!(r.outcomes[0].partial_accepted());

    // At level 0 everyone meets.
    println!("\nLevel-0 (any agent) handshake: all four...");
    let session: Vec<Actor<'_>> = people
        .iter()
        .map(|(_, m)| Actor::Member(m.at_level(0).unwrap()))
        .collect();
    let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng)?;
    assert!(r.outcomes.iter().all(|o| o.accepted));
    println!("  full handshake succeeds: all four are agents.");

    // Key property: clearance is NOT revealed downward. Dave learned that
    // the other three are agents — nothing about their higher clearances.
    println!(
        "\nDave (clearance 0) learned only that the others are agents; whether\n\
         anyone holds level 1 or 2 credentials never touched the wire at level 0."
    );
    Ok(())
}
