//! Daemon: run the long-lived multi-session handshake service.
//!
//! Starts a [`shs_net::serve::Service`], submits a small fleet of
//! sessions — clean ones, one whose slot crash-stops mid-handshake (the
//! service re-forms it among the survivors and retries), and one mixed
//! session that completes as an ordinary rejection — then drains the
//! service gracefully and prints the registry's account of what
//! happened.
//!
//! ```sh
//! cargo run --example daemon
//! ```

use shs_core::service::{HandshakeJob, Participant, SuccessPolicy};
use shs_core::{CoreError, HandshakeOptions, SchemeKind};
use shs_crypto::drbg::HmacDrbg;
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::serve::{Service, ServiceConfig, SessionSpec};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), CoreError> {
    let mut rng = HmacDrbg::from_seed(b"daemon-example");

    // Two groups: sessions within group A succeed, a mixed A/B session
    // is an ordinary failure (completed, rejected — not an abort).
    println!("Creating two groups...");
    let (_, a_members) = shs_core::fixtures::group_with_members(SchemeKind::Scheme1, 3, &mut rng)?;
    let (_, b_members) = shs_core::fixtures::group_with_members(SchemeKind::Scheme1, 2, &mut rng)?;
    let mut pool = a_members;
    pool.extend(b_members);
    let pool = Arc::new(pool); // slots 0..3 = group A, 3..5 = group B

    // The service: 2 workers, a bounded queue (admission control sheds
    // with decoy traffic beyond it), per-session deadline and retry
    // budget, graceful drain on shutdown.
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    });

    println!("Submitting sessions...");
    // Two clean co-member sessions.
    for i in 0..2 {
        let job = HandshakeJob::new(
            Arc::clone(&pool),
            3,
            HandshakeOptions::default(),
            &format!("daemon-clean-{i}"),
        );
        svc.submit(SessionSpec::new(Box::new(job)));
    }
    // A session whose slot 2 crash-stops on the first attempt: the
    // service sees the silence in the traffic log, re-forms the session
    // among the two live survivors (§7 partial success) and retries.
    let crashy = svc.submit(SessionSpec::new(Box::new(
        HandshakeJob::new(
            Arc::clone(&pool),
            3,
            HandshakeOptions::default(),
            "daemon-crashy",
        )
        .with_plans(|ctx| {
            (ctx.attempt == 0).then(|| FaultPlan::new(7).with(FaultRule::crash_stop(2, 1)))
        }),
    )));
    // A mixed session judged under full-handshake policy: a completed
    // rejection, indistinguishable on the wire from the successes.
    let mixed = svc.submit(SessionSpec::new(Box::new(
        HandshakeJob::new(
            Arc::clone(&pool),
            0,
            HandshakeOptions::default(),
            "daemon-mixed",
        )
        .with_slots(vec![
            Participant::Member(0),
            Participant::Member(1),
            Participant::Member(3),
            Participant::Member(4),
        ])
        .with_policy(SuccessPolicy::FullOnly),
    )));

    assert!(
        svc.wait_idle(Duration::from_secs(120)),
        "all sessions settle"
    );

    println!("\nRegistry after the batch:");
    for e in svc.snapshot() {
        let class = e.class.map_or_else(|| "-".to_string(), |c| c.to_string());
        let latency = e.latency().map_or_else(
            || "-".to_string(),
            |l| format!("{:.1} ms", l.as_secs_f64() * 1e3),
        );
        println!(
            "  session {:>2}: {:<9} attempts={} reformations={} latency={}",
            e.id,
            class,
            e.attempts.len(),
            e.reformations,
            latency
        );
    }

    let crashy_entry = svc.entry(crashy.id()).expect("crashy entry");
    println!(
        "\nThe crashy session re-formed {} time(s); final roster {:?}.",
        crashy_entry.reformations,
        crashy_entry
            .attempts
            .last()
            .map(|a| a.roster.clone())
            .unwrap_or_default()
    );
    let mixed_entry = svc.entry(mixed.id()).expect("mixed entry");
    println!(
        "The mixed session completed as `{}` — a rejection is a completion, not an abort.",
        mixed_entry
            .class
            .map_or_else(String::new, |c| c.to_string())
    );

    let report = svc.shutdown(Duration::from_secs(30));
    println!(
        "\nDrained: {} swept from queue, {} finished in grace, {} leaked ({}).",
        report.swept_from_queue,
        report.finished_in_grace,
        report.leaked,
        if report.clean() { "clean" } else { "LEAKY" }
    );
    Ok(())
}
