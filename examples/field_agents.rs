//! The paper's motivating scenario (§1): agents of two agencies meet on an
//! anonymous channel. Nobody reveals an affiliation to anyone who is not a
//! co-member — yet *within* each agency the agents find each other, count
//! themselves, and come away with a shared key (the partially-successful
//! handshake extension of §7).
//!
//! ```sh
//! cargo run --example field_agents
//! ```

use shs_core::handshake::run_handshake;
use shs_core::{Actor, CoreError, HandshakeOptions, SchemeKind};
use shs_crypto::drbg::HmacDrbg;

fn main() -> Result<(), CoreError> {
    let mut rng = HmacDrbg::from_seed(b"field-agents-example");

    println!("Two agencies set up their groups independently...");
    let (fbi, fbi_agents) =
        shs_core::fixtures::group_with_members(SchemeKind::Scheme1, 2, &mut rng)?;
    let (mi6, mi6_agents) =
        shs_core::fixtures::group_with_members(SchemeKind::Scheme1, 3, &mut rng)?;

    // Five strangers meet. Slots: FBI, MI6, FBI, MI6, MI6 — but of course
    // nobody at the table knows that.
    println!("\nFive strangers run one multi-party secret handshake...");
    let session = [
        Actor::Member(&fbi_agents[0]),
        Actor::Member(&mi6_agents[0]),
        Actor::Member(&fbi_agents[1]),
        Actor::Member(&mi6_agents[1]),
        Actor::Member(&mi6_agents[2]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut rng)?;

    for o in &result.outcomes {
        println!(
            "  slot {}: found {} co-member(s) at slots {:?}; partial handshake {}",
            o.slot,
            o.same_group_slots.len() - 1,
            o.same_group_slots,
            if o.partial_accepted() {
                "COMPLETED"
            } else {
                "none"
            },
        );
    }

    // The paper's worked example: the 2 FBI agents learn "we are 2", the 3
    // MI6 agents learn "we are 3", and neither side learns anything about
    // the other beyond "not one of us".
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 2]);
    assert_eq!(result.outcomes[1].same_group_slots, vec![1, 3, 4]);
    assert!(
        result.outcomes.iter().all(|o| !o.accepted),
        "no full 5-party accept"
    );
    assert!(result.outcomes.iter().all(|o| o.partial_accepted()));

    let fbi_key = result.outcomes[0].session_key.as_ref().unwrap();
    let mi6_key = result.outcomes[1].session_key.as_ref().unwrap();
    // Compare keys in constant time and keep the secret values out of the
    // assert's (printable) argument list.
    let slot2_shares_fbi = result.outcomes[2]
        .session_key
        .as_ref()
        .is_some_and(|k| k.ct_eq(fbi_key));
    let slot3_shares_mi6 = result.outcomes[3]
        .session_key
        .as_ref()
        .is_some_and(|k| k.ct_eq(mi6_key));
    assert!(slot2_shares_fbi, "slot 2 shares the FBI sub-group key");
    assert!(slot3_shares_mi6, "slot 3 shares the MI6 sub-group key");
    assert!(!fbi_key.ct_eq(mi6_key), "sub-group keys are independent");
    println!("\nEach sub-group now shares its own fresh session key.");

    // Accountability: each authority can trace exactly its own agents.
    println!("\nEach agency traces the transcript of the session:");
    let fbi_view = fbi.trace(&result.transcript);
    let mi6_view = mi6.trace(&result.transcript);
    for slot in 0..5 {
        println!(
            "  slot {}: FBI says {:?}, MI6 says {:?}",
            slot,
            fbi_view[slot].result.as_ref().map(|id| id.to_string()).ok(),
            mi6_view[slot].result.as_ref().map(|id| id.to_string()).ok(),
        );
    }
    assert!(fbi_view[0].result.is_ok() && fbi_view[2].result.is_ok());
    assert!(fbi_view[1].result.is_err() && fbi_view[3].result.is_err());
    assert!(mi6_view[1].result.is_ok() && mi6_view[3].result.is_ok() && mi6_view[4].result.is_ok());
    Ok(())
}
