//! Group lifecycle and the §3 revocation attack: why GCD keeps *both*
//! revocation mechanisms (GSIG + CGKD).
//!
//! ```sh
//! cargo run --example lifecycle
//! ```

use shs_core::handshake::run_handshake;
use shs_core::{Actor, CoreError, HandshakeOptions, SchemeKind};
use shs_crypto::drbg::HmacDrbg;

fn main() -> Result<(), CoreError> {
    let mut rng = HmacDrbg::from_seed(b"lifecycle-example");

    println!("Group lifecycle under scheme 1 (KY + verifier-local revocation)\n");
    let (mut ga, mut members) =
        shs_core::fixtures::group_with_members(SchemeKind::Scheme1, 4, &mut rng)?;
    println!(
        "4 members admitted; CGKD epoch {}, CRL v{}.",
        members[0].epoch(),
        members[0].crl_version()
    );

    // --- Revoke a member ---------------------------------------------------
    let mut revoked = members.pop().unwrap();
    println!("\nRevoking {} ...", revoked.id());
    let update = ga.remove(revoked.id(), &mut rng)?;
    for m in members.iter_mut() {
        m.apply_update(&update)?;
    }
    println!(
        "Remaining members now at epoch {}, CRL v{}.",
        members[0].epoch(),
        members[0].crl_version()
    );
    // The revoked member cannot even read the update.
    assert!(revoked.apply_update(&update).is_err());
    println!("The revoked member could not decrypt the update (forward secrecy).");

    // A handshake including the revoked member fails at the MAC phase.
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&revoked),
    ];
    let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng)?;
    println!(
        "Handshake with the revoked member: honest view of co-members = {:?} (revoked excluded).",
        r.outcomes[0].same_group_slots
    );

    // --- The §3 attack: an insider leaks the fresh group key ---------------
    println!("\n§3 attack: an unrevoked accomplice leaks the new group key to the revoked member.");
    revoked.adopt_leaked_key(members[1].leak_group_key(), members[1].epoch());
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&revoked),
    ];
    let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng)?;
    println!(
        "With the leaked key the MAC phase passes (co-members = {:?})...",
        r.outcomes[0].same_group_slots
    );
    println!(
        "...but verifier-local revocation rejects the revoked member's signature: \
         verified = {:?}, accepted = {}.",
        r.outcomes[0].verified_slots, r.outcomes[0].accepted
    );
    assert!(!r.outcomes[0].accepted);
    assert!(!r.outcomes[0].verified_slots.contains(&2));
    println!(
        "\n(Under the ACJT 'scheme 1 classic' instantiation, which has no \
         signature-level revocation,\n the same attack succeeds — run the \
         `leaked_group_key_attack...` integration test to see both sides.)"
    );

    // --- Tracing ------------------------------------------------------------
    let honest = [Actor::Member(&members[0]), Actor::Member(&members[1])];
    let r = run_handshake(&honest, &HandshakeOptions::default(), &mut rng)?;
    assert!(r.outcomes.iter().all(|o| o.accepted));
    println!("\nA later honest handshake succeeds; the authority traces it:");
    for t in ga.trace(&r.transcript) {
        println!(
            "  slot {} -> {}",
            t.slot,
            t.result.map(|id| id.to_string()).unwrap()
        );
    }
    Ok(())
}
