//! Anonymous petitions — the application that motivated self-distinction.
//!
//! §8.2 of the paper traces the idea to *subgroup signatures* [2]: "in an
//! anonymous petition, t group members want to sign a document in a way
//! that any verifier can determine with certainty that all t signers are
//! distinct" — without learning who they are.
//!
//! The same mechanism that gives the handshake self-distinction does this
//! directly: every signer uses the **common base** `T7 = H→QR(petition)`,
//! so each member can produce exactly one distinguishable signature per
//! petition (its `T6 = T7^{x'}`), while remaining anonymous and unlinkable
//! across petitions.
//!
//! ```sh
//! cargo run --example petition
//! ```

use shs_crypto::drbg::HmacDrbg;
use shs_gsig::fixtures;
use shs_gsig::ky::{self, SignBasis, Signature};

fn count_valid_distinct(
    pk: &ky::GroupPublicKey,
    petition: &[u8],
    signatures: &[Signature],
) -> usize {
    let t7 = pk.common_t7(petition);
    let mut distinct_t6 = Vec::new();
    for sig in signatures {
        if ky::verify(pk, petition, sig, Some(&t7)).is_ok() && !distinct_t6.contains(&sig.tags.t6) {
            distinct_t6.push(sig.tags.t6.clone());
        }
    }
    distinct_t6.len()
}

fn main() {
    let mut rng = HmacDrbg::from_seed(b"petition-example");
    let (gm, keys) = fixtures::fresh_group_seeded(4, b"petition-group");
    let pk = gm.public_key();

    let petition = b"We, undersigned members, request that the cafeteria serve coffee after 16:00.";
    println!("Petition: {:?}\n", String::from_utf8_lossy(petition));

    // Three distinct members sign.
    let mut signatures: Vec<Signature> = keys[..3]
        .iter()
        .map(|k| ky::sign(pk, k, petition, SignBasis::Common(petition), &mut rng))
        .collect();
    println!(
        "3 members sign anonymously -> verifier counts {} distinct valid signers.",
        count_valid_distinct(pk, petition, &signatures)
    );
    assert_eq!(count_valid_distinct(pk, petition, &signatures), 3);

    // Member 0 tries to inflate the count by signing again.
    signatures.push(ky::sign(
        pk,
        &keys[0],
        petition,
        SignBasis::Common(petition),
        &mut rng,
    ));
    println!(
        "member #0 signs AGAIN      -> verifier still counts {} (duplicate T6 collapses).",
        count_valid_distinct(pk, petition, &signatures)
    );
    assert_eq!(count_valid_distinct(pk, petition, &signatures), 3);

    // A fourth, genuinely new member raises the count.
    signatures.push(ky::sign(
        pk,
        &keys[3],
        petition,
        SignBasis::Common(petition),
        &mut rng,
    ));
    println!(
        "a 4th member signs         -> verifier counts {}.",
        count_valid_distinct(pk, petition, &signatures)
    );
    assert_eq!(count_valid_distinct(pk, petition, &signatures), 4);

    // Unlinkability across petitions: the same member's signatures on two
    // different petitions share nothing.
    let petition2 = b"We further request oat milk.";
    let s1 = ky::sign(
        pk,
        &keys[0],
        petition,
        SignBasis::Common(petition),
        &mut rng,
    );
    let s2 = ky::sign(
        pk,
        &keys[0],
        petition2,
        SignBasis::Common(petition2),
        &mut rng,
    );
    assert_ne!(s1.tags.t6, s2.tags.t6);
    println!(
        "\nThe same member's T6 on petition 1 and petition 2 differ: \
         signatures cannot be linked across petitions."
    );

    // Accountability remains: a signer can voluntarily CLAIM its
    // signature (Appendix H's claiming feature) ...
    let claim = ky::claim(pk, &keys[0], &s1);
    ky::verify_claim(pk, &s1, &claim).unwrap();
    println!("Member #0 voluntarily claims its signature: claim verifies.");
    // ... and nobody else can claim it.
    let impostor_claim = ky::claim(pk, &keys[1], &s1);
    assert!(ky::verify_claim(pk, &s1, &impostor_claim).is_err());
    println!("Member #1's attempt to claim the same signature is rejected.");
}
