//! Quickstart: create a group, admit members, run a secret handshake.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use shs_core::handshake::run_handshake;
use shs_core::{Actor, CoreError, HandshakeOptions, SchemeKind};
use shs_crypto::drbg::HmacDrbg;

fn main() -> Result<(), CoreError> {
    // Deterministic randomness so the example output is reproducible;
    // use `rand::thread_rng()` in real deployments.
    let mut rng = HmacDrbg::from_seed(b"quickstart-example");

    // --- GCD.CreateGroup -------------------------------------------------
    // The authority plays group manager (GSIG), group controller (CGKD)
    // and tracing keyholder. `test_authority` uses a cached test-sized RSA
    // modulus; `GroupAuthority::create` generates a fresh one.
    println!("Creating group (scheme 1: KY signatures + LKH + BD)...");
    let mut ga = shs_core::fixtures::test_authority(SchemeKind::Scheme1, &mut rng);

    // --- GCD.AdmitMember ×3 ----------------------------------------------
    // Every admission produces a bulletin-board update that existing
    // members must apply (GCD.Update).
    let (mut alice, _) = ga.admit(&mut rng)?;
    let (mut bob, update) = ga.admit(&mut rng)?;
    alice.apply_update(&update)?;
    let (carol, update) = ga.admit(&mut rng)?;
    alice.apply_update(&update)?;
    bob.apply_update(&update)?;
    println!(
        "Admitted three members: {}, {}, {}",
        alice.id(),
        bob.id(),
        carol.id()
    );

    // --- GCD.Handshake: all three are co-members --------------------------
    let result = run_handshake(
        &[
            Actor::Member(&alice),
            Actor::Member(&bob),
            Actor::Member(&carol),
        ],
        &HandshakeOptions::default(),
        &mut rng,
    )?;
    for o in &result.outcomes {
        println!(
            "slot {}: accepted={}, co-members={:?}",
            o.slot, o.accepted, o.same_group_slots
        );
    }
    assert!(result.outcomes.iter().all(|o| o.accepted));
    println!(
        "Handshake succeeded; shared session key established ({} wire messages, {} bytes).",
        result.traffic.len(),
        result.traffic.total_bytes()
    );

    // --- An outsider probes the group -------------------------------------
    // The outsider runs the public protocol but holds no credentials: the
    // members reveal nothing, and the outsider cannot even tell whether
    // the other two are members of anything.
    let probe = run_handshake(
        &[Actor::Member(&alice), Actor::Member(&bob), Actor::Outsider],
        &HandshakeOptions::default(),
        &mut rng,
    )?;
    println!(
        "\nOutsider probe: outsider saw co-members {:?} (only itself); \
         members saw {:?} and published nothing more than decoys to it.",
        probe.outcomes[2].same_group_slots, probe.outcomes[0].same_group_slots
    );
    let outsider_keyless = probe.outcomes[2].session_key.is_none();
    assert!(outsider_keyless, "outsider derives no session key");

    // --- GCD.TraceUser -----------------------------------------------------
    let traced = ga.trace(&result.transcript);
    println!("\nAuthority traces the successful handshake:");
    for t in &traced {
        println!("  slot {} -> {:?}", t.slot, t.result);
    }
    Ok(())
}
