//! Self-distinction (§8.2): why multi-party handshakes need it, and how
//! instantiation 2 provides it.
//!
//! A malicious insider joins a "three-party" handshake twice. Under
//! scheme 1 the honest member is fooled into believing it met two distinct
//! co-members; under scheme 2 the common hashed `T7` forces the insider's
//! two signatures to carry the same `T6 = T7^{x'}`, exposing the
//! duplication — while remaining unlinkable across sessions.
//!
//! ```sh
//! cargo run --example self_distinction
//! ```

use shs_core::handshake::run_handshake;
use shs_core::{Actor, CoreError, HandshakeOptions, SchemeKind};
use shs_crypto::drbg::HmacDrbg;

fn run_attack(scheme: SchemeKind, rng: &mut HmacDrbg) -> Result<(), CoreError> {
    let (_, members) = shs_core::fixtures::group_with_members(scheme, 2, rng)?;
    let honest = &members[1];
    let sybil = &members[0];

    // The insider occupies slots 0 and 2; the honest member sits at 1.
    let session = [
        Actor::Member(sybil),
        Actor::Member(honest),
        Actor::Member(sybil),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), rng)?;
    let view = &result.outcomes[1];

    println!("--- {scheme:?} ---");
    println!(
        "honest member's view: co-members at {:?}, signatures verified for {:?}",
        view.same_group_slots, view.verified_slots
    );
    if scheme.self_distinct() {
        println!(
            "  duplicates flagged: {:?} -> handshake accepted = {} \
             (the common T7 exposed the duplicate T6)",
            view.duplicate_slots, view.accepted
        );
        assert!(!view.accepted);
        assert_eq!(view.duplicate_slots, vec![0, 2]);
    } else {
        println!(
            "  duplicates flagged: {:?} -> handshake accepted = {} (FOOLED: \
             it counted the insider twice)",
            view.duplicate_slots, view.accepted
        );
        assert!(view.accepted);
    }
    println!();
    Ok(())
}

fn main() -> Result<(), CoreError> {
    let mut rng = HmacDrbg::from_seed(b"self-distinction-example");
    println!(
        "A malicious insider plays TWO of the three slots of a handshake.\n\
         Decision policies that depend on the number of distinct peers\n\
         (quorums, anonymous petitions, ...) are subverted unless the\n\
         scheme provides self-distinction.\n"
    );
    run_attack(SchemeKind::Scheme1, &mut rng)?;
    run_attack(SchemeKind::Scheme2SelfDistinct, &mut rng)?;

    // Unlinkability is preserved: run two honest scheme-2 sessions and
    // show that nothing in the transcripts repeats.
    let (_, members) =
        shs_core::fixtures::group_with_members(SchemeKind::Scheme2SelfDistinct, 2, &mut rng)?;
    let acts = [Actor::Member(&members[0]), Actor::Member(&members[1])];
    let s1 = run_handshake(&acts, &HandshakeOptions::default(), &mut rng)?;
    let s2 = run_handshake(&acts, &HandshakeOptions::default(), &mut rng)?;
    assert!(s1.outcomes.iter().all(|o| o.accepted));
    assert_ne!(
        s1.transcript.entries[0].theta,
        s2.transcript.entries[0].theta
    );
    println!(
        "Two further scheme-2 sessions by the same pair: all transcript fields\n\
         differ (T7 is per-session, so even T6 cannot be linked across sessions)."
    );
    Ok(())
}
