//! Two handshake parties over real TCP: a frame relay on loopback, two
//! supervised connections, one GCD handshake across the wire.
//!
//! ```sh
//! cargo run --example tcp_pair
//! ```
//!
//! This is the in-process version of what the `shs-node` daemon does
//! across machines: the relay bridges each party's framed connection
//! into lockstep broadcast exchanges, while each party runs
//! [`run_party`] — the same phase code as the lockstep engine — from
//! its own thread. Swap the threads for OS processes and the loopback
//! address for a routable one and nothing else changes.

use shs_core::handshake::party::run_party;
use shs_core::{Actor, CoreError, HandshakeOptions, SchemeKind};
use shs_crypto::drbg::HmacDrbg;
use shs_net::tcp::{RelayConfig, RelayHandle, SupervisorConfig, TcpParty};
use std::time::Duration;

fn main() -> Result<(), CoreError> {
    let mut rng = HmacDrbg::from_seed(b"tcp-pair-example");

    // Two co-members of one group.
    let (_, members) = shs_core::fixtures::group_with_members(SchemeKind::Scheme1, 2, &mut rng)?;

    // The relay: a TCP listener that gathers two framed connections and
    // replays every broadcast to every seat in lockstep rounds. It is
    // also the wire-level eavesdropper — it records (round, slot, len)
    // for every frame it forwards.
    let relay = RelayHandle::bind("127.0.0.1:0", RelayConfig::new(2), None)?;
    let addr = relay.addr();
    println!("relay listening on {addr}");

    // Each party: dial the relay under a supervisor (deadline-bounded
    // reads, jittered reconnect backoff), then run one slot of the
    // handshake over the attached link.
    let workers: Vec<_> = members
        .into_iter()
        .enumerate()
        .map(|(i, member)| {
            std::thread::spawn(move || -> Result<_, CoreError> {
                let sup = SupervisorConfig {
                    seed: i as u64,
                    ..SupervisorConfig::default()
                };
                let mut link = TcpParty::attach(addr, sup, Some(i))?;
                let mut rng = HmacDrbg::from_seed(format!("tcp-pair-party-{i}").as_bytes());
                let out = run_party(
                    &Actor::Member(&member),
                    &HandshakeOptions::default(),
                    &mut link,
                    Duration::from_secs(5),
                    &mut rng,
                )?;
                link.finish();
                Ok(out)
            })
        })
        .collect();

    let mut keys = Vec::new();
    for (i, worker) in workers.into_iter().enumerate() {
        let out = worker.join().expect("party thread")?;
        println!(
            "slot {i}: accepted={} delta={:?} exchanges={} reconnects={}",
            out.outcome.accepted,
            out.outcome.same_group_slots,
            out.stats.exchanges,
            out.stats.reconnects,
        );
        keys.push(out.outcome.session_key);
    }
    assert!(keys.iter().all(|k| k.is_some() && *k == keys[0]));
    println!("both parties derived the same session key over TCP");

    // What the wire saw: lengths only — every payload is chosen from a
    // distribution independent of group membership.
    relay.wait_done(Duration::from_secs(5));
    let log = relay.traffic();
    for rec in log.records() {
        println!(
            "  wire: round={} slot={} len={}",
            rec.round,
            rec.from_slot,
            rec.payload.len()
        );
    }
    relay.shutdown();
    Ok(())
}
