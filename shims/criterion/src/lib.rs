//! Offline stand-in for `criterion`.
//!
//! Provides the bench-definition API the workspace's `benches/` use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! over a deliberately small timing loop: one warm-up iteration plus
//! `sample_size` measured iterations, reporting mean wall time. Under
//! `cargo test` (which builds and runs bench targets) each benchmark
//! runs a single iteration so the suite stays fast; set
//! `CRITERION_SHIM_FULL=1` to measure properly via `cargo bench`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Whether to actually measure (full mode) or smoke-run one iteration.
fn full_mode() -> bool {
    std::env::var_os("CRITERION_SHIM_FULL").is_some() || std::env::args().any(|a| a == "--bench")
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured-iteration count (full mode only).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, f);
        self
    }

    /// Benchmarks a function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let samples = if full_mode() { sample_size } else { 1 };
    let mut b = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 && b.elapsed > Duration::ZERO {
        let per = b.elapsed / b.iters as u32;
        println!("bench {label:<48} {per:>12.2?}/iter ({samples} samples)");
    } else {
        println!("bench {label:<48} (smoke run)");
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `label/parameter` identifier.
    pub fn new(label: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{label}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = 0;
        g.sample_size(3)
            .bench_function("f", |b| b.iter(|| 1 + 1))
            .bench_with_input(BenchmarkId::new("p", 4), &4, |b, &x| {
                b.iter(|| x * 2);
            });
        g.finish();
        c.bench_function("top", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran >= 1);
    }
}
