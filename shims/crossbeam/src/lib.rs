//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the `channel` MPSC surface the workspace uses is provided:
//! [`channel::unbounded`] and [`channel::bounded`] constructors plus
//! blocking, non-blocking and deadline receives. `std`'s channels are
//! MPSC rather than MPMC, which matches every use site here (each
//! receiver has a single owner thread, or is shared behind a mutex).

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// One sending half: unbounded channels enqueue without limit,
    /// bounded ones block (or report `Full` from `try_send`) at capacity.
    #[derive(Debug)]
    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            }
        }
    }

    /// Sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is at
        /// capacity; fails only if every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }

        /// Enqueues a message without blocking: a bounded channel at
        /// capacity reports [`TrySendError::Full`] immediately.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx
                    .send(msg)
                    .map_err(|mpsc::SendError(m)| TrySendError::Disconnected(m)),
                Tx::Bounded(tx) => tx.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                    mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
                }),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for the next message up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a bounded MPSC channel holding at most `cap` messages;
    /// further sends block (or fail from `try_send`) until the receiver
    /// drains. `cap = 0` is a rendezvous channel, as in real crossbeam.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_try_timeout() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_reports_full_without_blocking() {
            let (tx, rx) = bounded(2);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Ok(()));
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn bounded_send_unblocks_when_drained() {
            let (tx, rx) = bounded(1);
            tx.send(10).unwrap();
            let t = std::thread::spawn(move || tx.send(11));
            assert_eq!(rx.recv(), Ok(10));
            assert_eq!(rx.recv(), Ok(11));
            t.join().unwrap().unwrap();
        }
    }
}
