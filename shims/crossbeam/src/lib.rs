//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the `channel::unbounded` MPSC surface the workspace uses is
//! provided. `std`'s channels are MPSC rather than MPMC, which matches
//! every use site here (each receiver has a single owner thread).

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for the next message up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_try_timeout() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
