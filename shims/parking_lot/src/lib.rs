//! Offline stand-in for `parking_lot`, backed by `std::sync::Mutex`.
//!
//! Matches parking_lot's poison-free API: `lock()` returns the guard
//! directly and `into_inner()` returns the value directly. A poisoned
//! std mutex (a thread panicked while holding it) is treated as fatal.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (std poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the lock, returning the inner value.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (std poisoning).
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
