//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span.max(1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
