//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, `any::<T>()`,
//! ranges as strategies, `prop::collection::vec`, `prop::sample::Index`,
//! [`prop_oneof!`], [`Just`], the `prop_assert*` / [`prop_assume!`]
//! macros and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, acceptable for this repository:
//! no shrinking (failures report the generated case as-is), and
//! generation is driven by a deterministic per-test seed derived from
//! the test's module path, so runs are reproducible.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

pub mod collection;
pub mod sample;

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// The `prop::` module-alias facade (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform index below `bound` (`bound` > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.0.next_u64() % bound as u64) as usize
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Weighted union of boxed strategies (built by [`prop_oneof!`]).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> std::fmt::Debug for WeightedUnion<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WeightedUnion({} arms)", self.arms.len())
    }
}

impl<T> WeightedUnion<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> WeightedUnion<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests.
///
/// Supported form (the one this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __name = concat!(module_path!(), "::", stringify!($name));
                let mut __ran: u32 = 0;
                let mut __attempt: u64 = 0;
                while __ran < __cfg.cases {
                    // Bounded rejection sampling: at most 10x the budget.
                    assert!(
                        __attempt < 10 * __cfg.cases as u64 + 100,
                        "too many prop_assume! rejections in {}", __name
                    );
                    let mut __rng = $crate::TestRng::deterministic(__name, __attempt);
                    __attempt += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __out: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __out {
                        ::std::result::Result::Ok(()) => { __ran += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("{} (case {}): {}", __name, __attempt - 1, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4, z in 250u8..) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(z >= 250);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(any::<u8>(), 2..6),
            w in prop::collection::vec(any::<u64>(), 0..=3),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(w.len() <= 3);
        }

        #[test]
        fn map_tuple_oneof_and_index(
            pair in (any::<u8>(), any::<bool>()).prop_map(|(a, b)| (a as u16, b)),
            pick in prop_oneof![3 => Just(0u8), 1 => 1u8..4],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(pair.0 <= 255);
            prop_assert!(pick < 4u8);
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn assume_skips(x in any::<u8>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::deterministic("t", 4);
        let mut b = crate::TestRng::deterministic("t", 4);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
