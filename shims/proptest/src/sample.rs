//! Sampling helpers (`prop::sample::Index`).

use crate::{Arbitrary, TestRng};

/// An arbitrary index into a collection of yet-unknown length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}
