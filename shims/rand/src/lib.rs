//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal API surface it actually uses: [`RngCore`],
//! [`CryptoRng`], [`SeedableRng`], [`Rng::gen_range`], [`rngs::StdRng`]
//! and [`thread_rng`]. `StdRng` is a deterministic xoshiro256** seeded
//! via SplitMix64 — the workspace only relies on *seeded determinism*,
//! never on matching upstream `rand`'s exact stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the shim's
/// own generators; exists so `try_fill_bytes` signatures match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (mirrors `rand_core`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; the shim's generators never fail.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Convenience extension over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (modulo-reduced; fine for
    /// simulation and test workloads, which is all this shim serves).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = Self::rotl(s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

/// A per-call generator seeded from the system clock and a process-wide
/// counter (stands in for `rand::thread_rng`; NOT cryptographically
/// strong — the workspace's own `HmacDrbg` is the real CSPRNG).
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    ThreadRng {
        inner: <rngs::StdRng as SeedableRng>::seed_from_u64(nanos ^ n.rotate_left(32)),
    }
}

/// The generator returned by [`thread_rng`].
#[derive(Debug, Clone)]
pub struct ThreadRng {
    inner: rngs::StdRng,
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

impl CryptoRng for ThreadRng {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for i in 1usize..50 {
            let v = r.gen_range(0..i);
            assert!(v < i);
            let w = r.gen_range(0..=i);
            assert!(w <= i);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
