//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces so existing `use serde::{Deserialize,
//! Serialize}` imports and `#[derive(...)]` attributes compile unchanged.
//! Nothing in the workspace actually serializes through serde, so the
//! derives are no-ops and the traits are empty markers.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
