//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never serializes through serde (JSON output in the bench binaries
//! is hand-rolled). These derives therefore expand to nothing: the
//! attribute remains valid, no impls are emitted, and no code depends on
//! the absent impls.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
