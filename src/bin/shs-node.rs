//! `shs-node` — a supervised secret-handshake node over framed TCP.
//!
//! One node is one party of a GCD handshake session on a real network.
//! A *listening* node additionally hosts the broadcast relay that
//! bridges every party's framed connection into lockstep exchanges
//! (`--relay-only` hosts the relay without playing a party). Identity
//! is deterministic: the node regenerates its whole group from
//! `group_seed`, so any two nodes configured with the same seed hold
//! credentials of the same group — and nodes with different seeds are
//! strangers whose handshake fails ordinarily.
//!
//! ```text
//! shs-node init --config a.conf --group-seed demo --group-size 2 \
//!     --member-index 0 --listen 127.0.0.1:7777
//! shs-node init --config b.conf --group-seed demo --group-size 2 \
//!     --member-index 1 --peer 127.0.0.1:7777
//! shs-node run --config a.conf --report a.json   # terminal 1
//! shs-node run --config b.conf --report b.json   # terminal 2
//! ```
//!
//! The listening node prints `listening on ADDR` once the relay is
//! bound (scripts parse this to learn the ephemeral port). `--chaos
//! KIND:ROUND:FROM:TO` installs a fault rule at the relay's framing
//! boundary, e.g. `--chaos corrupt:dgka-r1:1:0`. The report JSON never
//! contains secrets — only a derived fingerprint so two reports can be
//! compared for key agreement.

use shs_core::config::DgkaChoice;
use shs_core::handshake::party::run_party;
use shs_core::{fixtures, Actor, HandshakeOptions, Member, SchemeKind};
use shs_crypto::drbg::HmacDrbg;
use shs_crypto::Key;
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::tcp::{RelayConfig, RelayHandle, SupervisorConfig, TcpParty};
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("shs-node: {e}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("init") => cmd_init(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    }
}

const USAGE: &str = "\
shs-node — a secret-handshake node over framed TCP

USAGE:
  shs-node init --config PATH [--group-seed SEED] [--scheme KIND]
                [--group-size N] [--member-index I] [--slots M]
                [--listen ADDR | --peer ADDR]
  shs-node run  --config PATH [--listen ADDR | --peer ADDR]
                [--report PATH] [--chaos KIND:ROUND:FROM:TO]
                [--relay-only]

SCHEMES: scheme1 (default), scheme1-classic, scheme2
CHAOS KINDS: drop, corrupt, truncate, duplicate, delay";

/// The node's durable configuration (a `key = value` file).
#[derive(Debug, Clone)]
struct Config {
    group_seed: String,
    scheme: String,
    group_size: usize,
    member_index: usize,
    slots: usize,
    listen: Option<String>,
    peer: Option<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            group_seed: "shs-demo".to_string(),
            scheme: "scheme1".to_string(),
            group_size: 2,
            member_index: 0,
            slots: 2,
            listen: None,
            peer: None,
        }
    }
}

impl Config {
    fn render(&self) -> String {
        let mut out = String::from("# shs-node identity and session configuration\n");
        let _ = writeln!(out, "group_seed = {}", self.group_seed);
        let _ = writeln!(out, "scheme = {}", self.scheme);
        let _ = writeln!(out, "group_size = {}", self.group_size);
        let _ = writeln!(out, "member_index = {}", self.member_index);
        let _ = writeln!(out, "slots = {}", self.slots);
        if let Some(l) = &self.listen {
            let _ = writeln!(out, "listen = {l}");
        }
        if let Some(p) = &self.peer {
            let _ = writeln!(out, "peer = {p}");
        }
        out
    }

    fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("config line {}: expected `key = value`", no + 1))?;
            let (key, value) = (key.trim(), value.trim().to_string());
            match key {
                "group_seed" => cfg.group_seed = value,
                "scheme" => cfg.scheme = value,
                "group_size" => cfg.group_size = parse_num(key, &value)?,
                "member_index" => cfg.member_index = parse_num(key, &value)?,
                "slots" => cfg.slots = parse_num(key, &value)?,
                "listen" => cfg.listen = Some(value),
                "peer" => cfg.peer = Some(value),
                other => return Err(format!("config line {}: unknown key `{other}`", no + 1)),
            }
        }
        Ok(cfg)
    }

    fn scheme_kind(&self) -> Result<SchemeKind, String> {
        // lint:allow(factory-dispatch) reason="CLI string-to-enum parsing; backends are still constructed through the factory"
        match self.scheme.as_str() {
            "scheme1" => Ok(SchemeKind::Scheme1),
            "scheme1-classic" => Ok(SchemeKind::Scheme1Classic),
            "scheme2" => Ok(SchemeKind::Scheme2SelfDistinct),
            other => Err(format!("unknown scheme `{other}`")),
        }
    }

    /// Deterministically regenerates this node's member credential from
    /// the group seed: same seed, same group, anywhere.
    fn member(&self) -> Result<Member, String> {
        let scheme = self.scheme_kind()?;
        let mut seed = b"shs-node-identity:".to_vec();
        seed.extend_from_slice(self.group_seed.as_bytes());
        let mut rng = HmacDrbg::from_seed(&seed);
        let (_, mut members) = fixtures::group_with_members(scheme, self.group_size, &mut rng)
            .map_err(|e| format!("group generation: {e}"))?;
        if self.member_index >= members.len() {
            return Err(format!(
                "member_index {} out of range for group_size {}",
                self.member_index, self.group_size
            ));
        }
        Ok(members.swap_remove(self.member_index))
    }
}

fn parse_num(key: &str, value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("config: `{key}` must be a number, got `{value}`"))
}

/// The run-scoped flags that live outside the durable [`Config`].
#[derive(Default)]
struct RunFlags {
    config_path: Option<String>,
    report: Option<String>,
    relay_only: bool,
    chaos: Option<String>,
}

/// Applies `--key value` style overrides shared by init and run.
fn apply_flags(cfg: &mut Config, args: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag `{flag}` needs a value"))
        };
        match flag.as_str() {
            "--config" => flags.config_path = Some(take()?),
            "--group-seed" => cfg.group_seed = take()?,
            "--scheme" => cfg.scheme = take()?,
            "--group-size" => cfg.group_size = parse_num("group-size", &take()?)?,
            "--member-index" => cfg.member_index = parse_num("member-index", &take()?)?,
            "--slots" => cfg.slots = parse_num("slots", &take()?)?,
            "--listen" => cfg.listen = Some(take()?),
            "--peer" => cfg.peer = Some(take()?),
            "--report" => flags.report = Some(take()?),
            "--chaos" => flags.chaos = Some(take()?),
            "--relay-only" => flags.relay_only = true,
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(flags)
}

/// `init`: write a config file with the provided identity.
fn cmd_init(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = Config::default();
    let flags = apply_flags(&mut cfg, args)?;
    let path = flags.config_path.ok_or("init needs --config PATH")?;
    cfg.scheme_kind()?; // validate early
    if cfg.listen.is_some() && cfg.peer.is_some() {
        return Err("choose one of --listen or --peer".to_string());
    }
    std::fs::write(&path, cfg.render()).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(ExitCode::SUCCESS)
}

/// Parses `KIND:ROUND:FROM:TO` into a relay-side fault plan.
fn parse_chaos(spec: &str, seed_text: &str) -> Result<FaultPlan, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [kind, round, from, to] = parts.as_slice() else {
        return Err(format!("--chaos `{spec}`: expected KIND:ROUND:FROM:TO"));
    };
    let from: usize = from
        .parse()
        .map_err(|_| format!("--chaos: bad FROM `{from}`"))?;
    let to: usize = to.parse().map_err(|_| format!("--chaos: bad TO `{to}`"))?;
    let rule = match *kind {
        "drop" => FaultRule::drop(),
        "corrupt" => FaultRule::corrupt(5),
        "truncate" => FaultRule::truncate(),
        "duplicate" => FaultRule::duplicate(),
        "delay" => FaultRule::delay(1),
        other => return Err(format!("--chaos: unknown kind `{other}`")),
    };
    // Deterministic seed from the textual config, so reruns reproduce.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in seed_text.bytes().chain(spec.bytes()) {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    Ok(FaultPlan::new(seed).with(rule.in_round(round).from(from).to(to)))
}

/// `run`: host the relay and/or play one party.
fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    // Parse twice: once to find --config, then overrides on top of it.
    let mut probe = Config::default();
    let first = apply_flags(&mut probe, args)?;
    let mut cfg = match &first.config_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
            Config::parse(&text)?
        }
        None => Config::default(),
    };
    let flags = apply_flags(&mut cfg, args)?;
    let RunFlags {
        config_path: _,
        report,
        relay_only,
        chaos,
    } = flags;

    let relay = match &cfg.listen {
        Some(addr) => {
            let plan = match &chaos {
                Some(spec) => Some(parse_chaos(spec, &cfg.group_seed)?),
                None => None,
            };
            let relay = RelayHandle::bind(addr.as_str(), RelayConfig::new(cfg.slots), plan)
                .map_err(|e| format!("bind relay on {addr}: {e}"))?;
            println!("listening on {}", relay.addr());
            let _ = std::io::stdout().flush();
            Some(relay)
        }
        None => {
            if chaos.is_some() {
                return Err("--chaos needs --listen (faults live at the relay)".to_string());
            }
            None
        }
    };

    let party_report = if relay_only {
        None
    } else {
        let member = cfg.member()?;
        let target = match (&relay, &cfg.peer) {
            (Some(r), None) => r.addr(),
            (None, Some(peer)) => peer
                .parse()
                .map_err(|_| format!("bad peer address `{peer}`"))?,
            (Some(_), Some(_)) => return Err("choose one of listen or peer".to_string()),
            (None, None) => return Err("run needs listen, peer, or --relay-only".to_string()),
        };
        let sup = SupervisorConfig {
            seed: cfg.member_index as u64,
            ..SupervisorConfig::default()
        };
        let mut link =
            TcpParty::attach(target, sup, None).map_err(|e| format!("attach to {target}: {e}"))?;
        let opts = HandshakeOptions {
            dgka: DgkaChoice::BurmesterDesmedt,
            ..HandshakeOptions::default()
        };
        let mut rng = session_rng(&cfg);
        let out = run_party(
            &Actor::Member(&member),
            &opts,
            &mut link,
            Duration::from_secs(10),
            &mut rng,
        )
        .map_err(|e| format!("handshake: {e}"))?;
        link.finish();
        Some(out)
    };

    // Let in-flight frames settle, then snapshot the relay's view.
    let relay_json = relay.as_ref().map(|r| {
        r.wait_done(Duration::from_secs(15));
        render_relay(r)
    });
    let json = render_report(&cfg, party_report.as_ref(), relay_json.as_deref());
    match &report {
        Some(p) => std::fs::write(p, &json).map_err(|e| format!("write {p}: {e}"))?,
        None => println!("{json}"),
    }
    if let Some(r) = relay {
        r.shutdown();
    }
    Ok(ExitCode::SUCCESS)
}

/// Per-node session randomness: distinct per member so decoys and
/// ephemeral exponents differ across nodes even with a shared seed.
fn session_rng(cfg: &Config) -> HmacDrbg {
    let mut seed = b"shs-node-session:".to_vec();
    seed.extend_from_slice(cfg.group_seed.as_bytes());
    seed.extend_from_slice(&(cfg.member_index as u64).to_be_bytes());
    seed.extend_from_slice(&std::process::id().to_be_bytes());
    HmacDrbg::from_seed(&seed)
}

/// A non-secret fingerprint of the established key: two reports agree
/// on it iff the parties derived the same session key.
fn fingerprint(key: &Key) -> String {
    let fp = Key::derive(key.as_bytes(), "shs-node-fingerprint");
    let mut hex = String::new();
    for b in fp.as_bytes().iter().take(8) {
        let _ = write!(hex, "{b:02x}");
    }
    hex
}

fn render_relay(relay: &RelayHandle) -> String {
    let log = relay.traffic();
    let mut out = String::from("{\"records\": [");
    for (i, rec) in log.records().iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"round\": \"{}\", \"slot\": {}, \"len\": {}}}",
            if i > 0 { ", " } else { "" },
            rec.round,
            rec.from_slot,
            rec.payload.len()
        );
    }
    let _ = write!(out, "], \"crashed\": {:?}", relay.crashed_slots());
    let f = log.faults();
    let _ = write!(
        out,
        ", \"faults\": {{\"dropped\": {}, \"corrupted\": {}, \"truncated\": {}, \
         \"duplicated\": {}, \"delayed\": {}, \"backpressure_dropped\": {}}}}}",
        f.dropped, f.corrupted, f.truncated, f.duplicated, f.delayed, f.backpressure_dropped
    );
    out
}

fn render_report(
    cfg: &Config,
    party: Option<&shs_core::PartyOutcome>,
    relay: Option<&str>,
) -> String {
    let role = match (&cfg.listen, party.is_some()) {
        (Some(_), true) => "listen",
        (Some(_), false) => "relay",
        (None, _) => "peer",
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"role\": \"{role}\",");
    if let Some(p) = party {
        let o = &p.outcome;
        let _ = writeln!(out, "  \"slot\": {},", o.slot);
        let _ = writeln!(out, "  \"accepted\": {},", o.accepted);
        let _ = writeln!(out, "  \"partial\": {},", o.partial_accepted());
        match &o.abort {
            Some(a) => {
                let _ = writeln!(out, "  \"abort\": \"{a}\",");
            }
            None => {
                let _ = writeln!(out, "  \"abort\": null,");
            }
        }
        let _ = writeln!(out, "  \"delta\": {:?},", o.same_group_slots);
        match &o.session_key {
            Some(key) => {
                let _ = writeln!(out, "  \"key_fingerprint\": \"{}\",", fingerprint(key));
            }
            None => {
                let _ = writeln!(out, "  \"key_fingerprint\": null,");
            }
        }
        let _ = writeln!(out, "  \"exchanges\": {},", p.stats.exchanges);
        let _ = writeln!(out, "  \"retries\": {},", p.stats.retries);
        let _ = writeln!(out, "  \"reconnects\": {},", p.stats.reconnects);
        let _ = writeln!(
            out,
            "  \"deadline_timeouts\": {},",
            p.stats.deadline_timeouts
        );
    }
    match relay {
        Some(r) => {
            let _ = writeln!(out, "  \"relay\": {r}");
        }
        None => {
            let _ = writeln!(out, "  \"relay\": null");
        }
    }
    out.push_str("}\n");
    out
}
