//! **secret-handshakes** — multi-party anonymous and unobservable
//! authentication: the GCD secret-handshake framework of Tsudik & Xu
//! (PODC 2005), with every substrate implemented from scratch.
//!
//! This meta-crate re-exports the workspace so downstream users can depend
//! on a single crate:
//!
//! * [`core`] — the GCD framework (`GroupAuthority`, `Member`,
//!   `run_handshake`, tracing, roles).
//! * [`gsig`] — Kiayias–Yung and ACJT group signatures, CRL, accumulator.
//! * [`cgkd`] — LKH / Subset-Difference / star key distribution.
//! * [`dgka`] — Burmester–Desmedt, GDH.2, and the Katz–Yung
//!   authenticated compiler.
//! * [`groups`] — Schnorr groups, `QR(n)`, ElGamal, Cramer–Shoup,
//!   Pedersen commitments.
//! * [`crypto`] — SHA-256 / HMAC / HKDF / ChaCha20 / AEAD / HMAC-DRBG.
//! * [`bigint`] — the arbitrary-precision arithmetic everything rests on.
//! * [`net`] — the anonymous-channel network simulator.
//!
//! # Example
//!
//! ```rust
//! use secret_handshakes::prelude::*;
//!
//! # fn main() -> Result<(), secret_handshakes::core::CoreError> {
//! let mut rng = secret_handshakes::crypto::drbg::HmacDrbg::from_seed(b"facade-doc");
//! let mut ga = secret_handshakes::core::fixtures::test_authority(SchemeKind::Scheme1, &mut rng);
//! let (mut alice, _) = ga.admit(&mut rng)?;
//! let (bob, update) = ga.admit(&mut rng)?;
//! alice.apply_update(&update)?;
//! let result = run_handshake(
//!     &[Actor::Member(&alice), Actor::Member(&bob)],
//!     &HandshakeOptions::default(),
//!     &mut rng,
//! )?;
//! assert!(result.outcomes.iter().all(|o| o.accepted));
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the architecture, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shs_bigint as bigint;
pub use shs_cgkd as cgkd;
pub use shs_core as core;
pub use shs_crypto as crypto;
pub use shs_dgka as dgka;
pub use shs_groups as groups;
pub use shs_gsig as gsig;
pub use shs_net as net;

/// The most common imports for running secret handshakes.
pub mod prelude {
    pub use shs_core::handshake::run_handshake;
    pub use shs_core::{
        Actor, BulletinBoard, CoreError, GroupAuthority, GroupConfig, HandshakeOptions, Member,
        SchemeKind, TracePolicy,
    };
    pub use shs_crypto::Key;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Smoke-check that the re-export paths stay wired.
        let _ = crate::core::GroupConfig::default();
        let _ = crate::crypto::Key::from_bytes([0; 32]);
        let _ = crate::bigint::Ubig::one();
    }
}
