//! Adversarial experiments (E7): the attacks §3 of the paper uses to
//! motivate the GCD composition, run against both the naive designs and
//! the real framework.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::{run_handshake, run_handshake_with_net};
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_crypto::hmac;
use shs_net::sync::BroadcastNet;
use shs_net::DeliveryPolicy;

/// Fig. 2 "resistance to impersonation": an outsider — even one playing
/// several roles — convinces nobody.
#[test]
fn outsider_impersonation_fails() {
    let mut r = rng("atk-outsider");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Outsider,
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    // The members see each other but not the outsider.
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 1]);
    assert_eq!(result.outcomes[1].same_group_slots, vec![0, 1]);
    assert!(!result.outcomes[0].accepted);
    // The outsider learns nothing: its Δ contains only itself.
    assert_eq!(result.outcomes[2].same_group_slots, vec![2]);
    assert!(result.outcomes[2].session_key.is_none());
}

/// The multi-role variant: an adversary occupying several slots still
/// convinces nobody (Fig. 2: "remains true even if A plays the roles of
/// multiple participants").
#[test]
fn multi_role_outsider_still_fails() {
    let mut r = rng("atk-multirole");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&members[0]),
        Actor::Outsider,
        Actor::Outsider,
        Actor::Member(&members[1]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 3]);
    assert!(!result.outcomes[0].accepted);
}

/// §3 drawback (1) demonstrated: a handshake built on CGKD alone is
/// detectable by any *eavesdropping* group member, because Phase-II-style
/// tags would be keyed by the long-lived group key `k` instead of the
/// session-blinded `k' = k* ⊕ k`.
#[test]
fn naive_cgkd_only_design_is_detectable_by_insiders() {
    let mut r = rng("atk-naive");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);

    // Naive design: parties authenticate with MAC(k, session-nonce).
    let nonce = b"naive-session-nonce";
    let naive_tag = hmac::mac(members[0].group_key().as_bytes(), nonce);
    // A passive insider (member 2) who merely OBSERVES the tag can verify
    // it with its own copy of k: the handshake is detected.
    assert!(hmac::verify(
        members[2].group_key().as_bytes(),
        nonce,
        &naive_tag
    ));

    // GCD: the observed Phase-II tag is keyed by k' = k* ⊕ k, and k* is
    // known only to the *participants* of the DGKA run. The insider
    // cannot recompute or verify it.
    let session = [Actor::Member(&members[0]), Actor::Member(&members[1])];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let observed_tag = result
        .traffic
        .records()
        .iter()
        .find(|rec| rec.round == "phase2-mac")
        .expect("phase 2 observed")
        .payload
        .clone();
    // The insider tries the only key it has (k) against the observed tag
    // with every sender slot's public Phase-I contribution — no match.
    assert_ne!(
        observed_tag,
        hmac::mac(members[2].group_key().as_bytes(), nonce).to_vec(),
        "insider cannot reproduce GCD phase-2 tags"
    );
}

/// §3 revocation interplay, the reason GCD keeps BOTH revocation
/// mechanisms: an unrevoked member leaks the new CGKD group key to a
/// revoked member.
///
/// * Under `Scheme1Classic` (ACJT: no signature-level revocation) the
///   attack SUCCEEDS — the revoked member completes the handshake.
/// * Under `Scheme1` (KY with verifier-local revocation) the attack
///   FAILS — honest members reject the revoked member's signature via the
///   CRL even though its MAC was valid.
#[test]
fn leaked_group_key_attack_blocked_only_with_gsig_revocation() {
    for (scheme, attack_succeeds) in [
        (SchemeKind::Scheme1Classic, true),
        (SchemeKind::Scheme1, false),
    ] {
        let mut r = rng("atk-leak");
        let (mut ga, mut members) = group(scheme, 3, &mut r);
        // Revoke member 2.
        let revoked_id = members[2].id();
        let update = ga.remove(revoked_id, &mut r).unwrap();
        let mut victim = members.pop().unwrap();
        let mut accomplice = members.pop().unwrap();
        members[0].apply_update(&update).unwrap();
        accomplice.apply_update(&update).unwrap();
        // The revoked member cannot process the update...
        assert!(victim.apply_update(&update).is_err());
        // ...but the malicious accomplice leaks the fresh key (§3).
        victim.adopt_leaked_key(accomplice.leak_group_key(), accomplice.epoch());

        let session = [
            Actor::Member(&members[0]),
            Actor::Member(&accomplice),
            Actor::Member(&victim),
        ];
        let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
        let honest = &result.outcomes[0];
        // The MAC phase always passes (the leaked key is genuine)...
        assert_eq!(honest.same_group_slots, vec![0, 1, 2], "{scheme:?}");
        // ...so everything hinges on GSIG revocation:
        assert_eq!(
            honest.accepted, attack_succeeds,
            "{scheme:?}: leaked-key attack outcome"
        );
        if !attack_succeeds {
            assert!(
                !honest.verified_slots.contains(&2),
                "VLR rejects the revoked member's signature"
            );
        }
    }
}

/// An active man-in-the-middle substitutes a well-formed group element of
/// its own choosing in the DGKA (the classic unauthenticated-DH attack);
/// Phase II detects the desynchronized keys and the handshake fails
/// closed for the attacked party.
#[test]
fn mitm_substitution_fails_closed() {
    let mut r = rng("atk-mitm");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let acts = actors(&members);
    let schnorr =
        shs_groups::schnorr::SchnorrGroup::system_wide(shs_groups::schnorr::SchnorrPreset::Test);
    let attacker_z = schnorr.exp_g(&shs_bigint::Ubig::from_u64(123456789));
    let p_width = (schnorr.p().bits() as usize).div_ceil(8);
    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_interceptor(Box::new(move |ctx, payload| {
        // Replace slot 1's z with the attacker's own group element, but
        // only on the link towards slot 0.
        if ctx.round == "dgka-r1" && ctx.from_slot == 1 && ctx.to_slot == 0 {
            payload.truncate(4); // keep the sender index
            payload.extend_from_slice(&attacker_z.to_bytes_be_padded(p_width));
        }
    }));
    let result =
        run_handshake_with_net(&acts, &HandshakeOptions::default(), &mut net, &mut r).unwrap();
    assert!(!result.outcomes[0].accepted, "attacked party rejects");
    // The attacked party's view of slot 1 diverged, so slot 1 is not in
    // its co-member set.
    assert!(!result.outcomes[0].same_group_slots.contains(&1));
    // And crucially the MITM itself gained nothing: no party handed out a
    // session key involving the attacker's value.
    assert!(result.outcomes[0].session_key.is_none());
}

/// Injecting a non-group element is detected immediately: the attacked
/// party raises a structured abort (never a hang or a panic), keeps
/// emitting decoy traffic, and — Burmester–Desmedt being all-or-nothing —
/// the whole session degrades to a failed handshake.
#[test]
fn mitm_garbage_injection_aborts() {
    let mut r = rng("atk-mitm-garbage");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let acts = actors(&members);
    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_interceptor(Box::new(|ctx, payload| {
        if ctx.round == "dgka-r1" && ctx.from_slot == 1 && ctx.to_slot == 0 {
            let last = payload.len() - 1;
            payload[last] ^= 1;
        }
    }));
    let result = run_handshake_with_net(&acts, &HandshakeOptions::default(), &mut net, &mut r)
        .expect("hardened runtime terminates with a structured outcome");
    assert!(
        result.outcomes[0].abort.is_some(),
        "attacked party reports a structured abort"
    );
    for outcome in &result.outcomes {
        assert!(!outcome.accepted, "no party accepts a poisoned session");
        assert!(outcome.session_key.is_none());
    }
    assert!(result.stats.retries > 0, "the driver did try to recover");
}

/// Tampering with a Phase-III payload invalidates exactly that sender's
/// signature for the attacked receiver.
#[test]
fn phase3_tampering_rejected() {
    let mut r = rng("atk-p3");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let acts = actors(&members);
    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_interceptor(Box::new(|ctx, payload| {
        if ctx.round == "phase3-full" && ctx.from_slot == 2 && ctx.to_slot == 0 {
            payload[10] ^= 0xFF;
        }
    }));
    let result =
        run_handshake_with_net(&acts, &HandshakeOptions::default(), &mut net, &mut r).unwrap();
    assert!(!result.outcomes[0].accepted);
    assert!(!result.outcomes[0].verified_slots.contains(&2));
    // Unattacked parties still fully accept.
    assert!(result.outcomes[1].accepted);
}
