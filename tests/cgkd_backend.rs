//! The C of GCD is pluggable (§5): the framework runs unchanged on the
//! stateless Subset-Difference backend instead of LKH.

mod common;

use common::rng;
use shs_core::handshake::{run_handshake, Actor};
use shs_core::{GroupAuthority, GroupConfig, HandshakeOptions, Member, SchemeKind};

fn sd_group(n: usize, r: &mut impl rand::RngCore) -> (GroupAuthority, Vec<Member>) {
    let (rsa, secret) = shs_gsig::fixtures::test_rsa_setting().clone();
    let mut ga =
        GroupAuthority::create_with_rsa(GroupConfig::test_sd(SchemeKind::Scheme1), rsa, secret, r);
    let mut members: Vec<Member> = Vec::new();
    for _ in 0..n {
        let (joiner, update) = ga.admit(r).unwrap();
        for m in members.iter_mut() {
            m.apply_update(&update).unwrap();
        }
        members.push(joiner);
    }
    (ga, members)
}

#[test]
fn sd_backed_handshake_accepts() {
    let mut r = rng("sd-accept");
    let (ga, members) = sd_group(3, &mut r);
    for m in &members {
        assert_eq!(m.group_key(), ga.group_key());
    }
    let actors: Vec<Actor<'_>> = members.iter().map(Actor::Member).collect();
    let result = run_handshake(&actors, &HandshakeOptions::default(), &mut r).unwrap();
    assert!(result.outcomes.iter().all(|o| o.accepted));
    // Tracing works identically.
    let traced = ga.trace(&result.transcript);
    assert!(traced.iter().all(|t| t.result.is_ok()));
}

#[test]
fn sd_backed_revocation_excludes_member() {
    let mut r = rng("sd-revoke");
    let (mut ga, mut members) = sd_group(3, &mut r);
    let mut victim = members.pop().unwrap();
    let update = ga.remove(victim.id(), &mut r).unwrap();
    for m in members.iter_mut() {
        m.apply_update(&update).unwrap();
    }
    assert!(victim.apply_update(&update).is_err());
    // Revoked member with its stale key fails the MAC phase.
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&victim),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 1]);
    assert!(!result.outcomes[0].accepted);
}

#[test]
fn sd_members_are_stateless_receivers() {
    // A member that slept through several membership changes needs only
    // the LATEST update — the property SD buys (LKH members must process
    // every epoch in order; see lifecycle::updates_cannot_be_replayed_or_skipped).
    let mut r = rng("sd-stateless");
    let (mut ga, mut members) = sd_group(2, &mut r);
    let sleeper = &mut members[1];
    let (_m3, _u1) = ga.admit(&mut r).unwrap();
    let (_m4, _u2) = ga.admit(&mut r).unwrap();
    let (_m5, u3) = ga.admit(&mut r).unwrap();
    // The sleeper skips u1 and u2 entirely and applies only u3.
    sleeper.apply_update(&u3).unwrap();
    assert_eq!(sleeper.group_key(), ga.group_key());
}

#[test]
fn mixed_backends_interoperate_in_one_session() {
    // Groups with different CGKD backends can still meet in one handshake
    // session — the backend never shows on the wire.
    let mut r = rng("sd-mixed");
    let (_, lkh_members) =
        shs_core::fixtures::group_with_members(SchemeKind::Scheme1, 2, &mut r).unwrap();
    let (_, sd_members) = sd_group(2, &mut r);
    let session = [
        Actor::Member(&lkh_members[0]),
        Actor::Member(&sd_members[0]),
        Actor::Member(&lkh_members[1]),
        Actor::Member(&sd_members[1]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 2]);
    assert_eq!(result.outcomes[1].same_group_slots, vec![1, 3]);
    assert!(result.outcomes.iter().all(|o| o.partial_accepted()));
}
