//! Substrate-conformance harness (DESIGN.md §10): behavioral checks
//! that every CGKD backend and every DGKA protocol constructed through
//! `shs_core::factory` satisfies the `shs_core::substrate` contracts.
//!
//! The checks are written once against the trait objects and driven
//! over the full registries (`CgkdChoice::ALL`, `DgkaChoice::ALL`) by
//! `tests/substrate_conformance.rs`, so a new backend is conformance-
//! tested the moment it is added to its `ALL` array and the factory.

use rand::RngCore;
use shs_core::config::{CgkdChoice, DgkaChoice};
use shs_core::factory;
use shs_core::handshake::AbortReason;
use shs_core::substrate::Phase1Slot;
use shs_crypto::Key;
use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};

fn test_group() -> &'static SchnorrGroup {
    SchnorrGroup::system_wide(SchnorrPreset::Test)
}

/// Exercises one CGKD backend end to end: admit/evict round-trips, key
/// and epoch agreement between controller and slots, eviction security,
/// foreign-envelope rejection, cloning, and the E7b key-forcing hook.
pub fn check_cgkd(choice: CgkdChoice, rng: &mut dyn RngCore) {
    let mut ctrl = factory::cgkd_controller(choice, 8, rng);
    let mut slots: Vec<(shs_cgkd::UserId, Box<dyn shs_core::substrate::CgkdSlot>)> = Vec::new();
    let mut uids = Vec::new();
    for _ in 0..3 {
        let (uid, mut slot, rekey) = ctrl.admit(rng).expect("admit within capacity");
        for (_, s) in slots.iter_mut() {
            s.process(&rekey)
                .expect("existing member processes the join rekey");
        }
        slot.process(&rekey)
            .expect("joiner processes its own join rekey");
        assert_eq!(slot.id(), uid, "slot reports the uid it was admitted as");
        slots.push((uid, slot));
        uids.push(uid);
        let members = ctrl.members();
        for u in &uids {
            assert!(members.contains(u), "controller roster lists {u:?}");
        }
        for (u, s) in &slots {
            assert!(
                s.group_key() == ctrl.group_key(),
                "{choice:?}: member {u:?} disagrees with the controller key"
            );
            assert_eq!(s.epoch(), ctrl.epoch(), "epoch agreement for {u:?}");
        }
    }

    // Eviction: remaining members rekey, the evicted member cannot.
    let (evicted_uid, mut evicted) = slots.remove(1);
    let rekey = ctrl.evict(evicted_uid, rng).expect("evict a known member");
    for (u, s) in slots.iter_mut() {
        s.process(&rekey)
            .expect("remaining member processes the evict rekey");
        assert!(
            s.group_key() == ctrl.group_key(),
            "{choice:?}: member {u:?} disagrees after eviction"
        );
    }
    assert!(
        evicted.process(&rekey).is_err(),
        "{choice:?}: the evicted member decrypted the rekey that excludes it"
    );
    assert!(
        !ctrl.members().contains(&evicted_uid),
        "roster still lists the evicted member"
    );
    assert!(
        ctrl.evict(evicted_uid, rng).is_err(),
        "double-evict must fail structurally"
    );

    // Cloned slots stay in lockstep with the original.
    let mut cloned = slots[0].1.clone();
    let (_, _, rekey) = ctrl.admit(rng).expect("admit after evict");
    cloned.process(&rekey).expect("clone processes the rekey");
    slots[0]
        .1
        .process(&rekey)
        .expect("original processes the rekey");
    assert!(cloned.group_key() == slots[0].1.group_key());
    assert_eq!(cloned.epoch(), slots[0].1.epoch());

    // An envelope from a different backend is rejected, not misparsed.
    let other = CgkdChoice::ALL
        .into_iter()
        .find(|c| *c != choice)
        .expect("at least two backends registered");
    let mut foreign_ctrl = factory::cgkd_controller(other, 4, rng);
    let (_, _, foreign) = foreign_ctrl.admit(rng).expect("foreign admit");
    assert!(
        slots[0].1.process(&foreign).is_err(),
        "{choice:?}: accepted a {other:?} envelope"
    );

    // E7b hook: forcing a key bypasses rekey processing entirely.
    let leaked = Key::random(rng);
    slots[0].1.force_group_key(leaked.clone(), 99);
    assert!(slots[0].1.group_key() == &leaked);
    assert_eq!(slots[0].1.epoch(), 99);

    check_cgkd_epoch_windows(choice, rng);
}

/// Exercises the batched `apply_epoch`/`process_epoch` surface of one
/// CGKD backend: a whole churn window is one broadcast, mixed
/// join+leave windows keep everyone in agreement, the evicted member is
/// excluded by the very window that removes it, empty windows are
/// no-ops, and leaver validation is atomic.
fn check_cgkd_epoch_windows(choice: CgkdChoice, rng: &mut dyn RngCore) {
    let mut ctrl = factory::cgkd_controller(choice, 8, rng);

    // An initial build window: three joins, one broadcast.
    let outcome = ctrl.apply_epoch(3, &[], rng).expect("build window");
    assert_eq!(outcome.joined.len(), 3, "{choice:?}: three joined slots");
    assert_eq!(
        outcome.broadcast.epoch(),
        ctrl.epoch(),
        "{choice:?}: broadcast carries the window's final epoch"
    );
    let mut slots = outcome.joined;
    for (u, s) in &slots {
        assert_eq!(s.id(), *u, "{choice:?}: joined slot reports its uid");
        assert!(
            s.group_key() == ctrl.group_key(),
            "{choice:?}: joined slot {u:?} disagrees with the controller"
        );
        assert_eq!(s.epoch(), ctrl.epoch(), "{choice:?}: epoch agreement");
    }

    // A mixed window: evict one member and admit two, as ONE broadcast
    // (evict-then-rejoin inside a single epoch: the join may reuse the
    // freed slot).
    let (evicted_uid, mut evicted) = slots.remove(1);
    let outcome = ctrl
        .apply_epoch(2, &[evicted_uid], rng)
        .expect("mixed window");
    for (u, s) in slots.iter_mut() {
        s.process_epoch(&outcome.broadcast)
            .expect("survivor processes the window");
        assert!(
            s.group_key() == ctrl.group_key(),
            "{choice:?}: survivor {u:?} disagrees after the mixed window"
        );
        assert_eq!(s.epoch(), ctrl.epoch());
    }
    assert!(
        evicted.process_epoch(&outcome.broadcast).is_err(),
        "{choice:?}: the evicted member processed the window that removes it"
    );
    for (u, s) in &outcome.joined {
        assert!(
            s.group_key() == ctrl.group_key(),
            "{choice:?}: window joiner {u:?} is not synced"
        );
        assert_eq!(s.epoch(), ctrl.epoch());
    }
    slots.extend(outcome.joined);

    // An empty window is a no-op broadcast nobody needs to process.
    let before = ctrl.epoch();
    let outcome = ctrl.apply_epoch(0, &[], rng).expect("empty window");
    assert!(outcome.broadcast.is_empty(), "{choice:?}: empty window");
    assert!(outcome.joined.is_empty());
    assert_eq!(
        ctrl.epoch(),
        before,
        "{choice:?}: empty window bumped epoch"
    );
    assert!(
        slots[0].1.process_epoch(&outcome.broadcast).is_err(),
        "{choice:?}: an empty window must not be processable"
    );

    // Leaver validation is atomic: unknown and duplicated leavers are
    // rejected before any state changes.
    let live_uid = slots[0].0;
    for bad in [vec![evicted_uid], vec![live_uid, live_uid]] {
        let epoch = ctrl.epoch();
        let key = ctrl.group_key().clone();
        assert!(
            ctrl.apply_epoch(0, &bad, rng).is_err(),
            "{choice:?}: accepted invalid leaver list {bad:?}"
        );
        assert_eq!(
            ctrl.epoch(),
            epoch,
            "{choice:?}: failed window bumped epoch"
        );
        assert!(
            ctrl.group_key() == &key,
            "{choice:?}: failed window changed the group key"
        );
    }
}

/// Exercises one DGKA protocol through the slot state machine: an
/// honest lossless run must converge (same sid, same key, same recorded
/// contributions, no abort), and a lossy run must abort with chaff of
/// the honest wire shape (abort indistinguishability).
pub fn check_dgka(choice: DgkaChoice, m: usize, rng: &mut dyn RngCore) {
    let group = test_group();

    // --- Honest, lossless run ---------------------------------------
    let mut slots = factory::dgka_slots(choice, group, m, rng).expect("construct slots");
    assert_eq!(slots.len(), m);
    let rounds = slots[0].rounds();
    assert!(rounds >= 1, "{choice:?}: at least one round");
    assert!(
        slots.iter().all(|s| s.rounds() == rounds),
        "{choice:?}: slots disagree on the round count"
    );
    let labels: Vec<String> = (0..rounds).map(|t| slots[0].round_label(t)).collect();
    for (t, label) in labels.iter().enumerate() {
        assert!(
            labels[..t].iter().all(|l| l != label),
            "{choice:?}: duplicate round label `{label}`"
        );
        assert!(
            slots.iter().all(|s| &s.round_label(t) == label),
            "{choice:?}: slots disagree on the label of round {t}"
        );
    }
    let mut round_lens = Vec::with_capacity(rounds);
    for t in 0..rounds {
        let payloads: Vec<Vec<u8>> = slots.iter_mut().map(|s| s.emit(t, rng)).collect();
        let len = payloads[0].len();
        assert!(
            payloads.iter().all(|p| p.len() == len),
            "{choice:?}: round {t} payload lengths differ (wire shape leaks the sender)"
        );
        round_lens.push(len);
        for (to, s) in slots.iter().enumerate() {
            for (from, p) in payloads.iter().enumerate() {
                if from == to {
                    continue;
                }
                assert!(
                    s.validate(t, from, p),
                    "{choice:?}: round {t}: slot {to} rejects an honest payload from {from}"
                );
            }
        }
        let view: Vec<Option<Vec<u8>>> = payloads.into_iter().map(Some).collect();
        for s in slots.iter_mut() {
            s.absorb(t, &view, None, rng);
        }
    }
    let finished: Vec<(Phase1Slot, Option<AbortReason>)> =
        slots.iter_mut().map(|s| s.finish(rng)).collect();
    let first = &finished[0].0;
    for (i, (p1, abort)) in finished.iter().enumerate() {
        assert!(
            abort.is_none(),
            "{choice:?}: slot {i} aborted an honest run: {abort:?}"
        );
        assert!(
            !p1.sid.is_empty(),
            "{choice:?}: slot {i} derived an empty sid"
        );
        assert_eq!(
            p1.sid, first.sid,
            "{choice:?}: slot {i} derived a different sid"
        );
        assert!(
            p1.k_star == first.k_star,
            "{choice:?}: slot {i} derived a different key"
        );
        assert_eq!(
            p1.contributions.len(),
            m,
            "{choice:?}: slot {i} records {} contributions for {m} slots",
            p1.contributions.len()
        );
        assert_eq!(
            p1.contributions, first.contributions,
            "{choice:?}: slot {i} records different contributions"
        );
    }

    // --- Lossy run: slot 0's round-0 broadcast is lost for everyone --
    let mut slots = factory::dgka_slots(choice, group, m, rng).expect("construct slots");
    for (t, &honest_len) in round_lens.iter().enumerate() {
        let payloads: Vec<Vec<u8>> = slots.iter_mut().map(|s| s.emit(t, rng)).collect();
        assert!(
            payloads.iter().all(|p| p.len() == honest_len),
            "{choice:?}: aborted slots must emit chaff of the honest round-{t} length"
        );
        let mut view: Vec<Option<Vec<u8>>> = payloads.into_iter().map(Some).collect();
        let incomplete = (t == 0).then(|| {
            view[0] = None;
            AbortReason::KeyAgreement
        });
        for s in slots.iter_mut() {
            s.absorb(t, &view, incomplete, rng);
        }
    }
    for (i, s) in slots.iter_mut().enumerate() {
        let (p1, abort) = s.finish(rng);
        assert!(
            abort.is_some(),
            "{choice:?}: slot {i} completed although round 0 was incomplete"
        );
        assert_eq!(
            p1.sid.len(),
            first.sid.len(),
            "{choice:?}: slot {i}'s decoy sid has a distinguishable length"
        );
    }
}
