//! Shared helpers for the integration tests.
#![allow(dead_code)] // not every test binary uses every helper

pub mod conformance;

use rand::RngCore;
use shs_core::fixtures;
use shs_core::{Actor, GroupAuthority, Member, SchemeKind};
use shs_crypto::drbg::HmacDrbg;

/// Deterministic RNG for a test.
pub fn rng(label: &str) -> HmacDrbg {
    HmacDrbg::from_seed(label.as_bytes())
}

/// A group with `n` fully-updated members.
pub fn group(
    scheme: SchemeKind,
    n: usize,
    rng: &mut impl RngCore,
) -> (GroupAuthority, Vec<Member>) {
    fixtures::group_with_members(scheme, n, rng).expect("group fixture")
}

/// Borrows members as handshake actors.
pub fn actors(members: &[Member]) -> Vec<Actor<'_>> {
    members.iter().map(Actor::Member).collect()
}
