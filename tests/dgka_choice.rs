//! The framework really is a compiler (E3 within the handshake): swapping
//! the DGKA building block from Burmester–Desmedt to GDH.2 changes nothing
//! about the outcome semantics.

mod common;

use common::{actors, group, rng};
use shs_core::config::DgkaChoice;
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

fn gdh_opts() -> HandshakeOptions {
    HandshakeOptions {
        dgka: DgkaChoice::Gdh2,
        ..Default::default()
    }
}

#[test]
fn gdh_backed_handshake_accepts() {
    let mut r = rng("dc-accept");
    let (_, members) = group(SchemeKind::Scheme1, 4, &mut r);
    let result = run_handshake(&actors(&members), &gdh_opts(), &mut r).unwrap();
    for o in &result.outcomes {
        assert!(o.accepted, "slot {}", o.slot);
    }
    let key0 = result.outcomes[0].session_key.clone().unwrap();
    assert!(result
        .outcomes
        .iter()
        .all(|o| o.session_key.as_ref() == Some(&key0)));
}

#[test]
fn gdh_backed_mixed_session_partial_success() {
    let mut r = rng("dc-partial");
    let (_, a) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, b) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&a[0]),
        Actor::Member(&b[0]),
        Actor::Member(&a[1]),
        Actor::Member(&b[1]),
    ];
    let result = run_handshake(&session, &gdh_opts(), &mut r).unwrap();
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 2]);
    assert_eq!(result.outcomes[1].same_group_slots, vec![1, 3]);
    assert!(result
        .outcomes
        .iter()
        .all(|o| o.partial_accepted() && !o.accepted));
}

#[test]
fn gdh_backed_self_distinction_still_works() {
    let mut r = rng("dc-sd");
    let (_, members) = group(SchemeKind::Scheme2SelfDistinct, 2, &mut r);
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&members[0]),
    ];
    let result = run_handshake(&session, &gdh_opts(), &mut r).unwrap();
    assert_eq!(result.outcomes[1].duplicate_slots, vec![0, 2]);
    assert!(!result.outcomes[1].accepted);
}

#[test]
fn gdh_cover_traffic_keeps_shapes_identical() {
    // Success vs failure still shape-identical under the GDH chain with
    // cover traffic.
    let mut r = rng("dc-shape");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let (_, foreign) = group(SchemeKind::Scheme1, 1, &mut r);
    let ok = run_handshake(&actors(&members), &gdh_opts(), &mut r).unwrap();
    let opts = HandshakeOptions {
        partial_success: false,
        ..gdh_opts()
    };
    let mixed = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&foreign[0]),
    ];
    let failed = run_handshake(&mixed, &opts, &mut r).unwrap();
    assert_eq!(ok.traffic.shape(), failed.traffic.shape());
}

#[test]
fn gdh_round_count_differs_from_bd() {
    // The wire structure reflects the protocol: BD uses 2 DGKA rounds,
    // GDH uses m.
    let mut r = rng("dc-rounds");
    let (_, members) = group(SchemeKind::Scheme1, 4, &mut r);
    let bd = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let gdh = run_handshake(&actors(&members), &gdh_opts(), &mut r).unwrap();
    let dgka_rounds = |log: &shs_net::observe::TrafficLog| {
        log.records()
            .iter()
            .filter(|rec| rec.round.starts_with("dgka"))
            .map(|rec| rec.round.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    };
    assert_eq!(dgka_rounds(&bd.traffic), 2);
    assert_eq!(dgka_rounds(&gdh.traffic), 4);
}

#[test]
fn outsiders_fail_under_gdh_too() {
    let mut r = rng("dc-outsider");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Outsider,
    ];
    let result = run_handshake(&session, &gdh_opts(), &mut r).unwrap();
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 1]);
    assert_eq!(result.outcomes[2].same_group_slots, vec![2]);
}
