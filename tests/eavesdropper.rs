//! Indistinguishability to eavesdroppers and resistance to detection
//! (Fig. 2, experiment E7a): on the wire, successful, failed and
//! outsider-probed handshakes all look the same — identical rounds, slots
//! and message sizes; only (pseudo)random payload bits differ.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

#[test]
fn success_and_failure_have_identical_traffic_shape() {
    let mut r = rng("ev-shape");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let (_, foreign) = group(SchemeKind::Scheme1, 1, &mut r);

    // Successful 3-party handshake.
    let ok = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert!(ok.outcomes.iter().all(|o| o.accepted));

    // Failed 3-party handshake (one foreign member), strict mode so
    // everyone publishes decoys.
    let opts = HandshakeOptions {
        partial_success: false,
        ..Default::default()
    };
    let mixed = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&foreign[0]),
    ];
    let failed = run_handshake(&mixed, &opts, &mut r).unwrap();
    assert!(failed.outcomes.iter().all(|o| !o.accepted));

    assert_eq!(
        ok.traffic.shape(),
        failed.traffic.shape(),
        "an eavesdropper sees the same rounds, slots and sizes either way"
    );
}

#[test]
fn outsider_probe_has_identical_shape_too() {
    let mut r = rng("ev-outsider");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let ok = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let probed = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Outsider,
    ];
    let opts = HandshakeOptions {
        partial_success: false,
        ..Default::default()
    };
    let with_outsider = run_handshake(&probed, &opts, &mut r).unwrap();
    assert_eq!(ok.traffic.shape(), with_outsider.traffic.shape());
}

#[test]
fn partial_success_is_shape_identical_as_well() {
    // Even the partial-success extension leaks nothing in metadata: a
    // fully mixed and a fully successful session have the same shape.
    let mut r = rng("ev-partial");
    let (_, a_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, b_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let ok = {
        let (_, ms) = group(SchemeKind::Scheme1, 4, &mut r);
        run_handshake(&actors(&ms), &HandshakeOptions::default(), &mut r).unwrap()
    };
    let mixed = [
        Actor::Member(&a_members[0]),
        Actor::Member(&a_members[1]),
        Actor::Member(&b_members[0]),
        Actor::Member(&b_members[1]),
    ];
    let partial = run_handshake(&mixed, &HandshakeOptions::default(), &mut r).unwrap();
    assert!(partial
        .outcomes
        .iter()
        .all(|o| o.partial_accepted() && !o.accepted));
    assert_eq!(ok.traffic.shape(), partial.traffic.shape());
}

#[test]
fn payload_bits_do_differ() {
    // Sanity: the logs are shape-equal, not byte-equal.
    let mut r = rng("ev-bits");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let s1 = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let s2 = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert_eq!(s1.traffic.shape(), s2.traffic.shape());
    assert_ne!(s1.traffic, s2.traffic);
}

#[test]
fn every_slot_sends_the_same_number_of_messages() {
    // No party's behavior (member / outsider, success / failure) changes
    // its send pattern.
    let mut r = rng("ev-counts");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Outsider,
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    for slot in 0..3 {
        assert_eq!(result.traffic.messages_from(slot), 4, "slot {slot}");
    }
}
