//! Batched epoch windows are equivalent to sequential admit/evict: for
//! every CGKD backend, a `GroupAuthority::apply_epoch` churn window
//! leaves the group in the same observable state as the one-operation-
//! at-a-time `admit`/`remove` sequence — same roster size, every
//! surviving member in agreement with the authority, every evicted
//! member excluded by the very update that removes it. (Keys are not
//! literally equal across the two executions: they draw fresh
//! randomness in a different order. Equivalence is about member views.)
//!
//! Includes evict-then-rejoin inside a single window, which on LKH
//! reuses the freed leaf in the same rekey union.

mod common;

use common::rng;
use proptest::prelude::*;
use rand::RngCore;
use shs_core::config::CgkdChoice;
use shs_core::{fixtures, GroupConfig, GroupUpdate, Member, SchemeKind};
use shs_gsig::ky::MemberId;

/// One group evolving under churn, tracking survivors and evictees.
struct World {
    ga: shs_core::GroupAuthority,
    live: Vec<Member>,
    gone: Vec<Member>,
}

impl World {
    fn new(cgkd: CgkdChoice, initial: usize, r: &mut impl RngCore) -> World {
        let config = GroupConfig::test_with_cgkd(SchemeKind::Scheme1, cgkd);
        let (ga, live) = fixtures::group_with_config(config, initial, r).expect("world fixture");
        World {
            ga,
            live,
            gone: Vec::new(),
        }
    }

    /// Picks distinct leaver ids from the live roster given raw index
    /// material (the proptest schedule), at most `live.len() - 1` so the
    /// group never empties.
    fn pick_leavers(&self, raw: &[u8]) -> Vec<MemberId> {
        let mut ids = Vec::new();
        for sel in raw {
            if self.live.is_empty() || ids.len() + 1 >= self.live.len() {
                break;
            }
            let id = self.live[*sel as usize % self.live.len()].id();
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        ids
    }

    /// Splits the live roster into (survivors-to-be, leavers).
    fn split_leavers(&mut self, ids: &[MemberId]) -> Vec<Member> {
        let mut leaving = Vec::new();
        let mut staying = Vec::new();
        for m in self.live.drain(..) {
            if ids.contains(&m.id()) {
                leaving.push(m);
            } else {
                staying.push(m);
            }
        }
        self.live = staying;
        leaving
    }

    /// One batched window: evict `ids` and admit `joins` in a single
    /// `apply_epoch`, then distribute the single update.
    fn batched_window(&mut self, joins: usize, ids: &[MemberId], r: &mut impl RngCore) {
        let mut leaving = self.split_leavers(ids);
        let (new_members, update) = self.ga.apply_epoch(joins, ids, r).expect("batched window");
        for m in self.live.iter_mut() {
            m.apply_update(&update)
                .expect("survivor applies the window");
        }
        if !update.rekey.is_empty() {
            for m in leaving.iter_mut() {
                assert!(
                    m.apply_update(&update).is_err(),
                    "a leaver applied the window that evicts it"
                );
            }
        }
        self.gone.append(&mut leaving);
        self.live.extend(new_members);
    }

    /// The same window as a sequence of single-operation updates.
    fn sequential_window(&mut self, joins: usize, ids: &[MemberId], r: &mut impl RngCore) {
        for id in ids {
            let mut leaving = self.split_leavers(&[*id]);
            let update = self.ga.remove(*id, r).expect("sequential remove");
            self.distribute(&update);
            for m in leaving.iter_mut() {
                assert!(
                    m.apply_update(&update).is_err(),
                    "a leaver applied the update that evicts it"
                );
            }
            self.gone.append(&mut leaving);
        }
        for _ in 0..joins {
            let (joiner, update) = self.ga.admit(r).expect("sequential admit");
            self.distribute(&update);
            self.live.push(joiner);
        }
    }

    fn distribute(&mut self, update: &GroupUpdate) {
        for m in self.live.iter_mut() {
            m.apply_update(update).expect("survivor applies an update");
        }
    }

    /// The observable state every execution of the same schedule must
    /// agree on: everyone live tracks the authority, everyone gone is
    /// locked out of the current key.
    fn check_views(&self) {
        assert_eq!(self.live.len(), self.ga.member_count(), "roster size");
        for m in &self.live {
            assert_eq!(m.group_key(), self.ga.group_key(), "survivor key view");
            assert_eq!(m.epoch(), self.ga.epoch(), "survivor epoch view");
            assert_eq!(m.crl_version(), self.ga.crl_version(), "survivor CRL view");
        }
        for m in &self.gone {
            assert_ne!(m.group_key(), self.ga.group_key(), "evictee sees the key");
        }
    }
}

proptest! {
    // Each case churns two full groups (one per execution strategy)
    // through the same schedule; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For every backend and any churn schedule, the batched execution
    /// and the sequential execution produce the same member views.
    #[test]
    fn batched_window_matches_sequential(
        schedule in prop::collection::vec(
            (0usize..=2, prop::collection::vec(any::<u8>(), 0..=2)),
            1..=3,
        ),
        seed in any::<u64>(),
    ) {
        for cgkd in CgkdChoice::ALL {
            let mut r = rng(&format!("epoch-batching-{cgkd:?}-{seed}"));
            let mut batched = World::new(cgkd, 3, &mut r);
            let mut sequential = World::new(cgkd, 3, &mut r);
            for (joins, raw) in &schedule {
                // Both worlds hold the same-size roster, so the same raw
                // schedule picks structurally identical leaver sets.
                let b_ids = batched.pick_leavers(raw);
                let s_ids = sequential.pick_leavers(raw);
                prop_assert_eq!(b_ids.len(), s_ids.len());
                batched.batched_window(*joins, &b_ids, &mut r);
                sequential.sequential_window(*joins, &s_ids, &mut r);
                batched.check_views();
                sequential.check_views();
                prop_assert_eq!(batched.live.len(), sequential.live.len());
                // Batching compresses the whole window into one epoch.
                prop_assert!(batched.ga.epoch() <= sequential.ga.epoch());
            }
        }
    }
}

/// Evict-then-rejoin in ONE window: the join lands in the epoch that
/// evicts, and (on LKH) may reuse the freed leaf. The joiner must be a
/// fully functional member and the evictee must stay excluded.
#[test]
fn evict_then_rejoin_in_one_window() {
    for cgkd in CgkdChoice::ALL {
        let mut r = rng(&format!("evict-rejoin-{cgkd:?}"));
        let mut w = World::new(cgkd, 4, &mut r);
        let victim_id = w.live[1].id();
        let epoch_before = w.ga.epoch();
        w.batched_window(1, &[victim_id], &mut r);
        // Native backends (LKH, SD) compress the whole window into one
        // epoch; Star rides the default loop and bumps once per step.
        let expected = match cgkd {
            CgkdChoice::Star => epoch_before + 2,
            _ => epoch_before + 1,
        };
        assert_eq!(w.ga.epoch(), expected, "{cgkd:?}: window epoch count");
        w.check_views();
        // The rejoiner participates in the next window like anyone else.
        w.batched_window(0, &[], &mut r);
        w.check_views();
    }
}
