//! Fault-matrix experiments: handshakes on a lossy, malicious medium.
//!
//! Under *every* fault schedule the hardened runtime must terminate every
//! honest party within the session budget with either success or a
//! structured abort — never a hang, never a panic. Recoverable faults
//! (bounded drops, delays, duplicates) must additionally complete after
//! retransmission, and an aborted session must stay shape-identical on
//! the wire to an ordinary failed handshake.

mod common;

use std::collections::{BTreeMap, BTreeSet};

use common::{actors, group, rng};
use shs_core::config::DgkaChoice;
use shs_core::handshake::run_handshake_with_net;
use shs_core::{AbortReason, Actor, HandshakeOptions, SchemeKind};
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::observe::TrafficLog;
use shs_net::sync::BroadcastNet;
use shs_net::DeliveryPolicy;

/// One handshake over a faulty medium.
fn run_faulty(label: &str, plan: FaultPlan, opts: &HandshakeOptions) -> shs_core::SessionResult {
    let mut r = rng(label);
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let acts = actors(&members);
    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_fault_plan(plan);
    run_handshake_with_net(&acts, opts, &mut net, &mut r)
        .expect("faulty medium still yields a structured result")
}

/// The acceptance matrix: every fault kind, one schedule each. All
/// parties must terminate inside the budget with a structured outcome.
#[test]
fn fault_matrix_terminates_with_structured_outcomes() {
    let matrix: Vec<(&str, FaultPlan)> = vec![
        (
            "drop-unbounded",
            FaultPlan::new(11).with(FaultRule::drop().from(1).to(0)),
        ),
        (
            "duplicate",
            FaultPlan::new(12).with(FaultRule::duplicate().from(2)),
        ),
        (
            "corrupt",
            FaultPlan::new(13).with(FaultRule::corrupt(3).in_round("dgka-r1").from(1).to(0)),
        ),
        (
            "truncate",
            FaultPlan::new(14).with(FaultRule::truncate().in_round("dgka-r2").from(0).to(2)),
        ),
        (
            "delay",
            FaultPlan::new(15).with(FaultRule::delay(1).from(1).to(0).at_most(2)),
        ),
        (
            "crash-stop",
            FaultPlan::new(16).with(FaultRule::crash_stop(2, 1)),
        ),
        (
            "partition",
            FaultPlan::new(17).with(FaultRule::partition(1)),
        ),
        (
            "chaos",
            FaultPlan::new(18)
                .with(FaultRule::drop().with_probability(0.3))
                .with(FaultRule::corrupt(1).with_probability(0.2))
                .with(FaultRule::duplicate().with_probability(0.2)),
        ),
    ];
    let opts = HandshakeOptions::default();
    for (name, plan) in matrix {
        let result = run_faulty(&format!("fault-matrix-{name}"), plan, &opts);
        assert!(
            result.stats.exchanges <= opts.budget.max_exchanges,
            "{name}: stayed within the exchange budget"
        );
        for (slot, outcome) in result.outcomes.iter().enumerate() {
            // Structured: accepted, ordinary failure, or explicit abort —
            // reaching this line at all already proves no hang/panic.
            if outcome.abort.is_some() {
                assert!(
                    !outcome.accepted && outcome.session_key.is_none(),
                    "{name}: aborted slot {slot} keeps no key"
                );
            }
        }
    }
}

/// Recoverable faults — a bounded drop, a short delay, duplicates — cost
/// retransmissions but the handshake still fully succeeds.
#[test]
fn recoverable_faults_complete_after_retry() {
    let opts = HandshakeOptions::default();

    let dropped = run_faulty(
        "fault-recover-drop",
        FaultPlan::new(21).with(
            FaultRule::drop()
                .in_round("dgka-r1")
                .from(1)
                .to(0)
                .at_most(1),
        ),
        &opts,
    );
    assert!(
        dropped.outcomes.iter().all(|o| o.accepted),
        "drop recovered"
    );
    assert!(dropped.stats.retries > 0, "recovery was not free");
    assert_eq!(dropped.traffic.faults().dropped, 1);

    let delayed = run_faulty(
        "fault-recover-delay",
        FaultPlan::new(22).with(
            FaultRule::delay(1)
                .in_round("dgka-r2")
                .from(2)
                .to(1)
                .at_most(1),
        ),
        &opts,
    );
    assert!(
        delayed.outcomes.iter().all(|o| o.accepted),
        "delay recovered"
    );
    assert!(delayed.stats.retries > 0);
    assert_eq!(delayed.traffic.faults().delayed, 1);

    let duplicated = run_faulty(
        "fault-recover-duplicate",
        FaultPlan::new(23).with(FaultRule::duplicate()),
        &opts,
    );
    assert!(duplicated.outcomes.iter().all(|o| o.accepted));
    assert_eq!(
        duplicated.stats.retries, 0,
        "duplicates never trigger retransmission"
    );
    assert!(duplicated.traffic.faults().duplicated > 0);
}

/// The GDH.2 upflow chain recovers from a bounded drop on a chain link.
#[test]
fn gdh_chain_recovers_from_dropped_upflow() {
    let opts = HandshakeOptions {
        dgka: DgkaChoice::Gdh2,
        ..Default::default()
    };
    let result = run_faulty(
        "fault-gdh-drop",
        FaultPlan::new(31).with(
            FaultRule::drop()
                .in_round("dgka-gdh-0")
                .from(0)
                .to(1)
                .at_most(1),
        ),
        &opts,
    );
    assert!(result.outcomes.iter().all(|o| o.accepted));
    assert!(result.stats.retries > 0);
}

/// A crash-stopped slot is reported as such; the survivors still
/// terminate with structured aborts (Burmester–Desmedt needs everyone).
#[test]
fn crash_stop_is_reported_and_survivors_terminate() {
    let result = run_faulty(
        "fault-crash",
        FaultPlan::new(41).with(FaultRule::crash_stop(2, 1)),
        &HandshakeOptions::default(),
    );
    assert_eq!(result.outcomes[2].abort, Some(AbortReason::Crashed));
    for outcome in &result.outcomes {
        assert!(!outcome.accepted);
        assert!(outcome.abort.is_some(), "everyone aborts, nobody hangs");
    }
    assert!(result.traffic.faults().crash_silenced > 0);
}

/// A total partition exhausts the retry budget on every round; all
/// parties abort within the exchange budget instead of spinning.
#[test]
fn partition_aborts_within_budget() {
    let opts = HandshakeOptions::default();
    let result = run_faulty(
        "fault-partition",
        FaultPlan::new(51).with(FaultRule::partition(1)),
        &opts,
    );
    for outcome in &result.outcomes {
        assert!(!outcome.accepted);
        assert!(outcome.abort.is_some());
    }
    assert!(result.stats.exchanges <= opts.budget.max_exchanges);
    assert!(result.traffic.faults().partitioned > 0);
}

/// Per-round wire shape of a log: for each round label, the multiset of
/// `(slot, payload_len)` seen in one transmission of that round.
/// Retransmissions repeat a label with an identical multiset (everyone
/// retransmits together), so deduplicating by label recovers the
/// *behavioral* shape an eavesdropper attributes to the parties — the
/// repeats are attributable only to the lossy network.
fn per_round_shape(log: &TrafficLog) -> BTreeMap<String, BTreeSet<(usize, usize)>> {
    let mut by_round: BTreeMap<String, BTreeSet<(usize, usize)>> = BTreeMap::new();
    for rec in log.records() {
        by_round
            .entry(rec.round.clone())
            .or_default()
            .insert((rec.from_slot, rec.payload.len()));
    }
    by_round
}

/// The unobservability-under-faults requirement: a session in which a
/// party *aborts* (here: persistent corruption makes slot 1's Phase-I
/// element unusable for slot 0) emits, per round, exactly the traffic
/// shape of an ordinary failed handshake between members of different
/// groups. The aborting parties keep sending correctly-sized decoys.
#[test]
fn aborted_session_is_shape_identical_to_ordinary_failure() {
    // Ordinary failure: 2 + 1 members of different groups, no faults.
    let mut r = rng("fault-shape-ordinary");
    let (_, ours) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, foreign) = group(SchemeKind::Scheme1, 1, &mut r);
    let mixed = [
        Actor::Member(&ours[0]),
        Actor::Member(&ours[1]),
        Actor::Member(&foreign[0]),
    ];
    let opts = HandshakeOptions {
        partial_success: false,
        ..Default::default()
    };
    let mut plain_net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    let ordinary = run_handshake_with_net(&mixed, &opts, &mut plain_net, &mut r).unwrap();
    assert!(ordinary.outcomes.iter().all(|o| !o.accepted));
    assert!(ordinary.outcomes.iter().all(|o| o.abort.is_none()));

    // Aborted session: co-members, but slot 0 can never use slot 1's
    // element — it aborts and (Burmester–Desmedt being all-or-nothing)
    // drags the others into quiet aborts too.
    let aborted = run_faulty(
        "fault-shape-aborted",
        FaultPlan::new(61).with(FaultRule::corrupt(5).in_round("dgka-r1").from(1).to(0)),
        &opts,
    );
    assert!(aborted.outcomes.iter().any(|o| o.abort.is_some()));
    assert!(aborted.outcomes.iter().all(|o| !o.accepted));

    // Same rounds, same per-round per-slot message sizes.
    assert_eq!(
        per_round_shape(&ordinary.traffic),
        per_round_shape(&aborted.traffic),
        "an eavesdropper cannot tell a quiet abort from an ordinary failure"
    );

    // And within the aborted run, every retransmission of a round label
    // repeated the identical per-slot shape (uniform retransmission).
    let mut seen: BTreeMap<(String, usize), BTreeSet<usize>> = BTreeMap::new();
    for rec in aborted.traffic.records() {
        seen.entry((rec.round.clone(), rec.from_slot))
            .or_default()
            .insert(rec.payload.len());
    }
    for ((round, slot), lens) in seen {
        assert_eq!(
            lens.len(),
            1,
            "slot {slot} changed its {round} payload size across retransmissions"
        );
    }
}
