//! Decoder robustness: every public decoder must reject malformed input
//! with a typed error — never panic, never allocate absurdly — whatever
//! bytes a malicious network feeds it. Strategies cover fully arbitrary
//! buffers, truncations of valid encodings, and targeted bit flips.

use proptest::prelude::*;
use shs_bigint::Ubig;
use shs_core::codec;
use shs_core::wire::Reader;
use shs_groups::cs;
use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};
use shs_gsig::crl::CrlDelta;
use shs_gsig::ky::{MemberId, RevocationToken};
use shs_gsig::params::{GsigParams, GsigPreset};
use shs_net::tcp::frame::{self, Frame, FrameError};

fn params() -> GsigParams {
    GsigParams::preset(GsigPreset::Test)
}

fn schnorr() -> &'static SchnorrGroup {
    SchnorrGroup::system_wide(SchnorrPreset::Test)
}

/// A small, honestly-encoded CRL delta to mutate.
fn valid_crl_bytes(p: &GsigParams) -> Vec<u8> {
    let delta = CrlDelta {
        from_version: 3,
        to_version: 4,
        new_tokens: vec![
            RevocationToken {
                id: MemberId(7),
                x: Ubig::from_u64(0xDEAD_BEEF),
            },
            RevocationToken {
                id: MemberId(8),
                x: Ubig::from_u64(0x1234_5678),
            },
        ],
    };
    codec::encode_crl_delta(p, &delta)
}

/// Honestly-encoded TCP transport frames of every kind, to mutate.
fn valid_frames() -> Vec<Vec<u8>> {
    vec![
        Frame::Hello {
            version: frame::VERSION,
            want_slot: u32::MAX,
        }
        .encode(),
        Frame::Welcome { slot: 1, slots: 3 }.encode(),
        Frame::Broadcast {
            round: "dgka-r1".to_string(),
            from_slot: 2,
            payload: vec![0xC3; 96],
        }
        .encode(),
        Frame::RoundEnd {
            round: "phase3-full".to_string(),
        }
        .encode(),
        Frame::Heartbeat.encode(),
        Frame::Bye.encode(),
    ]
}

/// A small, honestly-encoded tracing ciphertext to mutate.
fn valid_delta_bytes(group: &SchnorrGroup) -> Vec<u8> {
    let ct = cs::Ciphertext {
        u1: Ubig::from_u64(11),
        u2: Ubig::from_u64(22),
        v: Ubig::from_u64(33),
        dem: vec![0xAB; 48],
    };
    codec::encode_delta(group, &ct)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes into every codec decoder: no panic, and a decoder
    /// that does accept must have consumed a buffer of exactly the
    /// length its parameters dictate (fixed-width encodings).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
        let p = params();
        let group = schnorr();
        if codec::decode_ky_sig(&p, &bytes).is_ok() {
            prop_assert_eq!(bytes.len(), codec::ky_sig_len(&p));
        }
        if codec::decode_acjt_sig(&p, &bytes).is_ok() {
            prop_assert_eq!(bytes.len(), codec::acjt_sig_len(&p));
        }
        if let Ok(ct) = codec::decode_delta(group, &bytes) {
            prop_assert_eq!(bytes.len(), codec::delta_len(group, ct.dem.len()));
        }
        // CRL deltas are variable-length; acceptance only requires that
        // the decode round-trips to the same bytes.
        if let Ok(delta) = codec::decode_crl_delta(&p, &bytes) {
            prop_assert_eq!(codec::encode_crl_delta(&p, &delta), bytes);
        }
    }

    /// Every strict prefix of a valid encoding is rejected (fixed-width
    /// fields make truncation always detectable).
    #[test]
    fn truncations_are_rejected(cut in 0usize..1000) {
        let p = params();
        let group = schnorr();
        for full in [valid_crl_bytes(&p), valid_delta_bytes(group)] {
            if cut < full.len() {
                let truncated = &full[..cut];
                prop_assert!(
                    codec::decode_crl_delta(&p, truncated).is_err()
                        || codec::decode_delta(group, truncated).is_err(),
                    "a strict prefix decoded under both decoders"
                );
            }
        }
        // Signature decoders demand the exact parameter-derived length.
        let sig_garbage = vec![0x5Au8; codec::ky_sig_len(&p)];
        if cut < sig_garbage.len() {
            prop_assert!(codec::decode_ky_sig(&p, &sig_garbage[..cut]).is_err());
            prop_assert!(codec::decode_acjt_sig(&p, &sig_garbage[..cut]).is_err());
        }
    }

    /// Single bit flips anywhere in a valid encoding: decoding must
    /// terminate with Ok or a typed error — it must never panic or hang
    /// on a huge phantom count.
    #[test]
    fn bit_flips_never_panic(bit in 0usize..4096, extra in any::<u8>()) {
        let p = params();
        let group = schnorr();
        for mut bytes in [valid_crl_bytes(&p), valid_delta_bytes(group)] {
            let nbits = bytes.len() * 8;
            bytes[(bit % nbits) / 8] ^= 1 << (bit % 8);
            // A second flip somewhere else, to hit multi-field damage.
            let second = (bit.wrapping_mul(31) + extra as usize) % nbits;
            bytes[second / 8] ^= 1 << (second % 8);
            let _ = codec::decode_crl_delta(&p, &bytes);
            let _ = codec::decode_delta(group, &bytes);
        }
    }

    /// The wire Reader survives arbitrary op sequences over arbitrary
    /// buffers: reads past the end are typed errors, and `finish` on a
    /// partially-consumed buffer is too.
    #[test]
    fn reader_ops_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        ops in prop::collection::vec(0u8..6, 1..24),
    ) {
        let mut r = Reader::new(&bytes);
        for op in &ops {
            let result_err = match op {
                0 => r.take_u8().is_err(),
                1 => r.take_u32().is_err(),
                2 => r.take_u64().is_err(),
                3 => r.take_bytes().is_err(),
                4 => r.take_ubig_fixed(33).is_err(),
                _ => r.take_raw(17).is_err(),
            };
            // Once the buffer is exhausted every subsequent read errors.
            if result_err && r.remaining() == 0 {
                prop_assert!(r.take_u8().is_err());
            }
        }
    }

    /// Length-prefixed reads with absurd counts are rejected instead of
    /// allocating: a `take_bytes` whose prefix promises more data than
    /// the buffer holds is a typed error.
    #[test]
    fn oversized_length_prefix_rejected(promised in 8u32..u32::MAX, tail in 0usize..32) {
        let mut bytes = promised.to_be_bytes().to_vec();
        bytes.extend(vec![0u8; tail.min(7)]);
        let mut r = Reader::new(&bytes);
        prop_assert!(r.take_bytes().is_err());
    }

    // ---- TCP transport frame codec --------------------------------------

    /// Arbitrary bytes into the frame decoder: never a panic, and an
    /// accepted decode must re-encode to exactly the bytes consumed
    /// (the codec is canonical).
    #[test]
    fn frame_arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok((f, used)) = frame::decode(&bytes) {
            prop_assert_eq!(f.encode(), bytes[..used].to_vec());
        }
    }

    /// Every strict prefix of every valid frame kind is rejected as
    /// `Truncated` — truncation is always detectable and structured.
    #[test]
    fn frame_truncations_are_structured(cut in 0usize..512) {
        for full in valid_frames() {
            if cut < full.len() {
                prop_assert_eq!(
                    frame::decode(&full[..cut]).unwrap_err(),
                    FrameError::Truncated
                );
            }
        }
    }

    /// An adversarial length prefix above the body cap is rejected *in
    /// the header*, before any body allocation, however large the claim
    /// and whatever garbage follows.
    #[test]
    fn frame_oversize_length_rejected_before_allocation(
        excess in 1u32..=(u32::MAX - frame::MAX_BODY_LEN),
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let len = frame::MAX_BODY_LEN + excess;
        let mut bytes = Frame::Heartbeat.encode();
        bytes[4..8].copy_from_slice(&len.to_be_bytes());
        bytes.extend(tail);
        prop_assert_eq!(
            frame::decode_header(&bytes).unwrap_err(),
            FrameError::Oversize { len }
        );
    }

    /// A version byte this build does not speak is a clean structured
    /// error naming the offending version, for every frame kind.
    #[test]
    fn frame_version_mismatch_is_structured(version in any::<u8>()) {
        prop_assume!(version != frame::VERSION);
        for mut bytes in valid_frames() {
            bytes[2] = version;
            prop_assert_eq!(
                frame::decode(&bytes).unwrap_err(),
                FrameError::UnsupportedVersion { got: version }
            );
        }
    }

    /// Random double bit flips across valid frames: decode terminates
    /// with Ok or a typed error, never a panic or a phantom allocation.
    #[test]
    fn frame_bit_flips_never_panic(bit in 0usize..4096, extra in any::<u8>()) {
        for mut bytes in valid_frames() {
            let nbits = bytes.len() * 8;
            bytes[(bit % nbits) / 8] ^= 1 << (bit % 8);
            let second = (bit.wrapping_mul(37) + extra as usize) % nbits;
            bytes[second / 8] ^= 1 << (second % 8);
            let _ = frame::decode(&bytes);
        }
    }
}

/// Deterministic spot-checks that both signature decoders reject the
/// empty buffer and a one-byte buffer with a typed error.
#[test]
fn degenerate_buffers_rejected() {
    let p = params();
    let group = schnorr();
    for buf in [&[][..], &[0u8][..]] {
        assert!(codec::decode_ky_sig(&p, buf).is_err());
        assert!(codec::decode_acjt_sig(&p, buf).is_err());
        assert!(codec::decode_delta(group, buf).is_err());
        assert!(codec::decode_crl_delta(&p, buf).is_err());
    }
}
