//! Correctness of `SHS.Handshake` (Fig. 2, first property): members of the
//! same group always accept; anyone else never does.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind, TracePolicy};

#[test]
fn same_group_handshake_accepts_for_all_sizes() {
    let mut r = rng("hs-correct");
    let (_, members) = group(SchemeKind::Scheme1, 5, &mut r);
    for m in [2usize, 3, 5] {
        let subset: Vec<_> = members[..m].iter().map(shs_core::Actor::Member).collect();
        let result = run_handshake(&subset, &HandshakeOptions::default(), &mut r).unwrap();
        for o in &result.outcomes {
            assert!(o.accepted, "m={m}, slot {}", o.slot);
            assert_eq!(o.same_group_slots.len(), m);
            assert_eq!(o.verified_slots.len(), m);
            assert!(o.duplicate_slots.is_empty());
        }
    }
}

#[test]
fn scheme2_same_group_accepts() {
    let mut r = rng("hs-scheme2");
    let (_, members) = group(SchemeKind::Scheme2SelfDistinct, 3, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert!(result.outcomes.iter().all(|o| o.accepted));
}

#[test]
fn scheme1_classic_same_group_accepts() {
    let mut r = rng("hs-classic");
    let (_, members) = group(SchemeKind::Scheme1Classic, 3, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert!(result.outcomes.iter().all(|o| o.accepted));
}

#[test]
fn mixed_groups_reject_full_handshake() {
    let mut r = rng("hs-mixed");
    let (_, members_a) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, members_b) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&members_a[0]),
        Actor::Member(&members_a[1]),
        Actor::Member(&members_b[0]),
        Actor::Member(&members_b[1]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    for o in &result.outcomes {
        assert!(
            !o.accepted,
            "slot {} must not fully accept in a mixed session",
            o.slot
        );
    }
}

#[test]
fn accepted_parties_share_a_session_key() {
    let mut r = rng("hs-key");
    let (_, members) = group(SchemeKind::Scheme1, 4, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let key0 = result.outcomes[0]
        .session_key
        .clone()
        .expect("accepted => key");
    for o in &result.outcomes[1..] {
        assert_eq!(o.session_key.as_ref(), Some(&key0));
    }
}

#[test]
fn session_keys_differ_across_sessions() {
    let mut r = rng("hs-key-fresh");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let r1 = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let r2 = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert_ne!(r1.outcomes[0].session_key, r2.outcomes[0].session_key);
}

#[test]
fn preliminary_only_policy_accepts_without_transcript() {
    let mut r = rng("hs-prelim");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let opts = HandshakeOptions {
        policy: TracePolicy::PreliminaryOnly,
        ..Default::default()
    };
    let result = run_handshake(&actors(&members), &opts, &mut r).unwrap();
    assert!(result.outcomes.iter().all(|o| o.accepted));
    assert!(
        result.transcript.entries.is_empty(),
        "no (θ, δ) under preliminary-only policy"
    );
}

#[test]
fn single_actor_session_rejected() {
    let mut r = rng("hs-single");
    let (_, members) = group(SchemeKind::Scheme1, 1, &mut r);
    let session = [Actor::Member(&members[0])];
    assert!(run_handshake(&session, &HandshakeOptions::default(), &mut r).is_err());
}

#[test]
fn costs_are_reported_per_slot() {
    let mut r = rng("hs-costs");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    for c in &result.costs {
        assert!(c.modexp > 0, "every slot exponentiates");
        assert_eq!(c.messages_sent, 4, "BD r1 + r2 + MAC + phase3");
        assert!(c.bytes_sent > 0);
    }
}
