//! The full instantiation matrix (§5–§6: GCD is a compiler): every
//! GSIG × CGKD × DGKA combination the factory can construct runs a
//! complete handshake with the same outcome semantics. The newly wired
//! backends — Star CGKD and the Katz–Yung authenticated BD — also get
//! lifecycle and fault coverage of their own.

mod common;

use std::collections::{BTreeMap, BTreeSet};

use common::{actors, rng};
use shs_core::config::{CgkdChoice, DgkaChoice, GroupConfig};
use shs_core::fixtures::group_with_config;
use shs_core::handshake::{run_handshake, run_handshake_with_net};
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::observe::TrafficLog;
use shs_net::sync::BroadcastNet;
use shs_net::DeliveryPolicy;

/// Every cell of the 3×3×3 matrix completes a 3-party handshake with
/// unanimous acceptance and a shared session key. Iterates the `ALL`
/// registries, so a new backend is matrix-tested the moment it lands.
#[test]
fn full_3x3x3_matrix_completes_with_shared_key() {
    for scheme in SchemeKind::ALL {
        for cgkd in CgkdChoice::ALL {
            let mut r = rng(&format!("matrix-{scheme:?}-{cgkd:?}"));
            let config = GroupConfig::test_with_cgkd(scheme, cgkd);
            let (_, members) = group_with_config(config, 3, &mut r).expect("group builds");
            for dgka in DgkaChoice::ALL {
                let opts = HandshakeOptions::with_dgka(dgka);
                let result =
                    run_handshake(&actors(&members), &opts, &mut r).expect("matrix cell runs");
                let cell = format!("{scheme:?}×{cgkd:?}×{dgka:?}");
                for o in &result.outcomes {
                    assert!(o.accepted, "{cell}: slot {} rejected", o.slot);
                }
                let key0 = result.outcomes[0].session_key.clone();
                assert!(key0.is_some(), "{cell}: no session key");
                assert!(
                    result.outcomes.iter().all(|o| o.session_key == key0),
                    "{cell}: slots disagree on the session key"
                );
            }
        }
    }
}

/// Star CGKD runs the full lifecycle: the removed member loses the
/// group key and is excluded from later handshakes, while the remaining
/// members still succeed with each other.
#[test]
fn star_cgkd_lifecycle_excludes_removed_member() {
    let mut r = rng("matrix-star-lifecycle");
    let config = GroupConfig::test_star(SchemeKind::Scheme1);
    let (mut ga, mut members) = group_with_config(config, 3, &mut r).expect("group builds");

    let removed = members.remove(2);
    let update = ga.remove(removed.id(), &mut r).expect("removal succeeds");
    for m in members.iter_mut() {
        m.apply_update(&update).expect("survivor rekeys");
        assert_eq!(m.group_key(), ga.group_key());
    }
    assert_ne!(removed.group_key(), ga.group_key(), "stale key after evict");

    // The removed member joins a session: the survivors only accept
    // each other.
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&removed),
    ];
    let result =
        run_handshake(&session, &HandshakeOptions::default(), &mut r).expect("session runs");
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 1]);
    assert_eq!(result.outcomes[1].same_group_slots, vec![0, 1]);
    assert!(
        !result.outcomes[2].same_group_slots.contains(&0),
        "the removed member must not still see slot 0 as a co-member"
    );
}

/// The authenticated-BD phase I recovers from a bounded drop (the
/// signed frames are retransmitted like any other round).
#[test]
fn authenticated_bd_recovers_from_bounded_drop() {
    let mut r = rng("matrix-ake-drop");
    let (_, members) =
        group_with_config(GroupConfig::test(SchemeKind::Scheme1), 3, &mut r).expect("group");
    let acts = actors(&members);
    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_fault_plan(
        FaultPlan::new(71).with(
            FaultRule::drop()
                .in_round("dgka-ake-nonce")
                .from(1)
                .to(0)
                .at_most(1),
        ),
    );
    let opts = HandshakeOptions::with_dgka(DgkaChoice::AuthenticatedBd);
    let result = run_handshake_with_net(&acts, &opts, &mut net, &mut r).expect("session runs");
    assert!(result.outcomes.iter().all(|o| o.accepted), "drop recovered");
    assert!(result.stats.retries > 0, "recovery was not free");
}

/// Persistent corruption of a signed round-1 frame makes the receiver
/// abort: the Katz–Yung signatures reject the tamper at Phase I (there
/// is nothing a retransmission budget can do against a persistent MITM).
#[test]
fn authenticated_bd_aborts_under_persistent_tamper() {
    let mut r = rng("matrix-ake-tamper");
    let (_, members) =
        group_with_config(GroupConfig::test(SchemeKind::Scheme1), 3, &mut r).expect("group");
    let acts = actors(&members);
    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_fault_plan(
        FaultPlan::new(72).with(FaultRule::corrupt(9).in_round("dgka-ake-r1").from(1).to(0)),
    );
    let opts = HandshakeOptions {
        partial_success: false,
        ..HandshakeOptions::with_dgka(DgkaChoice::AuthenticatedBd)
    };
    let result = run_handshake_with_net(&acts, &opts, &mut net, &mut r).expect("session runs");
    assert!(result.outcomes.iter().any(|o| o.abort.is_some()));
    assert!(result.outcomes.iter().all(|o| !o.accepted));
    assert!(
        result.stats.exchanges <= opts.budget.max_exchanges,
        "abort stays within the exchange budget"
    );
}

/// Per-round wire shape: for each round label, the set of
/// `(slot, payload_len)` pairs seen on the medium (as in tests/faults.rs).
fn per_round_shape(log: &TrafficLog) -> BTreeMap<String, BTreeSet<(usize, usize)>> {
    let mut by_round: BTreeMap<String, BTreeSet<(usize, usize)>> = BTreeMap::new();
    for rec in log.records() {
        by_round
            .entry(rec.round.clone())
            .or_default()
            .insert((rec.from_slot, rec.payload.len()));
    }
    by_round
}

/// Abort indistinguishability holds for the new DGKA too: an
/// authenticated-BD session aborted by persistent tampering emits, per
/// round, exactly the traffic shape of an ordinary failed handshake
/// between members of different groups.
#[test]
fn authenticated_bd_abort_is_shape_identical_to_ordinary_failure() {
    let opts = HandshakeOptions {
        partial_success: false,
        ..HandshakeOptions::with_dgka(DgkaChoice::AuthenticatedBd)
    };

    // Ordinary failure: a mixed session, no faults. Phase I completes
    // (the DGKA is group-independent); Phase II separates the groups.
    let mut r = rng("matrix-ake-shape-ordinary");
    let (_, ours) =
        group_with_config(GroupConfig::test(SchemeKind::Scheme1), 2, &mut r).expect("group");
    let (_, foreign) =
        group_with_config(GroupConfig::test(SchemeKind::Scheme1), 1, &mut r).expect("group");
    let mixed = [
        Actor::Member(&ours[0]),
        Actor::Member(&ours[1]),
        Actor::Member(&foreign[0]),
    ];
    let mut plain_net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    let ordinary =
        run_handshake_with_net(&mixed, &opts, &mut plain_net, &mut r).expect("session runs");
    assert!(ordinary.outcomes.iter().all(|o| !o.accepted));

    // Aborted session: co-members, but slot 0 can never verify slot 1's
    // signed round-1 frame.
    let mut r = rng("matrix-ake-shape-aborted");
    let (_, members) =
        group_with_config(GroupConfig::test(SchemeKind::Scheme1), 3, &mut r).expect("group");
    let acts = actors(&members);
    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_fault_plan(
        FaultPlan::new(73).with(FaultRule::corrupt(9).in_round("dgka-ake-r1").from(1).to(0)),
    );
    let aborted = run_handshake_with_net(&acts, &opts, &mut net, &mut r).expect("session runs");
    assert!(aborted.outcomes.iter().any(|o| o.abort.is_some()));
    assert!(aborted.outcomes.iter().all(|o| !o.accepted));

    // Same rounds, same per-round per-slot message sizes.
    assert_eq!(
        per_round_shape(&ordinary.traffic),
        per_round_shape(&aborted.traffic),
        "aborted AKE session is distinguishable on the wire"
    );
}
