//! Group lifecycle: `AdmitMember` / `RemoveUser` / `Update` interplay with
//! handshakes — backward/forward secrecy of the CGKD layer, CRL
//! propagation, stale members.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, CoreError, HandshakeOptions, SchemeKind};

#[test]
fn churn_then_handshake() {
    let mut r = rng("lc-churn");
    let (mut ga, mut members) = group(SchemeKind::Scheme1, 5, &mut r);
    // Remove two members, everyone else updates.
    for _ in 0..2 {
        let victim = members.pop().unwrap();
        let update = ga.remove(victim.id(), &mut r).unwrap();
        for m in members.iter_mut() {
            m.apply_update(&update).unwrap();
        }
    }
    // Admit one more.
    let (newbie, update) = ga.admit(&mut r).unwrap();
    for m in members.iter_mut() {
        m.apply_update(&update).unwrap();
    }
    members.push(newbie);
    assert_eq!(ga.member_count(), 4);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert!(result.outcomes.iter().all(|o| o.accepted));
}

#[test]
fn revoked_member_cannot_handshake() {
    let mut r = rng("lc-revoked");
    let (mut ga, mut members) = group(SchemeKind::Scheme1, 3, &mut r);
    let victim = members.pop().unwrap();
    let update = ga.remove(victim.id(), &mut r).unwrap();
    for m in members.iter_mut() {
        m.apply_update(&update).unwrap();
    }
    // The revoked member (with its stale key) fails the MAC phase.
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&victim),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 1]);
    assert!(!result.outcomes[0].accepted);
    assert_eq!(result.outcomes[2].same_group_slots, vec![2]);
}

#[test]
fn revoked_member_cannot_read_updates() {
    let mut r = rng("lc-blind");
    let (mut ga, mut members) = group(SchemeKind::Scheme1, 3, &mut r);
    let mut victim = members.pop().unwrap();
    let update = ga.remove(victim.id(), &mut r).unwrap();
    assert!(matches!(
        victim.apply_update(&update),
        Err(CoreError::Cgkd(shs_cgkd::CgkdError::CannotDecrypt))
    ));
    // And the victim also cannot read any LATER update (forward secrecy).
    let (newbie, update2) = ga.admit(&mut r).unwrap();
    assert!(victim.apply_update(&update2).is_err());
    let _ = newbie;
}

#[test]
fn stale_member_fails_until_updated() {
    let mut r = rng("lc-stale");
    let (mut ga, mut members) = group(SchemeKind::Scheme1, 2, &mut r);
    // Admit a third member; member 1 misses the update.
    let (carol, update) = ga.admit(&mut r).unwrap();
    members[0].apply_update(&update).unwrap();
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]), // stale
        Actor::Member(&carol),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    assert!(!result.outcomes[0].accepted, "stale member has the old key");
    assert_eq!(result.outcomes[0].same_group_slots, vec![0, 2]);
    // After catching up, everything works.
    members[1].apply_update(&update).unwrap();
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&carol),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    assert!(result.outcomes.iter().all(|o| o.accepted));
}

#[test]
fn crl_version_propagates_through_updates() {
    let mut r = rng("lc-crl");
    let (mut ga, mut members) = group(SchemeKind::Scheme1, 4, &mut r);
    assert_eq!(members[0].crl_version(), 0);
    let victim = members.pop().unwrap();
    let update = ga.remove(victim.id(), &mut r).unwrap();
    for m in members.iter_mut() {
        m.apply_update(&update).unwrap();
        assert_eq!(m.crl_version(), 1);
    }
    let victim2 = members.pop().unwrap();
    let update2 = ga.remove(victim2.id(), &mut r).unwrap();
    for m in members.iter_mut() {
        m.apply_update(&update2).unwrap();
        assert_eq!(m.crl_version(), 2);
    }
}

#[test]
fn updates_cannot_be_replayed_or_skipped() {
    let mut r = rng("lc-order");
    let (mut ga, mut members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_m3, u1) = ga.admit(&mut r).unwrap();
    let (_m4, u2) = ga.admit(&mut r).unwrap();
    // Skipping u1 fails.
    assert!(members[0].apply_update(&u2).is_err());
    members[0].apply_update(&u1).unwrap();
    members[0].apply_update(&u2).unwrap();
    // Replaying fails.
    assert!(members[0].apply_update(&u2).is_err());
    let _ = &mut members[1];
}

#[test]
fn capacity_exhaustion_is_an_error() {
    let mut r = rng("lc-capacity");
    let mut ga = shs_core::fixtures::test_authority(SchemeKind::Scheme1, &mut r);
    // Config capacity is 64; fill it.
    for _ in 0..64 {
        ga.admit(&mut r).unwrap();
    }
    assert!(matches!(
        ga.admit(&mut r),
        Err(CoreError::Cgkd(shs_cgkd::CgkdError::Full))
    ));
}

#[test]
fn removing_unknown_member_is_an_error() {
    let mut r = rng("lc-unknown");
    let (mut ga, _members) = group(SchemeKind::Scheme1, 1, &mut r);
    assert!(matches!(
        ga.remove(shs_gsig::ky::MemberId(999), &mut r),
        Err(CoreError::UnknownMember)
    ));
}
