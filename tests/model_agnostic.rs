//! Model-agnosticism (§1.1 flexibility, experiment E10): the framework
//! inherits the communication model of its building blocks — under the
//! asynchronous guaranteed-delivery model with adversarial reordering,
//! every outcome is identical to the synchronous run.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_net::DeliveryPolicy;

#[test]
fn reordered_delivery_preserves_success() {
    for seed in [1u64, 7, 42] {
        let mut r = rng("ma-success");
        let (_, members) = group(SchemeKind::Scheme1, 4, &mut r);
        let opts = HandshakeOptions {
            delivery: DeliveryPolicy::AdversarialReorder { seed },
            ..Default::default()
        };
        let result = run_handshake(&actors(&members), &opts, &mut r).unwrap();
        assert!(result.outcomes.iter().all(|o| o.accepted), "seed {seed}");
        let key0 = result.outcomes[0].session_key.clone().unwrap();
        assert!(result
            .outcomes
            .iter()
            .all(|o| o.session_key.as_ref() == Some(&key0)));
    }
}

#[test]
fn reordered_delivery_preserves_partial_success_structure() {
    let mut r = rng("ma-partial");
    let (_, a_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, b_members) = group(SchemeKind::Scheme1, 3, &mut r);
    let session = [
        Actor::Member(&a_members[0]),
        Actor::Member(&b_members[0]),
        Actor::Member(&a_members[1]),
        Actor::Member(&b_members[1]),
        Actor::Member(&b_members[2]),
    ];
    // Run synchronously and asynchronously; ∆ sets must agree.
    let sync = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let opts = HandshakeOptions {
        delivery: DeliveryPolicy::AdversarialReorder { seed: 99 },
        ..Default::default()
    };
    let async_run = run_handshake(&session, &opts, &mut r).unwrap();
    for (s, a) in sync.outcomes.iter().zip(&async_run.outcomes) {
        assert_eq!(s.same_group_slots, a.same_group_slots);
        assert_eq!(s.accepted, a.accepted);
        assert_eq!(s.partial_accepted(), a.partial_accepted());
    }
}

#[test]
fn reordered_delivery_preserves_self_distinction() {
    let mut r = rng("ma-sd");
    let (_, members) = group(SchemeKind::Scheme2SelfDistinct, 2, &mut r);
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&members[0]),
    ];
    let opts = HandshakeOptions {
        delivery: DeliveryPolicy::AdversarialReorder { seed: 5 },
        ..Default::default()
    };
    let result = run_handshake(&session, &opts, &mut r).unwrap();
    assert_eq!(result.outcomes[1].duplicate_slots, vec![0, 2]);
    assert!(!result.outcomes[1].accepted);
}

#[test]
fn threaded_async_hub_reaches_agreement() {
    // The fully asynchronous threaded hub (each party on its own OS
    // thread, hub delivering in adversarial order) still completes a
    // Burmester–Desmedt agreement — the DGKA building block really is
    // model-agnostic, not just round-shuffled.
    use shs_dgka::bd;
    use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};
    use shs_net::hub::{run_session, PartyHandle};

    let m = 4usize;
    let bodies: Vec<_> = (0..m)
        .map(|i| {
            move |h: PartyHandle| {
                let group = SchnorrGroup::system_wide(SchnorrPreset::Test);
                let mut rng = shs_crypto::drbg::HmacDrbg::from_seed(format!("hub-{i}").as_bytes());
                let (mut party, r1) = bd::Party::start(group, m, i, &mut rng).unwrap();
                h.broadcast("bd-r1", encode(&r1.sender, &r1.z));
                let round1: Vec<bd::Round1> = h
                    .collect_round("bd-r1")
                    .expect("guaranteed delivery")
                    .into_iter()
                    .map(|(_, p)| decode_r1(&p))
                    .collect();
                let r2 = party.round2(&round1).unwrap();
                h.broadcast("bd-r2", encode(&r2.sender, &r2.x));
                let round2: Vec<bd::Round2> = h
                    .collect_round("bd-r2")
                    .expect("guaranteed delivery")
                    .into_iter()
                    .map(|(_, p)| decode_r2(&p))
                    .collect();
                party.finish(&round2).unwrap().key
            }
        })
        .collect();
    let (keys, log) = run_session(m, 1234, bodies);
    for k in &keys[1..] {
        assert_eq!(k, &keys[0], "all parties agree over the async hub");
    }
    assert_eq!(log.len(), 2 * m);

    fn encode(sender: &usize, v: &shs_bigint::Ubig) -> Vec<u8> {
        let mut out = (*sender as u32).to_be_bytes().to_vec();
        out.extend_from_slice(&v.to_bytes_be());
        out
    }
    fn decode_r1(p: &[u8]) -> bd::Round1 {
        bd::Round1 {
            sender: u32::from_be_bytes(p[..4].try_into().unwrap()) as usize,
            z: shs_bigint::Ubig::from_bytes_be(&p[4..]),
        }
    }
    fn decode_r2(p: &[u8]) -> bd::Round2 {
        bd::Round2 {
            sender: u32::from_be_bytes(p[..4].try_into().unwrap()) as usize,
            x: shs_bigint::Ubig::from_bytes_be(&p[4..]),
        }
    }
}
