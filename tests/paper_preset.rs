//! Full-strength parameter smoke test: the `Paper` preset (2048-bit RSA
//! modulus, 2048-bit Schnorr prime, 160-bit challenges, strict ACJT
//! interval constraints).
//!
//! Ignored by default because safe-prime generation at this size takes
//! minutes; run with
//!
//! ```sh
//! cargo test --release --test paper_preset -- --ignored
//! ```

use shs_core::handshake::run_handshake;
use shs_core::{Actor, GroupAuthority, GroupConfig, HandshakeOptions, SchemeKind};
use shs_crypto::drbg::HmacDrbg;
use shs_groups::schnorr::SchnorrPreset;
use shs_gsig::params::GsigPreset;

#[test]
#[ignore = "generates 2048-bit safe primes; run explicitly with --ignored --release"]
fn full_size_parameters_end_to_end() {
    let mut rng = HmacDrbg::from_seed(b"paper-preset-smoke");
    let config = GroupConfig {
        gsig_preset: GsigPreset::Paper,
        schnorr_preset: SchnorrPreset::Paper,
        ..GroupConfig::test(SchemeKind::Scheme2SelfDistinct)
    };
    let mut ga = GroupAuthority::create(config, &mut rng);
    let (mut alice, _) = ga.admit(&mut rng).unwrap();
    let (bob, update) = ga.admit(&mut rng).unwrap();
    alice.apply_update(&update).unwrap();

    let result = run_handshake(
        &[Actor::Member(&alice), Actor::Member(&bob)],
        &HandshakeOptions::default(),
        &mut rng,
    )
    .unwrap();
    assert!(result.outcomes.iter().all(|o| o.accepted));
    let traced = ga.trace(&result.transcript);
    assert!(traced.iter().all(|t| t.result.is_ok()));
}
