//! Parallel Phase-III verification must be a pure wall-clock
//! optimisation: with `parallel_verify` on, every observable output of a
//! session — transcript bytes, per-slot outcomes, per-slot operation
//! counts — must be byte-identical to the sequential engine, on clean
//! *and* faulty media.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::run_handshake_with_net;
use shs_core::{HandshakeOptions, SchemeKind, SessionResult};
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::sync::BroadcastNet;
use shs_net::DeliveryPolicy;

/// Runs one session from scratch (fresh deterministic rng, fresh group,
/// fresh medium) so the only varying input is the `parallel_verify` flag.
fn run_once(
    label: &str,
    scheme: SchemeKind,
    m: usize,
    plan: Option<FaultPlan>,
    parallel: bool,
) -> SessionResult {
    let mut r = rng(label);
    let (_, members) = group(scheme, m, &mut r);
    let acts = actors(&members);
    let mut net = BroadcastNet::new(m, DeliveryPolicy::Synchronous);
    if let Some(plan) = plan {
        net.set_fault_plan(plan);
    }
    let opts = HandshakeOptions {
        parallel_verify: parallel,
        ..Default::default()
    };
    run_handshake_with_net(&acts, &opts, &mut net, &mut r).expect("session terminates")
}

/// Asserts the two engines produced identical observables.
fn assert_identical(name: &str, seq: &SessionResult, par: &SessionResult) {
    assert_eq!(
        seq.transcript, par.transcript,
        "{name}: transcripts must be byte-identical"
    );
    assert_eq!(seq.outcomes, par.outcomes, "{name}: outcomes must match");
    assert_eq!(
        seq.costs, par.costs,
        "{name}: per-slot op counts must match (worker-thread counters merged)"
    );
    assert_eq!(
        seq.stats.exchanges, par.stats.exchanges,
        "{name}: exchange accounting must match"
    );
}

/// Clean media, every scheme (including self-distinction, whose common-T7
/// derivation also runs on the workers).
#[test]
fn parallel_verification_is_deterministic_on_clean_media() {
    for scheme in SchemeKind::ALL {
        let name = format!("par-clean-{scheme:?}");
        let seq = run_once(&name, scheme, 4, None, false);
        let par = run_once(&name, scheme, 4, None, true);
        assert!(
            seq.outcomes.iter().all(|o| o.accepted),
            "{name}: clean co-member session succeeds"
        );
        assert_identical(&name, &seq, &par);
    }
}

/// A named, repeatable fault schedule.
type PlanMaker = fn() -> FaultPlan;

/// The existing fault matrix: parallel verification must not change any
/// structured outcome produced under lossy or malicious delivery.
#[test]
fn parallel_verification_is_deterministic_under_faults() {
    let matrix: Vec<(&str, PlanMaker)> = vec![
        ("drop", || {
            FaultPlan::new(71).with(FaultRule::drop().from(1).to(0))
        }),
        ("corrupt", || {
            FaultPlan::new(72).with(FaultRule::corrupt(3).in_round("dgka-r1").from(1).to(0))
        }),
        ("duplicate", || {
            FaultPlan::new(73).with(FaultRule::duplicate().from(2))
        }),
        ("crash-stop", || {
            FaultPlan::new(74).with(FaultRule::crash_stop(2, 1))
        }),
        ("chaos", || {
            FaultPlan::new(75)
                .with(FaultRule::drop().with_probability(0.3))
                .with(FaultRule::corrupt(1).with_probability(0.2))
                .with(FaultRule::duplicate().with_probability(0.2))
        }),
    ];
    for (fault, plan) in matrix {
        let name = format!("par-fault-{fault}");
        let seq = run_once(
            &name,
            SchemeKind::Scheme2SelfDistinct,
            3,
            Some(plan()),
            false,
        );
        let par = run_once(
            &name,
            SchemeKind::Scheme2SelfDistinct,
            3,
            Some(plan()),
            true,
        );
        assert_identical(&name, &seq, &par);
    }
}
