//! Partially-successful handshakes (§7 extension, experiment E6): in a
//! mixed session, every sub-group of co-members completes its own
//! handshake and learns its own size — the paper's worked example is
//! 5 parties, 2 from group A and 3 from group B.

mod common;

use common::{group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

#[test]
fn papers_five_party_example() {
    let mut r = rng("ps-5");
    let (_, a_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, b_members) = group(SchemeKind::Scheme1, 3, &mut r);
    // Interleave: A0 B0 A1 B1 B2.
    let session = [
        Actor::Member(&a_members[0]),
        Actor::Member(&b_members[0]),
        Actor::Member(&a_members[1]),
        Actor::Member(&b_members[1]),
        Actor::Member(&b_members[2]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();

    // Nobody fully accepts...
    assert!(result.outcomes.iter().all(|o| !o.accepted));
    // ...but each member determines exactly its own sub-group:
    assert_eq!(
        result.outcomes[0].same_group_slots,
        vec![0, 2],
        "A member sees 2 A-parties"
    );
    assert_eq!(result.outcomes[2].same_group_slots, vec![0, 2]);
    assert_eq!(
        result.outcomes[1].same_group_slots,
        vec![1, 3, 4],
        "B member sees 3 B-parties"
    );
    assert_eq!(result.outcomes[3].same_group_slots, vec![1, 3, 4]);
    assert_eq!(result.outcomes[4].same_group_slots, vec![1, 3, 4]);

    // Both sub-handshakes complete: signatures verified, keys derived.
    for o in &result.outcomes {
        assert!(o.partial_accepted(), "slot {}", o.slot);
    }
    // Keys agree within a sub-group and differ across sub-groups.
    let key_a = result.outcomes[0].session_key.clone().unwrap();
    assert_eq!(result.outcomes[2].session_key.as_ref(), Some(&key_a));
    let key_b = result.outcomes[1].session_key.clone().unwrap();
    assert_eq!(result.outcomes[3].session_key.as_ref(), Some(&key_b));
    assert_eq!(result.outcomes[4].session_key.as_ref(), Some(&key_b));
    assert_ne!(key_a, key_b);
}

#[test]
fn singletons_learn_nothing() {
    let mut r = rng("ps-singleton");
    let (_, a_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, b_members) = group(SchemeKind::Scheme1, 1, &mut r);
    let session = [
        Actor::Member(&a_members[0]),
        Actor::Member(&a_members[1]),
        Actor::Member(&b_members[0]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    // The lone B member completes nothing.
    let lone = &result.outcomes[2];
    assert_eq!(lone.same_group_slots, vec![2]);
    assert!(!lone.partial_accepted());
    assert!(lone.session_key.is_none());
    // The A pair completes a partial handshake.
    assert!(result.outcomes[0].partial_accepted());
    assert!(result.outcomes[1].partial_accepted());
}

#[test]
fn strict_mode_disables_partial_success() {
    let mut r = rng("ps-strict");
    let (_, a_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, b_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&a_members[0]),
        Actor::Member(&a_members[1]),
        Actor::Member(&b_members[0]),
        Actor::Member(&b_members[1]),
    ];
    let opts = HandshakeOptions {
        partial_success: false,
        ..Default::default()
    };
    let result = run_handshake(&session, &opts, &mut r).unwrap();
    for o in &result.outcomes {
        assert!(!o.accepted);
        assert!(
            o.session_key.is_none(),
            "strict CASE 2: everyone publishes decoys"
        );
    }
}

#[test]
fn partial_subgroups_with_scheme2_self_distinction() {
    // Self-distinction also applies within sub-groups: a B-member playing
    // two B-slots is caught by the other B-member even in a mixed session.
    let mut r = rng("ps-sd");
    let (_, a_members) = group(SchemeKind::Scheme2SelfDistinct, 1, &mut r);
    let (_, b_members) = group(SchemeKind::Scheme2SelfDistinct, 2, &mut r);
    let session = [
        Actor::Member(&a_members[0]),
        Actor::Member(&b_members[0]),
        Actor::Member(&b_members[1]),
        Actor::Member(&b_members[0]), // duplicate!
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let honest_b = &result.outcomes[2];
    assert_eq!(honest_b.same_group_slots, vec![1, 2, 3]);
    assert_eq!(honest_b.duplicate_slots, vec![1, 3]);
    assert!(
        !honest_b.partial_accepted(),
        "duplicates void the partial handshake"
    );
}
