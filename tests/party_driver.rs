//! The per-party driver seam: `run_party` over in-process links and
//! over real TCP must agree with the lockstep driver's acceptance
//! logic (they share the phase code, so disagreement would mean the
//! exchange loops diverged).

mod common;

use std::time::Duration;

use common::{group, rng};
use shs_core::handshake::party::run_party;
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_net::hub::run_session;
use shs_net::tcp::{RelayConfig, RelayHandle, SupervisorConfig, TcpParty};

const COLLECT: Duration = Duration::from_secs(5);

/// Three co-members, each on its own thread behind a hub link: everyone
/// accepts and derives the same session key — exactly what the lockstep
/// driver concludes for the same configuration.
#[test]
fn hub_parties_agree_with_lockstep_acceptance() {
    let mut r = rng("party-hub-accept");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let opts = HandshakeOptions::default();
    let bodies: Vec<_> = members
        .into_iter()
        .enumerate()
        .map(|(i, member)| {
            move |mut link: shs_net::hub::PartyHandle| {
                let mut r = rng(&format!("party-hub-accept-{i}"));
                run_party(&Actor::Member(&member), &opts, &mut link, COLLECT, &mut r)
                    .expect("party completes")
            }
        })
        .collect();
    let (results, traffic) = run_session(3, 7, bodies);
    let keys: Vec<_> = results
        .iter()
        .map(|p| p.outcome.session_key.clone().expect("keyed"))
        .collect();
    for (i, p) in results.iter().enumerate() {
        assert!(p.outcome.accepted, "slot {i} accepts");
        assert_eq!(p.outcome.slot, i);
        assert_eq!(p.outcome.same_group_slots, vec![0, 1, 2]);
        assert_eq!(p.outcome.verified_slots, vec![0, 1, 2]);
        assert!(p.outcome.abort.is_none());
        assert_eq!(keys[i], keys[0], "slot {i} derived the group key");
        assert!(p.stats.exchanges > 0);
    }
    assert!(!traffic.is_empty(), "the eavesdropper saw the session");
}

/// Mixed groups over party links: an ordinary failure — completions
/// without keys, not aborts — matching the lockstep semantics.
#[test]
fn hub_parties_fail_ordinarily_across_groups() {
    let mut r = rng("party-hub-mixed");
    let (_, mut ours) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, mut foreign) = group(SchemeKind::Scheme1, 1, &mut r);
    let mut members = Vec::new();
    members.append(&mut ours);
    members.append(&mut foreign);
    let opts = HandshakeOptions {
        partial_success: false,
        ..Default::default()
    };
    let bodies: Vec<_> = members
        .into_iter()
        .enumerate()
        .map(|(i, member)| {
            move |mut link: shs_net::hub::PartyHandle| {
                let mut r = rng(&format!("party-hub-mixed-{i}"));
                run_party(&Actor::Member(&member), &opts, &mut link, COLLECT, &mut r)
                    .expect("party completes")
            }
        })
        .collect();
    let (results, _) = run_session(3, 8, bodies);
    for (i, p) in results.iter().enumerate() {
        assert!(!p.outcome.accepted, "slot {i} rejects");
        assert!(p.outcome.session_key.is_none());
        assert!(
            p.outcome.abort.is_none(),
            "an ordinary failure is a completion, not an abort"
        );
    }
    // The co-members still found each other in Phase II.
    assert_eq!(results[0].outcome.same_group_slots, vec![0, 1]);
    assert_eq!(results[1].outcome.same_group_slots, vec![0, 1]);
    assert_eq!(results[2].outcome.same_group_slots, vec![2]);
}

/// Two co-members, two real TCP connections through a relay: the full
/// handshake completes across the wire with a shared key.
#[test]
fn tcp_parties_complete_a_real_network_handshake() {
    let mut r = rng("party-tcp-accept");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let opts = HandshakeOptions::default();
    let relay = RelayHandle::bind(
        "127.0.0.1:0",
        RelayConfig {
            gather_deadline: Duration::from_secs(10),
            ..RelayConfig::new(2)
        },
        None,
    )
    .expect("bind relay");
    let addr = relay.addr();
    let workers: Vec<_> = members
        .into_iter()
        .enumerate()
        .map(|(i, member)| {
            std::thread::spawn(move || {
                let sup = SupervisorConfig {
                    seed: i as u64,
                    ..SupervisorConfig::default()
                };
                let mut link = TcpParty::attach(addr, sup, Some(i)).expect("attach");
                let mut r = rng(&format!("party-tcp-accept-{i}"));
                let out = run_party(&Actor::Member(&member), &opts, &mut link, COLLECT, &mut r)
                    .expect("party completes");
                link.finish();
                out
            })
        })
        .collect();
    let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let keys: Vec<_> = results
        .iter()
        .map(|p| p.outcome.session_key.clone().expect("keyed"))
        .collect();
    for (i, p) in results.iter().enumerate() {
        assert!(p.outcome.accepted, "slot {i} accepts over TCP");
        assert_eq!(p.outcome.same_group_slots, vec![0, 1]);
        assert!(p.outcome.abort.is_none());
        assert_eq!(keys[i], keys[0]);
    }
    assert!(relay.wait_done(Duration::from_secs(5)), "relay drained");
    let log = relay.traffic();
    assert!(!log.is_empty(), "relay-side eavesdropper saw the session");
    relay.shutdown();
}
