//! Property-based handshake tests: for *any* assignment of session slots
//! to groups, every party's discovered `Δ` is exactly the ground-truth
//! co-member set, full acceptance happens iff all slots share a group,
//! and sub-group session keys agree within and differ across sub-groups.

mod common;

use proptest::prelude::*;
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

proptest! {
    // Handshakes are not cheap; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delta_matches_ground_truth(
        assignment in prop::collection::vec(0usize..3, 2..6),
        seed in any::<u64>(),
    ) {
        let mut r = shs_crypto::drbg::HmacDrbg::from_seed(&seed.to_be_bytes());
        // Pools: up to 5 members in each of 3 groups.
        let pools: Vec<Vec<shs_core::Member>> = (0..3)
            .map(|_| common::group(SchemeKind::Scheme1, 5, &mut r).1)
            .collect();
        let mut used = [0usize; 3];
        let actors: Vec<Actor<'_>> = assignment
            .iter()
            .map(|&g| {
                let m = &pools[g][used[g]];
                used[g] += 1;
                Actor::Member(m)
            })
            .collect();
        let result = run_handshake(&actors, &HandshakeOptions::default(), &mut r).unwrap();

        let m = assignment.len();
        for (i, o) in result.outcomes.iter().enumerate() {
            // Ground truth Δ for slot i.
            let expected: Vec<usize> = (0..m).filter(|&j| assignment[j] == assignment[i]).collect();
            prop_assert_eq!(&o.same_group_slots, &expected, "slot {}", i);
            let all_same = expected.len() == m;
            prop_assert_eq!(o.accepted, all_same, "slot {}", i);
            prop_assert_eq!(o.partial_accepted(), expected.len() >= 2, "slot {}", i);
        }
        // Session keys agree within sub-groups, differ across.
        for i in 0..m {
            for j in i + 1..m {
                let ki = &result.outcomes[i].session_key;
                let kj = &result.outcomes[j].session_key;
                if assignment[i] == assignment[j] {
                    prop_assert_eq!(ki, kj);
                } else if ki.is_some() && kj.is_some() {
                    prop_assert_ne!(ki, kj);
                }
            }
        }
    }
}
