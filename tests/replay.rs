//! Replay resistance: material captured from one handshake session is
//! useless in any other — the session-specific `k* ` (and hence
//! `k' = k* ⊕ k`) keys every MAC, every `θ`, and the signed message binds
//! the session id.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::{run_handshake, run_handshake_with_net};
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_net::sync::BroadcastNet;
use shs_net::DeliveryPolicy;

/// An adversary records session A and replays a member's Phase-II MAC
/// into session B. The tag is keyed by session A's `k'`, so it never
/// verifies in B: the victim slot is simply treated as a non-member.
#[test]
fn phase2_tag_replay_across_sessions_fails() {
    let mut r = rng("rp-tag");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let acts = actors(&members);

    // Session A: record slot 2's Phase-II tag.
    let session_a = run_handshake(&acts, &HandshakeOptions::default(), &mut r).unwrap();
    assert!(session_a.outcomes.iter().all(|o| o.accepted));
    let recorded_tag = session_a
        .traffic
        .records()
        .iter()
        .find(|rec| rec.round == "phase2-mac" && rec.from_slot == 2)
        .unwrap()
        .payload
        .clone();

    // Session B: a MITM overwrites slot 2's genuine tag with the recording.
    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_interceptor(Box::new(move |ctx, payload| {
        if ctx.round == "phase2-mac" && ctx.from_slot == 2 {
            payload.clear();
            payload.extend_from_slice(&recorded_tag);
        }
    }));
    let session_b =
        run_handshake_with_net(&acts, &HandshakeOptions::default(), &mut net, &mut r).unwrap();
    // Slots 0 and 1 no longer see slot 2 as a co-member.
    assert_eq!(session_b.outcomes[0].same_group_slots, vec![0, 1]);
    assert_eq!(session_b.outcomes[1].same_group_slots, vec![0, 1]);
    assert!(!session_b.outcomes[0].accepted);
}

/// Replaying a recorded Phase-III `(θ, δ)` into a new session fails: `θ`
/// was sealed under session A's `k'` with session A's `sid` as AAD.
#[test]
fn phase3_payload_replay_across_sessions_fails() {
    let mut r = rng("rp-p3");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let acts = actors(&members);

    let session_a = run_handshake(&acts, &HandshakeOptions::default(), &mut r).unwrap();
    let recorded_p3 = session_a
        .traffic
        .records()
        .iter()
        .find(|rec| rec.round == "phase3-full" && rec.from_slot == 2)
        .unwrap()
        .payload
        .clone();

    let mut net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    net.set_interceptor(Box::new(move |ctx, payload| {
        if ctx.round == "phase3-full" && ctx.from_slot == 2 {
            payload.clear();
            payload.extend_from_slice(&recorded_p3);
        }
    }));
    let session_b =
        run_handshake_with_net(&acts, &HandshakeOptions::default(), &mut net, &mut r).unwrap();
    // The MAC phase passed (nothing was tampered there), but slot 2's
    // replayed signature payload does not decrypt/verify for anyone.
    assert_eq!(session_b.outcomes[0].same_group_slots, vec![0, 1, 2]);
    assert!(!session_b.outcomes[0].verified_slots.contains(&2));
    assert!(!session_b.outcomes[0].accepted);
}

/// A whole-transcript replay to the authority is detectable only as the
/// SAME session (same sid) — transcripts are bound to their session id, so
/// a transcript cannot be passed off as evidence of a different meeting.
#[test]
fn transcript_is_bound_to_its_session() {
    let mut r = rng("rp-transcript");
    let (ga, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let acts = actors(&members);
    let a = run_handshake(&acts, &HandshakeOptions::default(), &mut r).unwrap();
    let b = run_handshake(&acts, &HandshakeOptions::default(), &mut r).unwrap();
    assert_ne!(a.transcript.sid, b.transcript.sid);
    // Grafting session A's entries onto session B's sid breaks tracing:
    // the AEAD AAD (sid) no longer matches.
    let mut franken = a.transcript.clone();
    franken.sid = b.transcript.sid.clone();
    let traced = ga.trace(&franken);
    assert!(traced.iter().all(|t| t.result.is_err()));
    // The genuine transcripts trace fine.
    assert!(ga.trace(&a.transcript).iter().all(|t| t.result.is_ok()));
    assert!(ga.trace(&b.transcript).iter().all(|t| t.result.is_ok()));
}

/// Cross-group replay: a valid Phase-III payload from group A's session
/// is injected into a same-shaped session of group B. Nothing verifies.
#[test]
fn cross_group_replay_fails() {
    let mut r = rng("rp-crossgroup");
    let (_, a_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, b_members) = group(SchemeKind::Scheme1, 2, &mut r);

    let a_session = run_handshake(
        &[Actor::Member(&a_members[0]), Actor::Member(&a_members[1])],
        &HandshakeOptions::default(),
        &mut r,
    )
    .unwrap();
    let recorded = a_session
        .traffic
        .records()
        .iter()
        .find(|rec| rec.round == "phase3-full" && rec.from_slot == 1)
        .unwrap()
        .payload
        .clone();

    let mut net = BroadcastNet::new(2, DeliveryPolicy::Synchronous);
    net.set_interceptor(Box::new(move |ctx, payload| {
        if ctx.round == "phase3-full" && ctx.from_slot == 1 {
            payload.clear();
            payload.extend_from_slice(&recorded);
        }
    }));
    let b_session = run_handshake_with_net(
        &[Actor::Member(&b_members[0]), Actor::Member(&b_members[1])],
        &HandshakeOptions::default(),
        &mut net,
        &mut r,
    )
    .unwrap();
    assert!(!b_session.outcomes[0].verified_slots.contains(&1));
    assert!(!b_session.outcomes[0].accepted);
}
