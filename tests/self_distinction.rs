//! Self-distinction (§8.2, Theorem 3, experiment E7c): a malicious insider
//! playing several roles in one handshake is detected by scheme 2 — and,
//! demonstrating the motivation, is *not* detected by scheme 1.

mod common;

use common::{group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

#[test]
fn scheme2_detects_insider_playing_two_roles() {
    let mut r = rng("sd-detect");
    let (_, members) = group(SchemeKind::Scheme2SelfDistinct, 2, &mut r);
    // Member 0 occupies two slots of a "three-party" handshake.
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&members[0]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    // The honest member sees valid MACs and valid signatures from all
    // three slots, but the duplicate T6 exposes slots 0 and 2 as one
    // member.
    let honest = &result.outcomes[1];
    assert_eq!(honest.same_group_slots, vec![0, 1, 2]);
    assert_eq!(honest.duplicate_slots, vec![0, 2]);
    assert!(!honest.accepted, "self-distinction must veto the handshake");
    assert!(honest.session_key.is_none());
}

#[test]
fn scheme1_misses_the_same_attack() {
    let mut r = rng("sd-miss");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
        Actor::Member(&members[0]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let honest = &result.outcomes[1];
    // Scheme 1's randomized T6/T7 makes the two roles unlinkable even to
    // co-participants: the honest member is fooled into a 3-party accept.
    assert!(honest.duplicate_slots.is_empty());
    assert!(
        honest.accepted,
        "without self-distinction the honest member wrongly counts three distinct peers"
    );
}

#[test]
fn scheme2_three_distinct_members_accept() {
    // No false positives: distinct members have distinct x', hence
    // distinct T6 under the common T7.
    let mut r = rng("sd-clean");
    let (_, members) = group(SchemeKind::Scheme2SelfDistinct, 3, &mut r);
    let session: Vec<_> = members.iter().map(Actor::Member).collect();
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    for o in &result.outcomes {
        assert!(o.duplicate_slots.is_empty(), "slot {}", o.slot);
        assert!(o.accepted);
    }
}

#[test]
fn scheme2_detects_triple_role() {
    let mut r = rng("sd-triple");
    let (_, members) = group(SchemeKind::Scheme2SelfDistinct, 2, &mut r);
    let session = [
        Actor::Member(&members[0]),
        Actor::Member(&members[0]),
        Actor::Member(&members[0]),
        Actor::Member(&members[1]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let honest = &result.outcomes[3];
    assert_eq!(honest.duplicate_slots, vec![0, 1, 2]);
    assert!(!honest.accepted);
}

#[test]
fn self_distinction_does_not_link_across_sessions() {
    // Unlinkability is preserved: the SAME pair of members handshaking
    // twice produces entirely different Phase-III payloads (T7 differs per
    // session, so T6 differs too).
    let mut r = rng("sd-unlink");
    let (_, members) = group(SchemeKind::Scheme2SelfDistinct, 2, &mut r);
    let session: Vec<_> = members.iter().map(Actor::Member).collect();
    let r1 = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let r2 = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    assert!(r1.outcomes.iter().all(|o| o.accepted));
    assert!(r2.outcomes.iter().all(|o| o.accepted));
    for (e1, e2) in r1.transcript.entries.iter().zip(&r2.transcript.entries) {
        assert_ne!(e1.theta, e2.theta);
        assert_ne!(e1.delta, e2.delta);
    }
}
