//! Chaos soak for the multi-session handshake service: dozens of
//! concurrent sessions pushed through the full PR-1 fault matrix.
//!
//! The availability contract under test (DESIGN.md §12):
//!
//! * **no deadlock** — the service goes idle within the soak timeout;
//! * **no registry leak** — every admitted session reaches a terminal
//!   state, and the drain report confirms it;
//! * **no illegal lifecycle shortcut** — the registry counted zero
//!   refused transitions;
//! * **re-formation works** — whenever a fault leaves ≥ 2 live
//!   co-members, the session is re-formed among the survivors and
//!   succeeds; when fewer survive, it aborts cleanly after exactly one
//!   attempt (no retry storm).

mod common;

use common::rng;
use shs_core::service::{HandshakeJob, Participant, SuccessPolicy};
use shs_core::{fixtures, HandshakeOptions, Member, SchemeKind};
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::serve::{Service, ServiceConfig, SessionId, SessionSpec, TerminalClass};
use std::sync::Arc;
use std::time::Duration;

/// One pool holding two distinct groups: members 0..4 of group A,
/// members 4..7 of group B. Jobs pick their roster by index.
fn two_group_pool() -> Arc<Vec<Member>> {
    let mut r = rng("service-chaos-pool");
    let (_, a) = fixtures::group_with_members(SchemeKind::Scheme1, 4, &mut r).expect("group A");
    let (_, b) = fixtures::group_with_members(SchemeKind::Scheme1, 3, &mut r).expect("group B");
    let mut pool = a;
    pool.extend(b);
    Arc::new(pool)
}

fn soak_service() -> Service {
    Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        default_deadline: Duration::from_secs(120),
        default_max_attempts: 4,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        seed: 0xc4a05,
    })
}

/// The fault matrix, one schedule per kind, applied to the first attempt
/// (kind 7 faults every attempt: it must *stay* hopeless).
fn plan_for(kind: usize, attempt: u32) -> Option<FaultPlan> {
    if attempt > 0 && kind != 7 {
        return None; // retries run on a healed medium
    }
    let seed = 100 + kind as u64;
    match kind {
        0 => None, // clean
        1 => Some(
            FaultPlan::new(seed).with(
                FaultRule::drop()
                    .in_round("dgka-r1")
                    .from(1)
                    .to(0)
                    .at_most(1),
            ),
        ),
        2 => Some(FaultPlan::new(seed).with(FaultRule::duplicate().from(2))),
        3 => {
            Some(FaultPlan::new(seed).with(FaultRule::corrupt(5).in_round("dgka-r1").from(1).to(0)))
        }
        4 => Some(FaultPlan::new(seed).with(FaultRule::delay(1).from(1).to(0).at_most(2))),
        5 => Some(FaultPlan::new(seed).with(FaultRule::crash_stop(2, 1))),
        6 => Some(FaultPlan::new(seed).with(FaultRule::partition(1))),
        7 => Some(
            FaultPlan::new(seed)
                .with(FaultRule::crash_stop(1, 1))
                .with(FaultRule::crash_stop(2, 1)),
        ),
        _ => None,
    }
}

/// What the matrix owes each kind.
fn expected_class(kind: usize) -> TerminalClass {
    match kind {
        7 => TerminalClass::TooFewSurvivors,
        _ => TerminalClass::Accepted,
    }
}

#[test]
fn chaos_soak_terminates_every_session_without_leaks() {
    let pool = two_group_pool();
    let svc = soak_service();
    let mut expectations: Vec<(SessionId, &str, TerminalClass)> = Vec::new();
    let mut wildcards: Vec<SessionId> = Vec::new();

    // 24 fault-matrix sessions: three per fault kind, all co-members of
    // group A, submitted concurrently.
    for i in 0..24usize {
        let kind = i % 8;
        let job = HandshakeJob::new(
            Arc::clone(&pool),
            3,
            HandshakeOptions::default(),
            &format!("soak-{i}"),
        )
        .with_plans(move |ctx| plan_for(kind, ctx.attempt));
        let sub = svc.submit(SessionSpec::new(Box::new(job)).with_max_attempts(4));
        assert!(sub.queued(), "soak session {i} admitted");
        expectations.push((sub.id(), "matrix", expected_class(kind)));
    }

    // 3 mixed-group sessions judged FullOnly: completed rejections.
    for i in 0..3usize {
        let job = HandshakeJob::new(
            Arc::clone(&pool),
            0,
            HandshakeOptions::default(),
            &format!("soak-mixed-{i}"),
        )
        .with_slots(vec![
            Participant::Member(0),
            Participant::Member(1),
            Participant::Member(4),
            Participant::Member(5),
        ])
        .with_policy(SuccessPolicy::FullOnly);
        let sub = svc.submit(SessionSpec::new(Box::new(job)));
        assert!(sub.queued());
        expectations.push((sub.id(), "mixed", TerminalClass::Rejected));
    }

    // 2 outsider sessions: the adversary completes but never succeeds.
    for i in 0..2usize {
        let job = HandshakeJob::new(
            Arc::clone(&pool),
            0,
            HandshakeOptions::default(),
            &format!("soak-outsider-{i}"),
        )
        .with_slots(vec![Participant::Member(0), Participant::Outsider]);
        let sub = svc.submit(SessionSpec::new(Box::new(job)));
        assert!(sub.queued());
        expectations.push((sub.id(), "outsider", TerminalClass::Rejected));
    }

    // 3 probabilistic-chaos sessions: outcome is schedule-dependent, the
    // contract is only "terminal, within budget, no leak".
    for i in 0..3usize {
        let job = HandshakeJob::new(
            Arc::clone(&pool),
            3,
            HandshakeOptions::default(),
            &format!("soak-chaos-{i}"),
        )
        .with_plans(move |ctx| {
            Some(
                FaultPlan::new(900 + i as u64 + u64::from(ctx.attempt))
                    .with(FaultRule::drop().with_probability(0.3))
                    .with(FaultRule::corrupt(1).with_probability(0.2))
                    .with(FaultRule::duplicate().with_probability(0.2)),
            )
        });
        let sub = svc.submit(SessionSpec::new(Box::new(job)).with_max_attempts(3));
        assert!(sub.queued());
        wildcards.push(sub.id());
    }

    // No deadlock: the whole soak settles.
    assert!(
        svc.wait_idle(Duration::from_secs(300)),
        "service went idle (no deadlock, no runaway retries)"
    );

    // Every session reached its expected terminal class.
    for (id, tag, want) in &expectations {
        let e = svc.entry(*id).expect("entry kept until eviction");
        assert!(e.state.terminal(), "{tag} session {id} terminal");
        assert_eq!(e.class, Some(*want), "{tag} session {id}");
        assert!(
            e.attempts.len() <= 4,
            "{tag} session {id}: attempts bounded"
        );
    }
    for id in &wildcards {
        let e = svc.entry(*id).expect("entry");
        assert!(e.state.terminal(), "chaos session {id} terminal");
        assert!(e.attempts.len() <= 3);
    }

    // Crash-kind sessions (kind 5) really re-formed among survivors.
    for (i, (id, _, _)) in expectations.iter().take(24).enumerate() {
        let e = svc.entry(*id).expect("entry");
        match i % 8 {
            5 => {
                assert!(e.reformations >= 1, "crash session {id} re-formed");
                let last = e.attempts.last().expect("attempts recorded");
                assert_eq!(last.roster, vec![0, 1], "re-formed roster = survivors");
            }
            6 => {
                // Partition leaves uniform liveness: full-roster retry.
                assert_eq!(e.reformations, 0, "partition keeps the roster");
                assert_eq!(e.attempts.len(), 2, "one healed retry");
            }
            7 => {
                assert_eq!(e.attempts.len(), 1, "lone survivor: no retry storm");
            }
            _ => {}
        }
    }

    // Registry hygiene: zero leaks, zero illegal transitions, and the
    // books balance.
    let stats = svc.stats();
    assert_eq!(svc.leaks(), Vec::<SessionId>::new());
    assert_eq!(stats.illegal_transitions, 0);
    assert_eq!(stats.active, 0);
    assert_eq!(
        stats.completed + stats.aborted,
        stats.submitted,
        "every admitted session is terminal"
    );
    assert!(
        stats.reformations >= 3,
        "the three crash sessions re-formed"
    );

    let report = svc.shutdown(Duration::from_secs(30));
    assert!(report.clean(), "drain left no leaks: {report:?}");
}

#[test]
fn saturated_service_sheds_unobservably_and_recovers() {
    let pool = two_group_pool();
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        default_deadline: Duration::from_secs(120),
        default_max_attempts: 2,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        seed: 0x5ed5,
    });
    // Teach the shape book: one clean 3-member session.
    let teach = svc.submit(SessionSpec::new(Box::new(HandshakeJob::new(
        Arc::clone(&pool),
        3,
        HandshakeOptions::default(),
        "shed-teach",
    ))));
    assert!(teach.queued());
    assert!(svc.wait_idle(Duration::from_secs(60)));

    // Flood a 1-worker, 2-slot queue with 10 sessions: some must shed.
    let mut shed_decoys = Vec::new();
    let mut queued = 0usize;
    for i in 0..10usize {
        let job = HandshakeJob::new(
            Arc::clone(&pool),
            3,
            HandshakeOptions::default(),
            &format!("shed-{i}"),
        );
        match svc.submit(SessionSpec::new(Box::new(job))) {
            shs_net::serve::Submitted::Queued(_) => queued += 1,
            shs_net::serve::Submitted::Shed { decoy, .. } => {
                shed_decoys.push(decoy.expect("shape learned, decoy emitted"));
            }
        }
    }
    assert!(queued >= 1, "some sessions were served");
    assert!(!shed_decoys.is_empty(), "saturation shed some sessions");

    // Unobservability: every decoy has exactly the wire shape of the real
    // clean session the book learned from.
    let real = svc.entry(teach.id()).expect("teach entry").attempts[0]
        .traffic
        .clone();
    for decoy in &shed_decoys {
        assert_eq!(decoy.shape(), real.shape(), "shedding is unobservable");
        assert_ne!(*decoy, real, "decoy payload bits are fresh");
    }

    // The service recovers: everything admitted still terminates.
    assert!(svc.wait_idle(Duration::from_secs(120)));
    let stats = svc.stats();
    assert_eq!(stats.active, 0);
    assert_eq!(stats.shed as usize, shed_decoys.len());
    assert_eq!(stats.illegal_transitions, 0);
    assert!(svc.shutdown(Duration::from_secs(30)).clean());
}
