//! Survivor re-formation edge cases (DESIGN.md §12).
//!
//! Three corners of the availability model:
//!
//! * **all-but-one crash** — a session with a single live survivor
//!   cannot re-form (`m ≥ 2`); it must abort cleanly after exactly one
//!   attempt, never spin in a retry storm;
//! * **crash after key agreement** — a crash in Phase III, *after* the
//!   session key exists, still aborts the attempt; the re-formed retry
//!   is a cryptographically fresh session sharing no wire bytes (hence
//!   no nonces, blinds or DGKA exponents) with the aborted one;
//! * **abort-shape indistinguishability survives the service layer** —
//!   the aborted attempt the service retries is shape-identical on the
//!   wire to an ordinary failed handshake, exactly as `tests/faults.rs`
//!   establishes for bare sessions.

mod common;

use common::rng;
use shs_core::handshake::run_handshake_with_net;
use shs_core::service::HandshakeJob;
use shs_core::{fixtures, Actor, HandshakeOptions, SchemeKind};
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::observe::TrafficLog;
use shs_net::serve::{Service, ServiceConfig, SessionEntry, SessionSpec, TerminalClass};
use shs_net::sync::BroadcastNet;
use shs_net::DeliveryPolicy;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

fn service() -> Service {
    Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        default_deadline: Duration::from_secs(120),
        default_max_attempts: 4,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        seed: 0x5e5510,
    })
}

/// Runs one job to termination and returns its registry entry.
fn run_one(svc: &Service, job: HandshakeJob, max_attempts: u32) -> SessionEntry {
    let sub = svc.submit(SessionSpec::new(Box::new(job)).with_max_attempts(max_attempts));
    assert!(sub.queued(), "session admitted");
    assert!(svc.wait_idle(Duration::from_secs(120)), "session settled");
    svc.entry(sub.id()).expect("entry retained")
}

#[test]
fn all_but_one_crash_aborts_cleanly_without_retry_storm() {
    let mut r = rng("reform-lone");
    let (_, members) = fixtures::group_with_members(SchemeKind::Scheme1, 3, &mut r).expect("group");
    let svc = service();
    let job = HandshakeJob::new(
        Arc::new(members),
        3,
        HandshakeOptions::default(),
        "reform-lone",
    )
    .with_plans(|_| {
        Some(
            FaultPlan::new(71)
                .with(FaultRule::crash_stop(1, 1))
                .with(FaultRule::crash_stop(2, 1)),
        )
    });
    // A generous attempt budget on purpose: the *liveness* check, not
    // the budget, must be what stops the retries.
    let e = run_one(&svc, job, 8);
    assert_eq!(e.class, Some(TerminalClass::TooFewSurvivors));
    assert_eq!(
        e.attempts.len(),
        1,
        "no retry storm: one attempt, then stop"
    );
    assert_eq!(e.reformations, 0, "nothing to re-form around one survivor");
    assert_eq!(e.attempts[0].live_slots, vec![0], "only slot 0 stayed live");
    assert!(svc.shutdown(Duration::from_secs(10)).clean());
}

#[test]
fn crash_after_key_agreement_reforms_with_a_fresh_transcript() {
    let mut r = rng("reform-phase3");
    let (_, members) = fixtures::group_with_members(SchemeKind::Scheme1, 3, &mut r).expect("group");
    let svc = service();
    // Slot 2 participates in three exchanges — both DGKA rounds (so the
    // session key exists) and the Phase-II tags — then crash-stops
    // during Phase III.
    let job = HandshakeJob::new(
        Arc::new(members),
        3,
        HandshakeOptions::default(),
        "reform-phase3",
    )
    .with_plans(|ctx| {
        (ctx.attempt == 0).then(|| FaultPlan::new(72).with(FaultRule::crash_stop(2, 3)))
    });
    let e = run_one(&svc, job, 4);
    assert_eq!(e.class, Some(TerminalClass::Accepted));
    assert_eq!(e.attempts.len(), 2);
    assert_eq!(e.reformations, 1);
    assert_eq!(
        e.attempts[0].live_slots,
        vec![0, 1],
        "the Phase-III crash shows up in liveness"
    );
    assert_eq!(
        e.attempts[1].roster,
        vec![0, 1],
        "re-formed to the survivors"
    );

    // Fresh transcript: no wire payload of the aborted attempt reappears
    // in the retry. Every DGKA exponent, MAC tag, signature and nonce is
    // new — a transcript-level guarantee that nothing was reused after
    // the key-agreement state was thrown away.
    let first: BTreeSet<&[u8]> = e.attempts[0]
        .traffic
        .records()
        .iter()
        .map(|rec| rec.payload.as_slice())
        .collect();
    let reused = e.attempts[1]
        .traffic
        .records()
        .iter()
        .filter(|rec| first.contains(rec.payload.as_slice()))
        .count();
    assert_eq!(reused, 0, "retry shares zero wire bytes with the abort");
    assert!(svc.shutdown(Duration::from_secs(10)).clean());
}

/// Per-round wire shape (same reduction as `tests/faults.rs`): for each
/// round label, the set of `(slot, payload_len)` transmissions.
fn per_round_shape(log: &TrafficLog) -> BTreeMap<String, BTreeSet<(usize, usize)>> {
    let mut by_round: BTreeMap<String, BTreeSet<(usize, usize)>> = BTreeMap::new();
    for rec in log.records() {
        by_round
            .entry(rec.round.clone())
            .or_default()
            .insert((rec.from_slot, rec.payload.len()));
    }
    by_round
}

#[test]
fn reformation_preserves_abort_shape_indistinguishability() {
    // Reference: an ordinary failed handshake (members of different
    // groups, fault-free medium) — what an eavesdropper calls "failure".
    let mut r = rng("reform-shape-ordinary");
    let (_, ours) = fixtures::group_with_members(SchemeKind::Scheme1, 2, &mut r).expect("group A");
    let (_, foreign) =
        fixtures::group_with_members(SchemeKind::Scheme1, 1, &mut r).expect("group B");
    let mixed = [
        Actor::Member(&ours[0]),
        Actor::Member(&ours[1]),
        Actor::Member(&foreign[0]),
    ];
    let opts = HandshakeOptions {
        partial_success: false,
        ..Default::default()
    };
    let mut plain_net = BroadcastNet::new(3, DeliveryPolicy::Synchronous);
    let ordinary = run_handshake_with_net(&mixed, &opts, &mut plain_net, &mut r).expect("run");
    assert!(ordinary.outcomes.iter().all(|o| !o.accepted));

    // Service-managed session whose first attempt aborts (persistent
    // Phase-I corruption) and whose retry succeeds.
    let mut r2 = rng("reform-shape-service");
    let (_, members) =
        fixtures::group_with_members(SchemeKind::Scheme1, 3, &mut r2).expect("group");
    let svc = service();
    let job = HandshakeJob::new(Arc::new(members), 3, opts, "reform-shape").with_plans(|ctx| {
        (ctx.attempt == 0).then(|| {
            FaultPlan::new(73).with(FaultRule::corrupt(5).in_round("dgka-r1").from(1).to(0))
        })
    });
    let e = run_one(&svc, job, 4);
    assert_eq!(e.class, Some(TerminalClass::Accepted), "retry succeeded");
    assert_eq!(e.attempts.len(), 2);

    // The aborted attempt the service re-ran is, on the wire, an
    // ordinary failed handshake — managing sessions through the service
    // (and deciding to retry them) leaks nothing extra to eavesdroppers.
    assert_eq!(
        per_round_shape(&e.attempts[0].traffic),
        per_round_shape(&ordinary.traffic),
        "service-layer abort is shape-identical to an ordinary failure"
    );
    assert!(svc.shutdown(Duration::from_secs(10)).clean());
}
