//! The discrete-event simulator is a *medium*, not a fork of the
//! engine: the same parties, seeds and rosters must produce the same
//! bytes whether the session runs over the threaded wall-clock hub,
//! the lockstep `BroadcastNet`, or `shs-sim`'s virtual-time media —
//! and a simulated campaign must reproduce bit-for-bit from its seed.

mod common;

use std::time::Duration;

use common::{actors, group, rng};
use shs_core::handshake::party::run_party;
use shs_core::handshake::run_handshake_with_net;
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_net::fault::FaultPlan;
use shs_net::observe::{TrafficLog, TrafficRecord};
use shs_net::sync::BroadcastNet;
use shs_sim::adversary::{Kind, Schedule};
use shs_sim::core::LatencyModel;
use shs_sim::network::{run_session, SimLink, SimMedium};
use shs_sim::{run_scenario, ScenarioConfig, SimPool};

const COLLECT: Duration = Duration::from_secs(5);

/// Thread scheduling makes the hub's log order nondeterministic (the
/// sim's is canonical); order both by identity before comparing bytes.
fn canonical(log: &TrafficLog) -> Vec<TrafficRecord> {
    let mut records = log.records().to_vec();
    records.sort_by(|a, b| {
        (&a.round, a.from_slot, &a.payload).cmp(&(&b.round, b.from_slot, &b.payload))
    });
    records
}

/// A fault-free session driven by the unmodified per-party driver over
/// the simulated medium produces the byte-identical transcript — same
/// rounds, same slots, same payload bytes — as the threaded hub run
/// with the same seed and roster, plus the same acceptances and keys.
#[test]
fn simulated_session_matches_hub_transcript_byte_for_byte() {
    let label = "sim-hub-equiv";
    // Hub run. (Each run rebuilds the identical group from the same
    // seed so it owns its members — determinism end to end.)
    let mut r = rng(label);
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let opts = HandshakeOptions::default();
    let hub_bodies: Vec<_> = members
        .into_iter()
        .enumerate()
        .map(|(i, member)| {
            move |mut link: shs_net::hub::PartyHandle| {
                let mut r = rng(&format!("{label}-{i}"));
                run_party(&Actor::Member(&member), &opts, &mut link, COLLECT, &mut r)
                    .expect("hub party completes")
            }
        })
        .collect();
    let (hub_results, hub_traffic) = shs_net::hub::run_session(3, 7, hub_bodies);

    // Simulated run: same members, same per-party seeds, virtual time.
    let mut r = rng(label);
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let sim_bodies: Vec<_> = members
        .into_iter()
        .enumerate()
        .map(|(i, member)| {
            move |mut link: SimLink| {
                let mut r = rng(&format!("{label}-{i}"));
                run_party(&Actor::Member(&member), &opts, &mut link, COLLECT, &mut r)
                    .expect("sim party completes")
            }
        })
        .collect();
    let report = run_session(3, FaultPlan::new(7), LatencyModel::lan(7), sim_bodies);

    for (slot, (h, s)) in hub_results.iter().zip(&report.outputs).enumerate() {
        assert!(h.outcome.accepted && s.outcome.accepted, "slot {slot}");
        assert_eq!(h.outcome.session_key, s.outcome.session_key, "slot {slot}");
        assert_eq!(
            h.outcome.same_group_slots, s.outcome.same_group_slots,
            "slot {slot}"
        );
        assert_eq!(
            h.outcome.verified_slots, s.outcome.verified_slots,
            "slot {slot}"
        );
    }
    assert_eq!(
        canonical(&hub_traffic),
        canonical(&report.traffic),
        "the eavesdropper cannot tell the simulated wire from the real one"
    );
    assert!(report.elapsed > Duration::ZERO, "virtual time was charged");
}

/// The lockstep anchor: the full engine over `SimMedium` produces the
/// byte-identical session result as over `BroadcastNet`, fault plans
/// included — the simulated medium changes *when*, never *what*.
#[test]
fn sim_medium_is_transparent_to_the_lockstep_engine() {
    let mut r = rng("sim-medium-equiv");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let opts = HandshakeOptions::default();

    let mut rng_a = rng("sim-medium-equiv-run");
    let mut real = BroadcastNet::new(3, opts.delivery);
    real.set_fault_plan(FaultPlan::new(21));
    let a = run_handshake_with_net(&actors(&members), &opts, &mut real, &mut rng_a)
        .expect("real-medium session");

    let mut rng_b = rng("sim-medium-equiv-run");
    let mut sim = SimMedium::new(3, LatencyModel::lan(21));
    sim.set_fault_plan(FaultPlan::new(21));
    let b = run_handshake_with_net(&actors(&members), &opts, &mut sim, &mut rng_b)
        .expect("sim-medium session");

    assert_eq!(a.traffic, b.traffic, "byte-identical transcript");
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.accepted, y.accepted);
        assert_eq!(x.session_key, y.session_key);
        assert_eq!(x.same_group_slots, y.same_group_slots);
    }
    assert!(sim.elapsed() > Duration::ZERO);
}

/// Same seed, same campaign: a full scenario (arrivals, queueing,
/// faults, re-formation, histograms) replays to the identical report.
#[test]
fn scenario_replays_bit_identically_from_its_seed() {
    let run = || {
        let pool = SimPool::build(3, 0, 0xD57);
        let cfg = ScenarioConfig::burst(5, 0xD57);
        run_scenario(&pool, Schedule::new(Kind::PhaseCrash, 0xD57), &cfg)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.fingerprint, b.fingerprint, "event-trace fingerprint");
    assert_eq!(a.classes, b.classes);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.faults, b.faults);
}
