//! Substrate conformance: every backend constructible through the
//! factory satisfies the `shs_core::substrate` contracts. The harness
//! lives in `tests/common/conformance.rs`; these tests drive it over
//! the full registries, so adding a backend to an `ALL` array is enough
//! to put it under contract.

mod common;

use common::{conformance, rng};
use shs_core::config::{CgkdChoice, DgkaChoice};

#[test]
fn every_cgkd_backend_satisfies_the_contract() {
    for choice in CgkdChoice::ALL {
        conformance::check_cgkd(choice, &mut rng(&format!("cgkd-conformance-{choice:?}")));
    }
}

#[test]
fn every_dgka_protocol_satisfies_the_contract() {
    for choice in DgkaChoice::ALL {
        for m in [2, 3, 5] {
            conformance::check_dgka(
                choice,
                m,
                &mut rng(&format!("dgka-conformance-{choice:?}-{m}")),
            );
        }
    }
}
