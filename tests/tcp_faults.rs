//! The fault matrix over real TCP on loopback.
//!
//! Same experiments as `tests/faults.rs`, but the medium is
//! [`TcpSession`]: every byte crosses the kernel's TCP stack through the
//! frame relay, and the `FaultPlan` is injected at the *framing
//! boundary* (frames in flight between relay and sockets) instead of
//! inside an in-process vector shuffle. The handshake engine, budgets,
//! decoys and abort taxonomy are byte-for-byte the same code — this
//! suite proves the transport swap preserves every fault-tolerance and
//! unobservability property.
//!
//! The chaos soak at the end writes `target/tcp_chaos_report.json` (the
//! CI `tcp-chaos` job uploads it as an artifact).

mod common;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use common::{actors, group, rng};
use shs_core::config::DgkaChoice;
use shs_core::handshake::run_handshake_with_net;
use shs_core::{AbortReason, Actor, HandshakeOptions, SchemeKind};
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::observe::TrafficLog;
use shs_net::tcp::TcpSession;

/// One handshake with all slots driven over loopback TCP through a
/// fault-injecting relay.
fn run_faulty_tcp(
    label: &str,
    plan: FaultPlan,
    opts: &HandshakeOptions,
) -> shs_core::SessionResult {
    let mut r = rng(label);
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let acts = actors(&members);
    let mut net = TcpSession::over_loopback(3, Some(plan)).expect("loopback relay");
    let result = run_handshake_with_net(&acts, opts, &mut net, &mut r)
        .expect("faulty TCP medium still yields a structured result");
    net.finish();
    result
}

/// The acceptance matrix of `tests/faults.rs`, unchanged, over TCP.
#[test]
fn tcp_fault_matrix_terminates_with_structured_outcomes() {
    let matrix: Vec<(&str, FaultPlan)> = vec![
        (
            "drop-unbounded",
            FaultPlan::new(11).with(FaultRule::drop().from(1).to(0)),
        ),
        (
            "duplicate",
            FaultPlan::new(12).with(FaultRule::duplicate().from(2)),
        ),
        (
            "corrupt",
            FaultPlan::new(13).with(FaultRule::corrupt(3).in_round("dgka-r1").from(1).to(0)),
        ),
        (
            "truncate",
            FaultPlan::new(14).with(FaultRule::truncate().in_round("dgka-r2").from(0).to(2)),
        ),
        (
            "delay",
            FaultPlan::new(15).with(FaultRule::delay(1).from(1).to(0).at_most(2)),
        ),
        (
            "crash-stop",
            FaultPlan::new(16).with(FaultRule::crash_stop(2, 1)),
        ),
        (
            "partition",
            FaultPlan::new(17).with(FaultRule::partition(1)),
        ),
        (
            "chaos",
            FaultPlan::new(18)
                .with(FaultRule::drop().with_probability(0.3))
                .with(FaultRule::corrupt(1).with_probability(0.2))
                .with(FaultRule::duplicate().with_probability(0.2)),
        ),
    ];
    let opts = HandshakeOptions::default();
    for (name, plan) in matrix {
        let result = run_faulty_tcp(&format!("tcp-fault-matrix-{name}"), plan, &opts);
        assert!(
            result.stats.exchanges <= opts.budget.max_exchanges,
            "{name}: stayed within the exchange budget"
        );
        for (slot, outcome) in result.outcomes.iter().enumerate() {
            if outcome.abort.is_some() {
                assert!(
                    !outcome.accepted && outcome.session_key.is_none(),
                    "{name}: aborted slot {slot} keeps no key"
                );
            }
        }
    }
}

/// Recoverable faults still fully succeed over the real wire, at the
/// cost of retransmissions — with the same fault accounting.
#[test]
fn tcp_recoverable_faults_complete_after_retry() {
    let opts = HandshakeOptions::default();

    let dropped = run_faulty_tcp(
        "tcp-fault-recover-drop",
        FaultPlan::new(21).with(
            FaultRule::drop()
                .in_round("dgka-r1")
                .from(1)
                .to(0)
                .at_most(1),
        ),
        &opts,
    );
    assert!(
        dropped.outcomes.iter().all(|o| o.accepted),
        "drop recovered over TCP"
    );
    assert!(dropped.stats.retries > 0, "recovery was not free");
    assert_eq!(dropped.traffic.faults().dropped, 1);

    let delayed = run_faulty_tcp(
        "tcp-fault-recover-delay",
        FaultPlan::new(22).with(
            FaultRule::delay(1)
                .in_round("dgka-r2")
                .from(2)
                .to(1)
                .at_most(1),
        ),
        &opts,
    );
    assert!(
        delayed.outcomes.iter().all(|o| o.accepted),
        "delay recovered over TCP"
    );
    assert!(delayed.stats.retries > 0);
    assert_eq!(delayed.traffic.faults().delayed, 1);

    let duplicated = run_faulty_tcp(
        "tcp-fault-recover-duplicate",
        FaultPlan::new(23).with(FaultRule::duplicate()),
        &opts,
    );
    assert!(duplicated.outcomes.iter().all(|o| o.accepted));
    assert_eq!(
        duplicated.stats.retries, 0,
        "duplicates never trigger retransmission"
    );
    assert!(duplicated.traffic.faults().duplicated > 0);
}

/// The GDH.2 upflow chain recovers from a dropped chain link over TCP.
#[test]
fn tcp_gdh_chain_recovers_from_dropped_upflow() {
    let opts = HandshakeOptions {
        dgka: DgkaChoice::Gdh2,
        ..Default::default()
    };
    let result = run_faulty_tcp(
        "tcp-fault-gdh-drop",
        FaultPlan::new(31).with(
            FaultRule::drop()
                .in_round("dgka-gdh-0")
                .from(0)
                .to(1)
                .at_most(1),
        ),
        &opts,
    );
    assert!(result.outcomes.iter().all(|o| o.accepted));
    assert!(result.stats.retries > 0);
}

/// Crash-stop semantics survive the transport swap: the crashed slot is
/// reported, survivors abort structurally.
#[test]
fn tcp_crash_stop_is_reported_and_survivors_terminate() {
    let result = run_faulty_tcp(
        "tcp-fault-crash",
        FaultPlan::new(41).with(FaultRule::crash_stop(2, 1)),
        &HandshakeOptions::default(),
    );
    assert_eq!(result.outcomes[2].abort, Some(AbortReason::Crashed));
    for outcome in &result.outcomes {
        assert!(!outcome.accepted);
        assert!(outcome.abort.is_some(), "everyone aborts, nobody hangs");
    }
    assert!(result.traffic.faults().crash_silenced > 0);
}

/// A total partition over TCP aborts within the exchange budget.
#[test]
fn tcp_partition_aborts_within_budget() {
    let opts = HandshakeOptions::default();
    let result = run_faulty_tcp(
        "tcp-fault-partition",
        FaultPlan::new(51).with(FaultRule::partition(1)),
        &opts,
    );
    for outcome in &result.outcomes {
        assert!(!outcome.accepted);
        assert!(outcome.abort.is_some());
    }
    assert!(result.stats.exchanges <= opts.budget.max_exchanges);
    assert!(result.traffic.faults().partitioned > 0);
}

/// Per-round deduplicated wire shape (see `tests/faults.rs`).
fn per_round_shape(log: &TrafficLog) -> BTreeMap<String, BTreeSet<(usize, usize)>> {
    let mut by_round: BTreeMap<String, BTreeSet<(usize, usize)>> = BTreeMap::new();
    for rec in log.records() {
        by_round
            .entry(rec.round.clone())
            .or_default()
            .insert((rec.from_slot, rec.payload.len()));
    }
    by_round
}

/// Unobservability over the real wire: what the relay's eavesdropper
/// position records for a fault-induced abort is shape-identical to an
/// ordinary failed handshake between members of different groups.
#[test]
fn tcp_aborted_session_is_shape_identical_to_ordinary_failure() {
    // Ordinary failure over TCP: 2 + 1 members of different groups.
    let mut r = rng("tcp-fault-shape-ordinary");
    let (_, ours) = group(SchemeKind::Scheme1, 2, &mut r);
    let (_, foreign) = group(SchemeKind::Scheme1, 1, &mut r);
    let mixed = [
        Actor::Member(&ours[0]),
        Actor::Member(&ours[1]),
        Actor::Member(&foreign[0]),
    ];
    let opts = HandshakeOptions {
        partial_success: false,
        ..Default::default()
    };
    let mut plain_net = TcpSession::over_loopback(3, None).expect("loopback relay");
    let ordinary = run_handshake_with_net(&mixed, &opts, &mut plain_net, &mut r).unwrap();
    plain_net.finish();
    assert!(ordinary.outcomes.iter().all(|o| !o.accepted));
    assert!(ordinary.outcomes.iter().all(|o| o.abort.is_none()));

    // Aborted session over TCP: co-members plus persistent corruption.
    let aborted = run_faulty_tcp(
        "tcp-fault-shape-aborted",
        FaultPlan::new(61).with(FaultRule::corrupt(5).in_round("dgka-r1").from(1).to(0)),
        &opts,
    );
    assert!(aborted.outcomes.iter().any(|o| o.abort.is_some()));
    assert!(aborted.outcomes.iter().all(|o| !o.accepted));

    assert_eq!(
        per_round_shape(&ordinary.traffic),
        per_round_shape(&aborted.traffic),
        "an eavesdropper on the wire cannot tell a quiet abort from an ordinary failure"
    );

    // Uniform retransmission on the real wire too.
    let mut seen: BTreeMap<(String, usize), BTreeSet<usize>> = BTreeMap::new();
    for rec in aborted.traffic.records() {
        seen.entry((rec.round.clone(), rec.from_slot))
            .or_default()
            .insert(rec.payload.len());
    }
    for ((round, slot), lens) in seen {
        assert_eq!(
            lens.len(),
            1,
            "slot {slot} changed its {round} payload size across retransmissions"
        );
    }
}

/// Chaos soak: randomized fault schedules over loopback TCP. Every run
/// must terminate structurally; the per-run report goes to
/// `target/tcp_chaos_report.json` for the CI artifact.
#[test]
fn tcp_chaos_soak_writes_report() {
    let opts = HandshakeOptions::default();
    let mut runs = Vec::new();
    for seed in 70u64..76 {
        let plan = FaultPlan::new(seed)
            .with(FaultRule::drop().with_probability(0.25))
            .with(FaultRule::corrupt(1).with_probability(0.15))
            .with(FaultRule::duplicate().with_probability(0.15))
            .with(FaultRule::delay(1).with_probability(0.1));
        let result = run_faulty_tcp(&format!("tcp-chaos-soak-{seed}"), plan, &opts);
        assert!(result.stats.exchanges <= opts.budget.max_exchanges);
        let accepted = result.outcomes.iter().filter(|o| o.accepted).count();
        let aborted = result.outcomes.iter().filter(|o| o.abort.is_some()).count();
        runs.push((seed, accepted, aborted, result));
    }

    let mut json = String::from("{\n  \"experiment\": \"tcp-chaos-soak\",\n  \"runs\": [\n");
    for (i, (seed, accepted, aborted, result)) in runs.iter().enumerate() {
        let f = result.traffic.faults();
        let _ = writeln!(
            json,
            "    {{\"seed\": {seed}, \"accepted\": {accepted}, \"aborted\": {aborted}, \
             \"exchanges\": {}, \"retries\": {}, \"dropped\": {}, \"corrupted\": {}, \
             \"duplicated\": {}, \"delayed\": {}, \"backpressure_dropped\": {}}}{}",
            result.stats.exchanges,
            result.stats.retries,
            f.dropped,
            f.corrupted,
            f.duplicated,
            f.delayed,
            result.stats.backpressure_dropped,
            if i + 1 < runs.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new("target").join("tcp_chaos_report.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, json).expect("write chaos soak report");
}
