//! Multi-process integration tests for the `shs-node` daemon: two OS
//! processes, a real TCP connection between them, and the relay's
//! wire-shape log as the eavesdropper.
//!
//! The binding claim (ISSUE acceptance criterion): a session in which
//! one party *quietly aborts* produces per-round wire shape identical
//! to a session that merely *fails ordinarily* (strangers from
//! different groups). The relay records every (round, slot, length)
//! triple, so the comparison is exact.

use std::collections::BTreeSet;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_shs-node");

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shs-node-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Spawns a listening node, parses the bound address off its stdout.
fn spawn_listener(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn listener");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("listener exited before announcing its address")
            .expect("read listener stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().to_string();
        }
    };
    // Keep draining stdout in the background so the child never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// Waits for a child with a hard deadline; kills and fails on overrun.
fn wait_within(mut child: Child, what: &str, limit: Duration) {
    let start = Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if start.elapsed() > limit => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("{what} did not exit within {limit:?}");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Minimal field extraction from the node's report JSON (the format is
/// ours, written by `render_report` — no general parser needed).
fn field<'j>(json: &'j str, key: &str) -> &'j str {
    let pat = format!("\"{key}\": ");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("report missing {key}: {json}"));
    let rest = &json[at + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim()
}

/// The per-round deduplicated wire shape: the set of (round, slot,
/// length) triples the relay observed. Retransmissions collapse, so two
/// sessions with the same shape are indistinguishable to an observer
/// who sees *what* was sent, not how often the loss recovery fired.
fn wire_shape(report: &str) -> BTreeSet<(String, usize, usize)> {
    let mut shape = BTreeSet::new();
    for rec in report.split("{\"round\": \"").skip(1) {
        let round = rec.split('"').next().expect("round label").to_string();
        let slot: usize = rec
            .split("\"slot\": ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("slot");
        let len: usize = rec
            .split("\"len\": ")
            .nth(1)
            .and_then(|s| s.split('}').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("len");
        shape.insert((round, slot, len));
    }
    assert!(!shape.is_empty(), "relay saw no traffic: {report}");
    shape
}

/// Runs a two-node session: the listener hosts the relay and plays one
/// party, the peer process dials in. Returns (listener report, peer
/// report).
fn run_pair(dir: &Path, peer_seed: &str, chaos: Option<&str>) -> (String, String) {
    let a_report = dir.join("a.json");
    let b_report = dir.join("b.json");
    let mut a_args = vec![
        "run",
        "--group-seed",
        "pair-seed",
        "--group-size",
        "2",
        "--member-index",
        "0",
        "--listen",
        "127.0.0.1:0",
    ];
    if let Some(spec) = chaos {
        a_args.extend(["--chaos", spec]);
    }
    let a_report_s = a_report.to_str().expect("utf8 path").to_string();
    a_args.extend(["--report", &a_report_s]);
    let (a, addr) = spawn_listener(&a_args);

    let status = Command::new(BIN)
        .args([
            "run",
            "--group-seed",
            peer_seed,
            "--group-size",
            "2",
            "--member-index",
            "1",
            "--peer",
            &addr,
            "--report",
            b_report.to_str().expect("utf8 path"),
        ])
        .status()
        .expect("spawn peer");
    assert!(status.success(), "peer exited with {status}");
    wait_within(a, "listener", Duration::from_secs(60));

    (
        std::fs::read_to_string(&a_report).expect("listener report"),
        std::fs::read_to_string(&b_report).expect("peer report"),
    )
}

/// Two processes with the same group seed complete a full handshake:
/// both accept and their key fingerprints agree — key agreement proven
/// across a process boundary without comparing any secret.
#[test]
fn two_processes_complete_a_handshake() {
    let dir = scratch("accept");
    let (a, b) = run_pair(&dir, "pair-seed", None);
    assert_eq!(field(&a, "accepted"), "true", "listener accepts: {a}");
    assert_eq!(field(&b, "accepted"), "true", "peer accepts: {b}");
    let fp_a = field(&a, "key_fingerprint");
    let fp_b = field(&b, "key_fingerprint");
    assert_ne!(fp_a, "null");
    assert_eq!(fp_a, fp_b, "both processes derived the same session key");
    // The two processes took the two distinct seats.
    let slots: BTreeSet<&str> = [field(&a, "slot"), field(&b, "slot")].into();
    assert_eq!(slots, BTreeSet::from(["0", "1"]));
}

/// Strangers (different group seeds) fail *ordinarily*: both run the
/// protocol to completion, neither aborts, neither gets a key.
#[test]
fn strangers_fail_ordinarily() {
    let dir = scratch("strangers");
    let (a, b) = run_pair(&dir, "other-seed", None);
    for (who, report) in [("listener", &a), ("peer", &b)] {
        assert_eq!(field(report, "accepted"), "false", "{who}: {report}");
        assert_eq!(field(report, "key_fingerprint"), "null", "{who}: {report}");
        assert_eq!(
            field(report, "abort"),
            "null",
            "{who} completed ordinarily, no abort: {report}"
        );
    }
}

/// The acceptance criterion: a chaos-induced quiet abort is
/// wire-indistinguishable from an ordinary failure. One run injects a
/// persistent drop at the relay's framing boundary (forcing one party
/// to abort Phase I and ride out the session on chaff and decoys); the
/// other runs strangers who simply fail. The relay's per-round deduped
/// (round, slot, length) shapes must be identical.
#[test]
fn abort_is_shape_identical_to_ordinary_failure_across_processes() {
    let fail_dir = scratch("shape-fail");
    let abort_dir = scratch("shape-abort");

    let (fail_a, _) = run_pair(&fail_dir, "other-seed", None);
    let (abort_a, abort_b) = run_pair(&abort_dir, "pair-seed", Some("drop:dgka-r1:1:0"));

    // The drop starves slot 0's Phase-I view: that party aborts quietly.
    // Its counterpart completes an ordinary failure. Nobody gets a key.
    let aborts: Vec<&str> = [&abort_a, &abort_b]
        .iter()
        .map(|r| field(r, "abort"))
        .collect();
    assert!(
        aborts.iter().any(|a| *a != "null"),
        "the starved party aborted: {abort_a} / {abort_b}"
    );
    for (who, report) in [("listener", &abort_a), ("peer", &abort_b)] {
        assert_eq!(field(report, "accepted"), "false", "{who}: {report}");
        assert_eq!(field(report, "key_fingerprint"), "null", "{who}: {report}");
    }

    // The binding claim: identical per-round wire shape.
    assert_eq!(
        wire_shape(&fail_a),
        wire_shape(&abort_a),
        "abort traffic must be shape-identical to ordinary failure on the wire"
    );
}
