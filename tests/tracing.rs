//! Traceability and no-misattribution (Fig. 2, experiment E8):
//! `GCD.TraceUser` recovers all participants of a successful handshake
//! from its transcript, never blames a non-participant, and learns nothing
//! from failed handshakes or foreign groups.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind, TraceError};
use std::collections::BTreeSet;

#[test]
fn authority_traces_every_participant() {
    let mut r = rng("tr-all");
    let (ga, members) = group(SchemeKind::Scheme1, 4, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert!(result.outcomes.iter().all(|o| o.accepted));
    let traced = ga.trace(&result.transcript);
    assert_eq!(traced.len(), 4);
    let ids: BTreeSet<_> = traced.iter().map(|t| t.result.unwrap()).collect();
    let expected: BTreeSet<_> = members.iter().map(|m| m.id()).collect();
    assert_eq!(ids, expected, "all four identities recovered, no extras");
}

#[test]
fn tracing_works_for_scheme2() {
    let mut r = rng("tr-s2");
    let (ga, members) = group(SchemeKind::Scheme2SelfDistinct, 3, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let traced = ga.trace(&result.transcript);
    for t in &traced {
        assert!(t.result.is_ok(), "slot {}", t.slot);
    }
}

#[test]
fn tracing_works_for_scheme1_classic() {
    let mut r = rng("tr-classic");
    let (ga, members) = group(SchemeKind::Scheme1Classic, 3, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let traced = ga.trace(&result.transcript);
    let ids: BTreeSet<_> = traced.iter().map(|t| t.result.unwrap()).collect();
    assert_eq!(ids.len(), 3);
}

#[test]
fn no_misattribution_subset_sessions() {
    // Only actual participants appear in the trace: members 0 and 2
    // handshake; member 1 must never be named.
    let mut r = rng("tr-subset");
    let (ga, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let session = [Actor::Member(&members[0]), Actor::Member(&members[2])];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let traced = ga.trace(&result.transcript);
    let ids: BTreeSet<_> = traced.iter().filter_map(|t| t.result.ok()).collect();
    assert!(ids.contains(&members[0].id()));
    assert!(ids.contains(&members[2].id()));
    assert!(
        !ids.contains(&members[1].id()),
        "honest non-participant never framed"
    );
}

#[test]
fn failed_handshakes_are_untraceable() {
    // A mixed session without partial success publishes only decoys: the
    // GA recovers nothing (weak traceability, §2 remark).
    let mut r = rng("tr-failed");
    let (ga, a_members) = group(SchemeKind::Scheme1, 1, &mut r);
    let (_, b_members) = group(SchemeKind::Scheme1, 1, &mut r);
    let session = [Actor::Member(&a_members[0]), Actor::Member(&b_members[0])];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let traced = ga.trace(&result.transcript);
    for t in &traced {
        assert!(
            matches!(t.result, Err(TraceError::UndecryptableDelta)),
            "slot {}: decoys must not decrypt",
            t.slot
        );
    }
}

#[test]
fn foreign_authority_learns_nothing() {
    // Another group's GA cannot trace this group's handshake: its sk_T
    // does not decrypt the deltas.
    let mut r = rng("tr-foreign");
    let (_, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (foreign_ga, _) = group(SchemeKind::Scheme1, 1, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert!(result.outcomes[0].accepted);
    let traced = foreign_ga.trace(&result.transcript);
    for t in &traced {
        assert!(t.result.is_err(), "slot {}", t.slot);
    }
}

#[test]
fn mixed_sessions_trace_only_own_members() {
    // E6 + E8 interplay: in a partially successful mixed session, each GA
    // traces exactly its own members' slots.
    let mut r = rng("tr-mixed");
    let (ga_a, a_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let (ga_b, b_members) = group(SchemeKind::Scheme1, 2, &mut r);
    let session = [
        Actor::Member(&a_members[0]),
        Actor::Member(&b_members[0]),
        Actor::Member(&a_members[1]),
        Actor::Member(&b_members[1]),
    ];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let traced_a = ga_a.trace(&result.transcript);
    assert!(traced_a[0].result.is_ok());
    assert!(traced_a[2].result.is_ok());
    assert!(traced_a[1].result.is_err());
    assert!(traced_a[3].result.is_err());
    let traced_b = ga_b.trace(&result.transcript);
    assert!(traced_b[1].result.is_ok());
    assert!(traced_b[3].result.is_ok());
    assert!(traced_b[0].result.is_err());
}

#[test]
fn tampered_transcript_does_not_misattribute() {
    // Cutting a transcript entry's θ or δ yields trace errors, never a
    // wrong identity.
    let mut r = rng("tr-tamper");
    let (ga, members) = group(SchemeKind::Scheme1, 2, &mut r);
    let result = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let mut transcript = result.transcript.clone();
    transcript.entries[0].theta[5] ^= 0xFF;
    transcript.entries[1].delta[5] ^= 0xFF;
    let traced = ga.trace(&transcript);
    assert!(traced[0].result.is_err());
    assert!(traced[1].result.is_err());
}
