//! Unlinkability with **reusable credentials** (Fig. 2; the paper's
//! second headline contribution): the same member can run any number of
//! handshakes, and no field of any transcript repeats or correlates
//! across sessions.

mod common;

use common::{actors, group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{HandshakeOptions, SchemeKind};
use std::collections::BTreeSet;

#[test]
fn credentials_are_reusable_across_many_sessions() {
    let mut r = rng("ul-reuse");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    for i in 0..5 {
        let result =
            run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
        assert!(result.outcomes.iter().all(|o| o.accepted), "session {i}");
    }
}

#[test]
fn transcript_fields_never_repeat_across_sessions() {
    // Note m = 3: in the two-party degenerate case of Burmester–Desmedt
    // the round-2 value X_i = (z_{i+1}/z_{i-1})^{r_i} is identically 1 —
    // a public constant carrying no information, which would trip the
    // naive "no repeated payloads" check below without being a leak.
    let mut r = rng("ul-fields");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let mut seen_payloads: BTreeSet<Vec<u8>> = BTreeSet::new();
    for session in 0..4 {
        let result =
            run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
        for rec in result.traffic.records() {
            assert!(
                seen_payloads.insert(rec.payload.clone()),
                "session {session}: payload repeated across sessions (round {})",
                rec.round
            );
        }
    }
}

#[test]
fn same_member_same_session_key_material_unlinkable() {
    // Two sessions by identical participant sets share no transcript
    // entries and no session keys.
    let mut r = rng("ul-keys");
    let (_, members) = group(SchemeKind::Scheme2SelfDistinct, 2, &mut r);
    let a = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    let b = run_handshake(&actors(&members), &HandshakeOptions::default(), &mut r).unwrap();
    assert_ne!(a.transcript.sid, b.transcript.sid);
    for (ea, eb) in a.transcript.entries.iter().zip(&b.transcript.entries) {
        assert_ne!(ea.theta, eb.theta);
        assert_ne!(ea.delta, eb.delta);
    }
    assert_ne!(a.outcomes[0].session_key, b.outcomes[0].session_key);
}

#[test]
fn insider_cannot_link_partner_across_sessions() {
    // A malicious insider M handshakes twice; once with member X, once
    // with member Y (both honest). The two transcripts M observes give it
    // no field to match X against: X's Phase-III payloads are
    // freshly randomized and keyed by session-specific k'.
    let mut r = rng("ul-insider");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let m = &members[0]; // insider
    let x = &members[1];
    let y = &members[2];
    let s1 = run_handshake(
        &[shs_core::Actor::Member(m), shs_core::Actor::Member(x)],
        &HandshakeOptions::default(),
        &mut r,
    )
    .unwrap();
    let s2 = run_handshake(
        &[shs_core::Actor::Member(m), shs_core::Actor::Member(x)],
        &HandshakeOptions::default(),
        &mut r,
    )
    .unwrap();
    let s3 = run_handshake(
        &[shs_core::Actor::Member(m), shs_core::Actor::Member(y)],
        &HandshakeOptions::default(),
        &mut r,
    )
    .unwrap();
    // The partner slot's payloads are pairwise distinct in all three
    // sessions — "same partner" (s1 vs s2) is not distinguishable from
    // "different partner" (s1 vs s3) by equality of any observed field.
    let p1 = &s1.transcript.entries[1];
    let p2 = &s2.transcript.entries[1];
    let p3 = &s3.transcript.entries[1];
    assert_ne!(p1.theta, p2.theta);
    assert_ne!(p1.theta, p3.theta);
    assert_ne!(p1.delta, p2.delta);
    assert_ne!(p1.delta, p3.delta);
    // And all payload lengths are equal, so sizes don't link either.
    assert_eq!(p1.theta.len(), p3.theta.len());
    assert_eq!(p1.delta.len(), p3.delta.len());
}

#[test]
fn scheme1_classic_full_unlinkability_shape() {
    // Theorem 1 (full-unlinkability) applies to the ACJT instantiation;
    // structurally its signatures carry no member-keyed tags at all, so
    // even the T4/T5 linking handle of KY does not exist. We check the
    // transcript length difference reflects exactly the missing tags.
    let mut r = rng("ul-classic");
    let (_, classic) = group(SchemeKind::Scheme1Classic, 2, &mut r);
    let (_, ky) = group(SchemeKind::Scheme1, 2, &mut r);
    let rc = run_handshake(&actors(&classic), &HandshakeOptions::default(), &mut r).unwrap();
    let rk = run_handshake(&actors(&ky), &HandshakeOptions::default(), &mut r).unwrap();
    assert!(rc.outcomes.iter().all(|o| o.accepted));
    assert!(
        rc.transcript.entries[0].theta.len() < rk.transcript.entries[0].theta.len(),
        "ACJT signatures are smaller: no T4..T7 tags to link with"
    );
}
